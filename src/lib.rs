//! `symbi` — sequential logic synthesis using symbolic bi-decomposition.
//!
//! Umbrella crate re-exporting the whole suite, a Rust reproduction of
//! Kravets & Mishchenko, *"Sequential Logic Synthesis Using Symbolic
//! Bi-decomposition"* (DATE 2009):
//!
//! - [`bdd`]: the BDD package everything rides on,
//! - [`netlist`]: sequential gate-level networks, `.bench`/BLIF I/O,
//! - [`reach`]: partitioned forward reachability and unreachable-state
//!   don't cares,
//! - [`core`]: intervals, parameterized abstraction, symbolic OR/AND/XOR
//!   bi-decomposition and choice exploration (the paper's contribution),
//! - [`synth`]: the Algorithm 1 synthesis loop and technology mapping,
//! - [`circuits`]: deterministic benchmark-circuit generators.
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.
//!
//! # Quickstart
//!
//! ```
//! use symbi::bdd::{Manager, VarId};
//! use symbi::core::{or_dec, Interval};
//!
//! // f = ab + cd, completely specified.
//! let mut m = Manager::new();
//! let vs = m.new_vars(4);
//! let ab = m.and(vs[0], vs[1]);
//! let cd = m.and(vs[2], vs[3]);
//! let f = m.or(ab, cd);
//! let spec = Interval::exact(f);
//! let vars: Vec<VarId> = (0..4).map(VarId).collect();
//! let mut choices = or_dec::Choices::compute(&mut m, &spec, &vars);
//! assert_eq!(choices.best_balanced(), Some((2, 2)));
//! ```

pub use symbi_bdd as bdd;
pub use symbi_bdd::{CancelHandle, ResourceExhausted, ResourceGovernor};
pub use symbi_circuits as circuits;
pub use symbi_core as core;
pub use symbi_netlist as netlist;
pub use symbi_reach as reach;
pub use symbi_sat as sat;
pub use symbi_synth as synth;
