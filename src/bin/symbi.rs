//! `symbi` — command-line front end to the synthesis suite.
//!
//! ```text
//! symbi stats     <file>
//! symbi convert   <in> <out>
//! symbi optimize  <in> [-o <out>] [--no-states] [--max-support N] [--no-xor]
//!                 [--sweep] [--sweep-rounds N] [--sweep-conflicts N]
//!                 [--dec-backend bdd|sat|portfolio] [--sat-conflicts N]
//!                 [--budget-steps N] [--budget-nodes N] [--timeout-ms N]
//!                 [--jobs N] [--shared-workers N] [--cache-bits N]
//!                 [--no-auto-gc] [--auto-reorder] [--cluster-limit N]
//!                 [--fault-plan site:occurrence:kind ...] [--fault-seed N]
//! symbi check     <a> <b> [--frames N] [--exact]
//! symbi decompose <file> --signal <name> [--kind or|and|xor] [--dc]
//! ```
//!
//! The `--budget-*` and `--timeout-ms` knobs bound the optimizer: a
//! candidate whose budget runs out keeps its original logic, so the run
//! always finishes with a correct netlist.
//!
//! `--jobs N` runs reachability partitions and candidate decompositions
//! on `N` worker threads (`0` = all cores); the output netlist is
//! byte-identical to a single-threaded run.
//!
//! `--shared-workers N` turns on the shared-memory concurrent BDD
//! kernel *inside* each manager: large apply/ITE/quantify calls run on
//! `N` work-stealing threads over one lock-free unique table. `0` (the
//! default) keeps the single-threaded kernel. Canonical hash-consing
//! makes the results identical either way, so this composes freely
//! with `--jobs` and still emits a byte-identical netlist.
//!
//! `--sweep` turns on the FRAIG-style SAT-sweeping pre-pass: seeded
//! word-parallel simulation groups gates into candidate equivalence
//! classes (up to negation) and one persistent incremental CDCL solver
//! refines them pairwise, merging every proven-equal pair before the
//! symbolic flow starts. `--sweep-rounds N` caps the
//! simulate-refine-resimulate loop and `--sweep-conflicts N` budgets
//! each pairwise query; an undecided pair is soundly left unmerged, and
//! a swept run is still byte-identical across `--jobs` counts.
//!
//! `--dec-backend` arms the decomposability *rescue rung*: when the
//! symbolic partition search exhausts its budget, `sat` proves a fixed
//! midpoint split with the CDCL solver before the ladder degrades to
//! greedy growth, and `portfolio` races a budgeted BDD check against the
//! SAT check on two threads — the first sound verdict wins and the loser
//! is cancelled. `bdd` (the default) skips the rung. `--sat-conflicts N`
//! caps solver effort per check.
//!
//! The BDD kernel knobs tune the reachability managers: `--cache-bits N`
//! caps the computed table at `2^N` entries, `--no-auto-gc` disables the
//! automatic mark-and-sweep collector (`--auto-gc` re-enables it), and
//! `--auto-reorder` turns on threshold-triggered in-place sifting.
//! `--cluster-limit N` caps each transition-relation cluster of the
//! image engine at `N` BDD nodes (`0` = per-bit schedule, no
//! clustering).
//!
//! `--fault-plan site:occurrence:kind` (repeatable) arms a deterministic
//! injected fault — e.g. `--fault-plan bdd.apply:100:budget` trips the
//! 100th apply-level checkpoint as a step-budget exhaustion — to
//! exercise the flow's degradation ladder from the command line;
//! `--fault-seed N` tags the plan for replayable sweeps. The run still
//! finishes with a correct netlist (degraded cones keep their original
//! logic) and reports how many faults actually fired.
//!
//! `decompose --dc` widens the signal's specification with
//! unreachable-state don't cares before computing the choices — the
//! paper's Figure 3.1 flow on your own netlist.
//!
//! Netlist formats are chosen by extension: `.bench` (ISCAS-89),
//! `.blif`, `.aag` (ASCII AIGER), or `.aig` (binary AIGER). `convert`
//! translates between any pair, so `symbi convert design.aig
//! design.bench` imports an HWMCC-style benchmark into the ISCAS world
//! and vice versa.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use symbi::bdd::Manager;
use symbi::core::{and_dec, or_dec, xor_dec, Interval};
use symbi::netlist::cone::ConeExtractor;
use symbi::netlist::{aiger, bench, blif, clean, sec, stats, Netlist};
use symbi::reach::Reachability;
use symbi::synth::flow::{optimize, SynthesisOptions};
use symbi::synth::genlib::Library;
use symbi::synth::map::{map, MapMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("symbi: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  symbi stats     <file>
  symbi convert   <in> <out>
  symbi optimize  <in> [-o <out>] [--no-states] [--max-support N] [--no-xor]
                  [--sweep] [--sweep-rounds N] [--sweep-conflicts N]
                  [--dec-backend bdd|sat|portfolio] [--sat-conflicts N]
                  [--budget-steps N] [--budget-nodes N] [--timeout-ms N]
                  [--jobs N] [--shared-workers N] [--cache-bits N]
                  [--no-auto-gc] [--auto-reorder] [--cluster-limit N]
                  [--fault-plan site:occurrence:kind ...] [--fault-seed N]
  symbi check     <a> <b> [--frames N] [--exact]
  symbi decompose <file> --signal <name> [--kind or|and|xor] [--dc]";

fn load(path: &str) -> Result<Netlist, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    // Binary AIGER is the one format that is not UTF-8 text.
    if ext == "aig" || ext == "aag" || bytes.starts_with(b"aig ") {
        return aiger::parse_bytes(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let text = String::from_utf8(bytes)
        .map_err(|e| format!("{path}: not valid UTF-8 text: {e}"))?;
    match ext {
        "blif" => blif::parse(&text).map_err(|e| format!("{path}: {e}")),
        _ => bench::parse(&text).map_err(|e| format!("{path}: {e}")),
    }
}

fn save(n: &Netlist, path: &str) -> Result<(), String> {
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    let bytes = match ext {
        "blif" => blif::write(n).into_bytes(),
        "aag" => aiger::write_ascii(n).into_bytes(),
        "aig" => aiger::write_binary(n),
        _ => bench::write(n).into_bytes(),
    };
    std::fs::write(path, bytes).map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.as_str())),
            None => Err(format!("{name} requires a value")),
        },
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing file")?;
    let n = load(path)?;
    let s = stats::stats(&n);
    println!("{}: {}", n.name(), s);
    let (cleaned, report) = clean::clean(&n);
    let cs = stats::stats(&cleaned);
    println!("after cleanup: {cs}");
    println!(
        "  removed: {} dead, {} constant, {} cloned latches; {} gates",
        report.dead_latches, report.constant_latches, report.cloned_latches,
        report.gates_removed
    );
    let reach = Reachability::analyze(&cleaned, Default::default());
    let rs = reach.stats();
    println!(
        "reachable states: 2^{:.1} of 2^{} ({} partitions, {} image iterations{})",
        rs.log2_states,
        cs.latches,
        rs.partitions,
        rs.iterations,
        if rs.bailed_out > 0 { ", some approximated" } else { "" }
    );
    let mapped = map(&cleaned, &Library::mcnc_like(), MapMode::Area);
    println!("mapped (mcnc-like): area {:.1}, delay {:.1}, {} cells", mapped.area, mapped.delay, mapped.cells);
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert: expected <in> <out>".into());
    };
    let n = load(input)?;
    save(&n, output)?;
    println!("wrote {output}");
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("optimize: missing file")?;
    let n = load(path)?;
    let mut options = SynthesisOptions::default();
    if args.iter().any(|a| a == "--no-states") {
        options.reach = None;
    }
    if args.iter().any(|a| a == "--no-xor") {
        options.decompose.use_xor = false;
    }
    if let Some(v) = flag_value(args, "--max-support")? {
        options.max_cone_support =
            v.parse().map_err(|e| format!("--max-support: {e}"))?;
    }
    if args.iter().any(|a| a == "--sweep") {
        options.sweep = true;
    }
    if let Some(v) = flag_value(args, "--sweep-rounds")? {
        options.sweep_rounds = v.parse().map_err(|e| format!("--sweep-rounds: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--sweep-conflicts")? {
        options.sweep_conflicts =
            v.parse().map_err(|e| format!("--sweep-conflicts: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--dec-backend")? {
        options.decompose.backend = v.parse().map_err(|e| format!("--dec-backend: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--sat-conflicts")? {
        options.decompose.sat_conflicts =
            v.parse().map_err(|e| format!("--sat-conflicts: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--budget-steps")? {
        options.budget.candidate_steps =
            v.parse().map_err(|e| format!("--budget-steps: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--budget-nodes")? {
        options.budget.node_limit =
            v.parse().map_err(|e| format!("--budget-nodes: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--timeout-ms")? {
        let ms: u64 = v.parse().map_err(|e| format!("--timeout-ms: {e}"))?;
        options.budget.timeout = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(v) = flag_value(args, "--jobs")? {
        options.jobs = match v.parse().map_err(|e| format!("--jobs: {e}"))? {
            0 => symbi::bdd::par::available_jobs(),
            j => j,
        };
    }
    if let Some(v) = flag_value(args, "--shared-workers")? {
        options.kernel.shared_workers =
            v.parse().map_err(|e| format!("--shared-workers: {e}"))?;
    }
    if let Some(reach) = options.reach.as_mut() {
        reach.kernel.shared_workers = options.kernel.shared_workers;
        if let Some(v) = flag_value(args, "--cache-bits")? {
            reach.kernel.cache_bits = v.parse().map_err(|e| format!("--cache-bits: {e}"))?;
        }
        if args.iter().any(|a| a == "--no-auto-gc") {
            reach.kernel.auto_gc = false;
        }
        if args.iter().any(|a| a == "--auto-gc") {
            reach.kernel.auto_gc = true;
        }
        if args.iter().any(|a| a == "--auto-reorder") {
            reach.kernel.auto_reorder = true;
        }
        if let Some(v) = flag_value(args, "--cluster-limit")? {
            reach.cluster_limit = v.parse().map_err(|e| format!("--cluster-limit: {e}"))?;
        }
    }
    // Repeatable `--fault-plan site:occurrence:kind` rules arm a
    // deterministic fault-injection plan on the run's governor.
    let mut fault_rules: Vec<symbi::bdd::FaultRule> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--fault-plan" {
            let v = args.get(i + 1).ok_or("--fault-plan requires a value")?;
            fault_rules.push(v.parse().map_err(|e| format!("--fault-plan: {e}"))?);
        }
    }
    let fault_seed: u64 = match flag_value(args, "--fault-seed")? {
        Some(v) => v.parse().map_err(|e| format!("--fault-seed: {e}"))?,
        None => 0,
    };
    let before = stats::stats(&n);
    let library = Library::mcnc_like();
    let (pre, _) = clean::clean(&n);
    let pre_mapped = map(&pre, &library, MapMode::Area);
    let (optimized, report) = if fault_rules.is_empty() {
        optimize(&n, &options)
    } else {
        let mut plan = symbi::bdd::FaultPlan::new(fault_seed);
        for rule in fault_rules {
            plan = plan.with_parsed_rule(rule);
        }
        let plan = std::sync::Arc::new(plan);
        let gov = options.budget.governor().with_fault_plan(std::sync::Arc::clone(&plan));
        let out = symbi::synth::flow::optimize_governed(&n, &options, &gov);
        println!(
            "fault injection: {} fault(s) fired, {} worker panic(s) absorbed",
            plan.faults_fired(),
            out.1.worker_panics
        );
        out
    };
    let after = stats::stats(&optimized);
    let post_mapped = map(&optimized, &library, MapMode::Area);
    println!("before: {before}");
    println!("after:  {after}");
    println!(
        "candidates {} — decomposed {}, rejected {}, skipped {}, sharing hits {}",
        report.candidates, report.decomposed, report.rejected, report.skipped_wide,
        report.sharing_hits
    );
    println!("log2(reachable states) = {:.1}", report.log2_states);
    if options.sweep {
        let s = &report.sweep;
        if s.degraded {
            println!("sweep: degraded (resources ran out), flow continued unswept");
        } else {
            println!(
                "sweep: {} class(es), {} merge(s), {} SAT call(s), \
                 {} counterexample pattern(s), {} undecided",
                s.classes, s.merges, s.sat_calls, s.cex_patterns, s.undecided
            );
        }
    }
    if report.budget_exhausted_ops > 0 || report.candidates_skipped > 0 {
        println!(
            "budget: {} candidates kept original logic, {} exhausted ops, {} fallbacks",
            report.candidates_skipped, report.budget_exhausted_ops, report.fallbacks_taken
        );
    }
    if report.steps.rescued_checks > 0 || report.steps.portfolio.races > 0 {
        let p = &report.steps.portfolio;
        println!(
            "rescue rung: {} partition(s) saved; portfolio races {} \
             (bdd wins {}, sat wins {}, cancels {}, {:.1} ms)",
            report.steps.rescued_checks,
            p.races,
            p.bdd_wins,
            p.sat_wins,
            p.cancels,
            p.wall_nanos as f64 / 1e6
        );
    }
    println!(
        "mapped area {:.1} → {:.1} ({:.3}), delay {:.1} → {:.1} ({:.3})",
        pre_mapped.area,
        post_mapped.area,
        post_mapped.area / pre_mapped.area,
        pre_mapped.delay,
        post_mapped.delay,
        post_mapped.delay / pre_mapped.delay
    );
    if let Some(out) = flag_value(args, "-o")? {
        save(&optimized, out)?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let (Some(pa), Some(pb)) = (args.first(), args.get(1)) else {
        return Err("check: expected <a> <b>".into());
    };
    let a = load(pa)?;
    let b = load(pb)?;
    if args.iter().any(|x| x == "--exact") {
        match sec::product_machine_check(&a, &b, 100_000) {
            Some(true) => println!("EQUIVALENT (product-machine reachability)"),
            Some(false) => {
                println!("NOT EQUIVALENT");
                return Err("designs differ".into());
            }
            None => return Err("inconclusive: iteration cap reached".into()),
        }
        return Ok(());
    }
    let frames = match flag_value(args, "--frames")? {
        Some(v) => v.parse().map_err(|e| format!("--frames: {e}"))?,
        None => 16,
    };
    match sec::bounded_check(&a, &b, frames) {
        sec::SecResult::Equivalent => {
            println!("EQUIVALENT for {frames} frames (bounded check)");
            Ok(())
        }
        sec::SecResult::Counterexample { trace, output } => {
            println!("NOT EQUIVALENT: output #{output} differs after {} frames", trace.len());
            for (t, frame) in trace.iter().enumerate() {
                let bits: String =
                    frame.iter().map(|&b| if b { '1' } else { '0' }).collect();
                println!("  frame {t}: inputs {bits}");
            }
            Err("designs differ".into())
        }
    }
}

fn cmd_decompose(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("decompose: missing file")?;
    let signal_name = flag_value(args, "--signal")?.ok_or("decompose: missing --signal")?;
    let kind = flag_value(args, "--kind")?.unwrap_or("or");
    let n = load(path)?;
    let sig = n
        .signal(signal_name)
        .ok_or_else(|| format!("no signal named `{signal_name}`"))?;
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
    let f = ext.bdd(&mut m, sig);
    let support = m.support(f);
    println!("{signal_name}: {} support variables, {} BDD nodes", support.len(), m.size(f));
    // Map variables back to leaf names for readable output.
    let names: HashMap<_, _> = ext
        .var_map()
        .iter()
        .map(|(&s, &v)| (v, n.signal_name(s).to_string()))
        .collect();
    let spec = if args.iter().any(|a| a == "--dc") {
        let mut reach = Reachability::analyze(&n, Default::default());
        let ps = n.support_ps(sig);
        let var_of: HashMap<_, _> = ps
            .iter()
            .map(|&l| (l, ext.var_of(l).expect("latch leaves are mapped")))
            .collect();
        let care = reach.care_set(&ps, &mut m, &var_of);
        let unreachable = m.not(care);
        let dc_states = m.sat_fraction(unreachable);
        println!("unreachable don't cares cover {:.1}% of the space", dc_states * 100.0);
        Interval::with_dontcare(&mut m, f, unreachable)
    } else {
        Interval::exact(f)
    };
    let mut choices = match kind {
        "or" => or_dec::Choices::compute(&mut m, &spec, &support),
        "and" => and_dec::Choices::compute(&mut m, &spec, &support),
        "xor" => xor_dec::Choices::compute(&mut m, &spec, &support),
        other => return Err(format!("--kind: expected or|and|xor, got `{other}`")),
    };
    println!("Bi BDD size: {}", choices.bi_size());
    let pairs = choices.feasible_pairs(true);
    println!("non-dominated feasible size pairs: {pairs:?}");
    match choices.pick_balanced_partition() {
        Some(p) => {
            let pretty = |vars: &[symbi::bdd::VarId]| -> Vec<&str> {
                vars.iter().map(|v| names[v].as_str()).collect()
            };
            println!("best balanced partition {:?}:", p.sizes());
            println!("  supp(g1) = {:?}", pretty(&p.g1_vars));
            println!("  supp(g2) = {:?}", pretty(&p.g2_vars));
            println!("  shared   = {:?}", pretty(&p.shared()));
        }
        None => println!("no non-trivial {kind} decomposition exists"),
    }
    Ok(())
}
