//! SEC differential harness for the synthesis flow.
//!
//! Every configuration of the full Algorithm 1 flow — with and without
//! reachability don't cares, unbudgeted and budgeted, sequential and
//! parallel — must preserve the reachable behaviour of every circuit
//! generator family. Each run is checked against the original with
//! SAT-based bounded sequential equivalence
//! ([`symbi::netlist::sec::bounded_check_sat`]); a failing check panics
//! with the full counterexample input trace so the divergence can be
//! replayed.

use std::time::Duration;
use symbi::circuits::{adder, industrial, iscas_like, mux};
use symbi::netlist::{sec, Netlist};
use symbi::synth::flow::{optimize, BudgetOptions, SynthesisOptions};

/// Unrolling depth of the bounded check. Deep enough to walk the small
/// generators through several state transitions.
const FRAMES: usize = 5;

/// Runs the flow under `options` and SAT-checks the result against the
/// original, printing the counterexample trace on divergence.
fn assert_flow_equivalent(netlist: &Netlist, options: &SynthesisOptions, label: &str) {
    let (opt, report) = optimize(netlist, options);
    let (verdict, _) = sec::bounded_check_sat(netlist, &opt, FRAMES);
    if let sec::SecResult::Counterexample { trace, output } = verdict {
        let frames: Vec<String> = trace
            .iter()
            .enumerate()
            .map(|(f, bits)| format!("  frame {f}: {bits:?}"))
            .collect();
        panic!(
            "flow `{label}` broke `{}`: output #{output} diverges within {FRAMES} frames \
             (report: {report:?})\ncounterexample input trace:\n{}",
            netlist.name(),
            frames.join("\n"),
        );
    }
}

/// The smallest representative of each circuit generator family.
fn family_circuits() -> Vec<Netlist> {
    vec![
        adder::ripple_carry(3),
        mux::mux(2),
        iscas_like::by_name("s344").expect("known circuit"),
        industrial::by_name("seq6").expect("known block"),
    ]
}

#[test]
fn flow_with_reach_dontcares_is_equivalent() {
    for n in family_circuits() {
        assert_flow_equivalent(&n, &SynthesisOptions::default(), "reach+unbudgeted");
    }
}

#[test]
fn flow_without_reach_dontcares_is_equivalent() {
    for n in family_circuits() {
        let opts = SynthesisOptions { reach: None, ..Default::default() };
        assert_flow_equivalent(&n, &opts, "noreach+unbudgeted");
    }
}

#[test]
fn budgeted_flow_is_equivalent() {
    // A starved per-candidate budget forces the skip/degrade paths;
    // degraded candidates keep their original cones, so the result must
    // still be equivalent.
    for n in family_circuits() {
        let opts = SynthesisOptions {
            budget: BudgetOptions { candidate_steps: 64, ..Default::default() },
            ..Default::default()
        };
        assert_flow_equivalent(&n, &opts, "reach+budgeted");
    }
}

#[test]
fn timeout_budgeted_flow_is_equivalent() {
    // A microscopic deadline exercises mid-flow cancellation: whatever
    // was decomposed before the deadline must still be correct.
    let n = iscas_like::by_name("s344").expect("known circuit");
    let opts = SynthesisOptions {
        budget: BudgetOptions {
            timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        },
        ..Default::default()
    };
    assert_flow_equivalent(&n, &opts, "reach+deadline");
}

#[test]
fn parallel_budgeted_flow_is_equivalent() {
    // Under a finite budget the parallel flow may degrade *different*
    // candidates than the sequential one (workers race for the shared
    // budget) — but every outcome must still be equivalent.
    for n in family_circuits() {
        let opts = SynthesisOptions {
            budget: BudgetOptions { candidate_steps: 64, ..Default::default() },
            jobs: 4,
            ..Default::default()
        };
        assert_flow_equivalent(&n, &opts, "reach+budgeted+jobs4");
    }
}

#[test]
fn parallel_unbudgeted_flow_is_equivalent() {
    for n in family_circuits() {
        let opts = SynthesisOptions { jobs: 4, ..Default::default() };
        assert_flow_equivalent(&n, &opts, "reach+unbudgeted+jobs4");
    }
}
