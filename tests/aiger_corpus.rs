//! The seed-corpus contract: every AIGER file under `tests/corpus/`
//! parses, round-trips byte-stably in and across both forms, and
//! re-emits a circuit that simulates identically to what was parsed.

use std::path::PathBuf;
use symbi::netlist::{aiger, sim, Netlist};

fn corpus_files() -> Vec<(PathBuf, Vec<u8>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| {
            matches!(p.extension().and_then(|e| e.to_str()), Some("aag") | Some("aig"))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 10, "seed corpus shrank to {} files", files.len());
    files
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).expect("readable corpus file");
            (p, bytes)
        })
        .collect()
}

fn round_trip(path: &std::path::Path, n: &Netlist) {
    let name = path.display();
    let ascii = aiger::write_ascii(n);
    let binary = aiger::write_binary(n);
    let from_ascii = aiger::parse_ascii(&ascii)
        .unwrap_or_else(|e| panic!("{name}: re-parsing emitted ascii: {e}"));
    let from_binary = aiger::parse_binary(&binary)
        .unwrap_or_else(|e| panic!("{name}: re-parsing emitted binary: {e}"));
    // Byte stability in and across forms: the writers are canonical,
    // so one round trip reaches the fixpoint.
    assert_eq!(aiger::write_ascii(&from_ascii), ascii, "{name}: ascii not byte-stable");
    assert_eq!(aiger::write_binary(&from_binary), binary, "{name}: binary not byte-stable");
    assert_eq!(aiger::write_ascii(&from_binary), ascii, "{name}: binary→ascii diverged");
    assert_eq!(aiger::write_binary(&from_ascii), binary, "{name}: ascii→binary diverged");
    // Semantic equivalence of every re-parsed form with the original.
    for (form, re) in [("ascii", &from_ascii), ("binary", &from_binary)] {
        assert!(
            sim::random_co_simulation(n, re, 256, 0xA16E_2024),
            "{name}: {form} round trip changed behaviour"
        );
    }
}

#[test]
fn every_corpus_file_parses_and_round_trips() {
    let files = corpus_files();
    let mut ascii = 0;
    let mut binary = 0;
    for (path, bytes) in &files {
        let n = aiger::parse_bytes(bytes)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        n.validate().unwrap_or_else(|e| panic!("{}: invalid netlist: {e}", path.display()));
        match path.extension().and_then(|e| e.to_str()) {
            Some("aag") => ascii += 1,
            _ => binary += 1,
        }
        round_trip(path, &n);
    }
    assert!(ascii >= 8, "want ascii coverage, got {ascii}");
    assert!(binary >= 3, "want binary coverage, got {binary}");
}

#[test]
fn stored_binary_twins_match_their_ascii_sources() {
    // Where both forms are checked in, they must describe the same
    // circuit: the canonical emissions from either file are identical.
    let files = corpus_files();
    for (path, bytes) in &files {
        if path.extension().and_then(|e| e.to_str()) != Some("aig") {
            continue;
        }
        let twin = path.with_extension("aag");
        let Ok(twin_bytes) = std::fs::read(&twin) else { continue };
        let a = aiger::parse_bytes(bytes).expect("binary parses");
        let b = aiger::parse_bytes(&twin_bytes).expect("ascii twin parses");
        assert!(
            sim::random_co_simulation(&a, &b, 256, 0xA16E_2025),
            "{}: binary and ascii twins disagree",
            path.display()
        );
    }
}

#[test]
fn corpus_latch_resets_survive_the_round_trip() {
    // reset1 powers up at 1 and blinks; const drives its latch to the
    // constant true. Both reset values must survive re-emission.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for file in ["reset1.aag", "mixed_reset.aag", "const.aag"] {
        let bytes = std::fs::read(dir.join(file)).expect("corpus file");
        let n = aiger::parse_bytes(&bytes).expect("parses");
        let re = aiger::parse_binary(&aiger::write_binary(&n)).expect("round trips");
        let inits = |m: &Netlist| -> Vec<bool> {
            m.latches()
                .iter()
                .map(|&l| match m.kind(l) {
                    symbi::netlist::NodeKind::Latch { init } => init,
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(inits(&n), inits(&re), "{file}: latch resets changed");
        assert!(inits(&n).iter().any(|&b| b), "{file}: expected a reset-1 latch");
    }
}
