//! Cross-crate integration tests: parse → clean → reach → decompose →
//! synthesize → map, exercised through the umbrella crate's public API.

use std::collections::HashMap;
use symbi::bdd::{Manager, VarId};
use symbi::circuits::iscas_like;
use symbi::core::{or_dec, recursive, Interval};
use symbi::netlist::cone::ConeExtractor;
use symbi::netlist::sim::random_co_simulation;
use symbi::netlist::{bench, blif, clean, stats, NodeKind};
use symbi::reach::{Reachability, ReachabilityOptions};
use symbi::synth::flow::{optimize, SynthesisOptions};
use symbi::synth::genlib::Library;
use symbi::synth::map::{map, MapMode};

/// A small control circuit exercised by most tests below.
fn gray_counter_bench() -> &'static str {
    "
# name: gray3
INPUT(en)
OUTPUT(o0)
OUTPUT(o1)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
nen = NOT(en)
t0 = XOR(q0, q1)
nt0 = NOT(t0)
d0a = AND(en, nt0)
d0b = AND(nen, q0)
d0 = OR(d0a, d0b)
nq2 = NOT(q2)
gsel = AND(q0, nq2)
t1 = XOR(q1, gsel)
d1a = AND(en, t1)
d1b = AND(nen, q1)
d1 = OR(d1a, d1b)
gsel2 = AND(q1, q0)
t2 = XOR(q2, gsel2)
d2a = AND(en, t2)
d2b = AND(nen, q2)
d2 = OR(d2a, d2b)
o0 = XOR(q0, q2)
o1 = AND(q1, q2)
"
}

#[test]
fn parse_clean_roundtrip_preserves_behaviour() {
    let n = bench::parse(gray_counter_bench()).expect("parses");
    let (cleaned, _) = clean::clean(&n);
    assert!(random_co_simulation(&n, &cleaned, 64, 11));
    // Through BLIF and back.
    let text = blif::write(&cleaned);
    let back = blif::parse(&text).expect("blif round trip");
    assert!(random_co_simulation(&cleaned, &back, 64, 13));
}

#[test]
fn reachability_dontcares_flow_into_decomposition() {
    let n = bench::parse(gray_counter_bench()).expect("parses");
    let (cleaned, _) = clean::clean(&n);
    let mut reach = Reachability::analyze(&cleaned, ReachabilityOptions::default());
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&cleaned, &mut m);
    let var_of: HashMap<_, _> = cleaned
        .latches()
        .iter()
        .map(|&l| (l, ext.var_of(l).expect("mapped")))
        .collect();
    // Decompose every output with its unreachable-state don't cares and
    // verify membership of each result.
    for &(_, sig) in cleaned.outputs() {
        let f = ext.bdd(&mut m, sig);
        let ps: Vec<_> = cleaned.support_ps(sig);
        let care = reach.care_set(&ps, &mut m, &var_of);
        let dc = m.not(care);
        let interval = Interval::with_dontcare(&mut m, f, dc);
        let (tree, _) = recursive::decompose(&mut m, &interval, &recursive::Options::default());
        let g = tree.to_bdd(&mut m);
        assert!(interval.contains(&mut m, g), "output decomposition must verify");
    }
}

#[test]
fn full_synthesis_flow_on_generated_circuit() {
    let n = iscas_like::by_name("s344").expect("known circuit");
    let (optimized, report) = optimize(&n, &SynthesisOptions::default());
    assert!(report.decomposed > 0);
    assert!(random_co_simulation(&n, &optimized, 48, 99), "behaviour preserved");
    // Mapping both sides works and the optimized one is not larger.
    let lib = Library::mcnc_like();
    let (pre, _) = clean::clean(&n);
    let before = map(&pre, &lib, MapMode::Area);
    let after = map(&optimized, &lib, MapMode::Area);
    assert!(after.area <= before.area * 1.001, "{} > {}", after.area, before.area);
}

#[test]
fn symbolic_choices_agree_with_witnesses_across_crates() {
    // Build a function through the netlist path and decompose through the
    // core path; the witnesses must verify in the shared manager.
    let n = bench::parse(gray_counter_bench()).expect("parses");
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
    let d1 = n.signal("d1").expect("exists");
    let f = ext.bdd(&mut m, d1);
    let support = m.support(f);
    let spec = Interval::exact(f);
    let mut choices = or_dec::Choices::compute(&mut m, &spec, &support);
    if let Some(pair) = choices.pick_balanced_partition() {
        let a_vac: Vec<VarId> =
            support.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
        let b_vac: Vec<VarId> =
            support.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
        assert!(or_dec::decomposable(&mut m, &spec, &a_vac, &b_vac));
        let (g1, g2) = or_dec::witnesses(&mut m, &spec, &a_vac, &b_vac);
        let composed = m.or(g1, g2);
        assert!(spec.contains(&mut m, composed));
    }
}

#[test]
fn generated_suite_parses_cleans_and_validates() {
    for spec in iscas_like::SPECS.iter().take(6) {
        let n = iscas_like::generate(spec);
        let text = bench::write(&n);
        let back = bench::parse(&text).expect("generated circuits serialize");
        assert!(random_co_simulation(&n, &back, 16, 7), "{}", spec.name);
        let (cleaned, _) = clean::clean(&n);
        assert!(cleaned.validate().is_ok());
        let s = stats::stats(&cleaned);
        assert!(s.gates > 0, "{}", spec.name);
    }
}

#[test]
fn optimizer_never_changes_interface() {
    let n = iscas_like::by_name("s526").expect("known circuit");
    let (optimized, _) = optimize(&n, &SynthesisOptions::default());
    assert_eq!(optimized.num_inputs(), n.num_inputs());
    assert_eq!(optimized.num_outputs(), n.num_outputs());
    for (a, b) in n.outputs().iter().zip(optimized.outputs()) {
        assert_eq!(a.0, b.0, "output names preserved in order");
    }
    // Latches may shrink (constants/clones) but never grow.
    assert!(optimized.num_latches() <= n.num_latches());
    // Inputs retain names.
    for (&a, &b) in n.inputs().iter().zip(optimized.inputs()) {
        assert_eq!(n.signal_name(a), optimized.signal_name(b));
    }
}

#[test]
fn no_state_optimization_is_combinationally_safe() {
    // With reach disabled, the optimized circuit must agree on EVERY
    // state, which we check by forcing arbitrary states.
    let n = bench::parse(gray_counter_bench()).expect("parses");
    let opts = SynthesisOptions { reach: None, ..Default::default() };
    let (optimized, _) = optimize(&n, &opts);
    let (cleaned, _) = clean::clean(&n);
    assert_eq!(cleaned.num_latches(), optimized.num_latches());
    let mut sim_a = symbi::netlist::sim::Simulator::new(&cleaned);
    let mut sim_b = symbi::netlist::sim::Simulator::new(&optimized);
    for state_bits in 0u64..8 {
        let state: Vec<u64> = (0..3).map(|i| (state_bits >> i & 1).wrapping_neg()).collect();
        sim_a.set_state(&state);
        sim_b.set_state(&state);
        for en in [0u64, u64::MAX] {
            assert_eq!(sim_a.eval_comb(&[en]), sim_b.eval_comb(&[en]));
        }
    }
}

#[test]
fn cone_extraction_matches_simulation_on_generated_circuit() {
    let n = iscas_like::by_name("s344").expect("known");
    let (cleaned, _) = clean::clean(&n);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&cleaned, &mut m);
    let mut sim = symbi::netlist::sim::Simulator::new(&cleaned);
    // One random-ish assignment, checked for every output cone.
    let inputs: Vec<u64> = (0..cleaned.num_inputs() as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
    let state: Vec<u64> =
        (0..cleaned.num_latches() as u64).map(|i| i.wrapping_mul(0x51c7)).collect();
    sim.set_state(&state);
    let outs = sim.eval_comb(&inputs);
    for (idx, &(_, sig)) in cleaned.outputs().iter().enumerate() {
        let f = ext.bdd(&mut m, sig);
        // Bit 0 of every word drives one concrete Boolean assignment.
        let mut assignment = vec![false; m.num_vars()];
        for (i, &s) in cleaned.inputs().iter().enumerate() {
            assignment[ext.var_of(s).unwrap().index()] = inputs[i] & 1 == 1;
        }
        for (i, &s) in cleaned.latches().iter().enumerate() {
            assignment[ext.var_of(s).unwrap().index()] = state[i] & 1 == 1;
        }
        assert_eq!(m.eval(f, &assignment), outs[idx] & 1 == 1, "output {idx}");
    }
}

#[test]
fn kinds_survive_full_pipeline() {
    // Sanity: a netlist with every gate kind passes parse → clean → aig →
    // map without losing behaviour.
    let text = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\n\
g1 = NAND(a, b)\ng2 = NOR(b, c)\ng3 = XNOR(a, c)\ng4 = XOR(g1, g2)\n\
g5 = BUFF(g3)\ng6 = NOT(g4)\nf = AND(g5, g6, a)\n";
    let n = bench::parse(text).expect("parses");
    let aig = symbi::netlist::aig::to_aig(&n);
    assert!(random_co_simulation(&n, &aig, 16, 21));
    let mapped = map(&n, &Library::mcnc_like(), MapMode::Area);
    assert!(mapped.area > 0.0);
    for s in aig.signals() {
        if let NodeKind::Gate(kind) = aig.kind(s) {
            assert!(matches!(kind, symbi::netlist::GateKind::And | symbi::netlist::GateKind::Not));
        }
    }
}
