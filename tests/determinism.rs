//! Determinism oracle for the parallel synthesis engine.
//!
//! The parallel flow's contract is *byte-identity*: under the default
//! unlimited budget, `optimize` with `jobs = N` must produce exactly the
//! `.bench` serialization (and the same report) as `jobs = 1`, for every
//! circuit. These tests pin that contract across all four circuit
//! generator families plus proptest-driven random netlists.
//!
//! The parallel worker count is taken from `SYMBI_JOBS` (default 4) so
//! CI can sweep `--jobs 1/2/8` over the same test binary.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use symbi::circuits::{adder, industrial, iscas_like, mux};
use symbi::netlist::{bench, GateKind, Netlist, SignalId};
use symbi::synth::flow::{optimize, SynthesisOptions};

/// Worker count for the parallel arm: `SYMBI_JOBS`, default 4.
fn par_jobs() -> usize {
    std::env::var("SYMBI_JOBS").ok().and_then(|v| v.parse().ok()).filter(|&j| j > 0).unwrap_or(4)
}

/// Asserts the oracle on one circuit: byte-identical `.bench` output and
/// field-for-field identical reports between `jobs = 1` and `jobs = N`.
fn assert_deterministic(netlist: &Netlist, options: &SynthesisOptions) {
    let jobs = par_jobs();
    let (seq_net, seq_rep) = optimize(netlist, &SynthesisOptions { jobs: 1, ..*options });
    let (par_net, par_rep) = optimize(netlist, &SynthesisOptions { jobs, ..*options });
    assert_eq!(
        bench::write(&seq_net),
        bench::write(&par_net),
        "jobs={jobs} diverged from jobs=1 on `{}`",
        netlist.name()
    );
    assert_eq!(seq_rep, par_rep, "report mismatch on `{}` at jobs={jobs}", netlist.name());
}

#[test]
fn adder_is_deterministic() {
    assert_deterministic(&adder::ripple_carry(4), &SynthesisOptions::default());
}

#[test]
fn mux_is_deterministic() {
    assert_deterministic(&mux::mux(3), &SynthesisOptions::default());
}

#[test]
fn iscas_like_circuits_are_deterministic() {
    for name in ["s344", "s526"] {
        let n = iscas_like::by_name(name).expect("known circuit");
        assert_deterministic(&n, &SynthesisOptions::default());
    }
}

#[test]
fn industrial_block_is_deterministic() {
    let n = industrial::by_name("seq6").expect("known block");
    assert_deterministic(&n, &SynthesisOptions::default());
}

#[test]
fn no_state_arm_is_deterministic() {
    let n = iscas_like::by_name("s344").expect("known circuit");
    assert_deterministic(&n, &SynthesisOptions { reach: None, ..Default::default() });
}

#[test]
fn tight_partitions_are_deterministic() {
    // One-latch partitions maximize the number of parallel reach tasks.
    let n = iscas_like::by_name("s526").expect("known circuit");
    let reach = symbi::reach::ReachabilityOptions {
        partition: symbi::reach::PartitionOptions { max_latches: 1 },
        ..Default::default()
    };
    assert_deterministic(&n, &SynthesisOptions { reach: Some(reach), ..Default::default() });
}

#[test]
fn clustered_reachability_is_deterministic_across_jobs() {
    // The clustered image engine makes its decisions (merge order,
    // quantification schedule, constrain/restrict acceptance) from
    // canonical per-partition data only, so reached sets *and* every
    // ReachStats counter must be identical however many workers run.
    use symbi::reach::{Reachability, ReachabilityOptions};
    let jobs = par_jobs();
    for name in ["seq4", "seq6"] {
        let n = industrial::by_name(name).expect("known block");
        let opts = ReachabilityOptions {
            partition: symbi::reach::PartitionOptions { max_latches: 8 },
            ..Default::default()
        };
        let seq = Reachability::analyze(&n, ReachabilityOptions { jobs: 1, ..opts });
        let par = Reachability::analyze(&n, ReachabilityOptions { jobs, ..opts });
        assert!(
            seq.same_reached_sets(&par),
            "jobs={jobs} reached different sets than jobs=1 on `{name}`"
        );
        assert_eq!(seq.stats(), par.stats(), "ReachStats mismatch on `{name}` at jobs={jobs}");
    }
}

#[test]
fn shared_kernel_sweep_is_byte_identical() {
    // The shared-memory concurrent kernel hash-conses into the same
    // unique table as the sequential path, so every result it returns is
    // the canonical node for its function — a `shared_workers` sweep must
    // therefore be invisible downstream: identical netlist bytes and
    // field-for-field identical reports at every worker count, including
    // the `0` default (which never touches the concurrent code at all).
    // `SYMBI_SHARED_WORKERS` (default "0,2,4") lets CI sweep wider
    // matrices over the same binary.
    use symbi::bdd::KernelConfig;
    let counts: Vec<usize> = std::env::var("SYMBI_SHARED_WORKERS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![0, 2, 4]);
    let circuits = [
        iscas_like::by_name("s344").expect("known circuit"),
        industrial::by_name("seq6").expect("known block"),
    ];
    for n in &circuits {
        let mut reference: Option<(String, _)> = None;
        for &w in &counts {
            let kernel = KernelConfig { shared_workers: w, ..KernelConfig::default() };
            let mut options = SynthesisOptions { kernel, ..Default::default() };
            if let Some(reach) = options.reach.as_mut() {
                reach.kernel.shared_workers = w;
            }
            let (net, rep) = optimize(n, &options);
            let text = bench::write(&net);
            match &reference {
                None => reference = Some((text, rep)),
                Some((ref_text, ref_rep)) => {
                    assert_eq!(
                        ref_text,
                        &text,
                        "shared_workers={w} changed the netlist on `{}`",
                        n.name()
                    );
                    assert_eq!(
                        ref_rep,
                        &rep,
                        "shared_workers={w} changed the report on `{}`",
                        n.name()
                    );
                }
            }
        }
    }
}

#[test]
fn backend_sweep_is_identical_at_default_budgets() {
    // Under the default unlimited budget the rescue rung never engages,
    // so the decomposability backend must be invisible: every backend ×
    // jobs combination emits the same bytes as the plain BDD ladder.
    use symbi::core::recursive::DecBackend;
    let n = iscas_like::by_name("s344").expect("known circuit");
    let mut reference: Option<String> = None;
    for backend in [DecBackend::Bdd, DecBackend::Sat, DecBackend::Portfolio] {
        let mut options = SynthesisOptions::default();
        options.decompose.backend = backend;
        assert_deterministic(&n, &options);
        let (net, report) = optimize(&n, &options);
        assert_eq!(report.steps.rescued_checks, 0, "{backend}: no budget trip, no rescue");
        assert_eq!(report.steps.portfolio.races, 0, "{backend}: no rescue, no race");
        let text = bench::write(&net);
        match &reference {
            None => reference = Some(text),
            Some(r) => assert_eq!(r, &text, "backend {backend} diverged from bdd"),
        }
    }
}

/// Disjoint two-block cones `(a·b) + (c·d)` — the rescue-rung family
/// (see `symbi_bench::two_block_cones`, replicated here so the oracle
/// binary does not depend on the bench crate).
fn two_block_cones(blocks: usize) -> Netlist {
    let mut n = Netlist::new("two_block");
    for i in 0..blocks {
        let a = n.add_input(format!("a{i}"));
        let b = n.add_input(format!("b{i}"));
        let c = n.add_input(format!("c{i}"));
        let d = n.add_input(format!("d{i}"));
        let ab = n.add_gate(format!("ab{i}"), GateKind::And, vec![a, b]);
        let cd = n.add_gate(format!("cd{i}"), GateKind::And, vec![c, d]);
        let o = n.add_gate(format!("o{i}"), GateKind::Or, vec![ab, cd]);
        n.add_output(format!("f{i}"), o);
    }
    n
}

#[test]
fn portfolio_rescue_netlist_is_independent_of_the_race_winner() {
    // Tight budgets engage the portfolio race on the rescue rung. The
    // race prepays its step budget, so the emitted netlist is a pure
    // function of the limits — never of which arm wins or how fast the
    // loser drains. Every configuration, re-run, must reproduce its
    // bytes exactly; the budget list brackets the family's rescue
    // window so at least one configuration really races.
    use symbi::core::recursive::DecBackend;
    let n = two_block_cones(2);
    let jobs = par_jobs();
    let mut raced = false;
    for budget in [1024u64, 1797, 2246, 2807, 3508, 4385, 8192] {
        for j in [1, jobs] {
            let mut options = SynthesisOptions { reach: None, jobs: j, ..Default::default() };
            options.decompose.use_xor = false;
            options.decompose.backend = DecBackend::Portfolio;
            options.budget.candidate_steps = budget;
            let (net_a, rep_a) = optimize(&n, &options);
            let (net_b, rep_b) = optimize(&n, &options);
            assert_eq!(
                bench::write(&net_a),
                bench::write(&net_b),
                "budget {budget} jobs {j}: race winner leaked into the netlist"
            );
            assert_eq!(
                rep_a.steps.rescued_checks, rep_b.steps.rescued_checks,
                "budget {budget} jobs {j}: rescue count must be reproducible"
            );
            raced |= rep_a.steps.portfolio.races > 0;
        }
    }
    assert!(raced, "no budget engaged the race — the oracle exercised nothing");
}

/// Seeded random sequential netlist: gates only reference earlier
/// signals, so the result is acyclic by construction.
fn random_netlist(seed: u64, n_inputs: usize, n_latches: usize, n_gates: usize) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut n = Netlist::new("rnd");
    let mut pool: Vec<SignalId> =
        (0..n_inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    let latches: Vec<SignalId> =
        (0..n_latches).map(|i| n.add_latch(format!("q{i}"), rng.gen_bool(0.5))).collect();
    pool.extend(&latches);
    for g in 0..n_gates {
        let kind = match rng.gen_range(0..5usize) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            _ => GateKind::Not,
        };
        let arity = if kind.is_unary() { 1 } else { 2 };
        let fanins: Vec<SignalId> =
            (0..arity).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        pool.push(n.add_gate(format!("g{g}"), kind, fanins));
    }
    for &q in &latches {
        n.set_latch_next(q, pool[rng.gen_range(0..pool.len())]);
    }
    // A couple of outputs deep in the pool keep most of the logic alive.
    n.add_output("o0", pool[pool.len() - 1]);
    n.add_output("o1", pool[pool.len() / 2]);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_netlists_are_deterministic(
        seed in any::<u64>(),
        n_inputs in 1usize..4,
        n_latches in 1usize..6,
        n_gates in 4usize..24,
    ) {
        let n = random_netlist(seed, n_inputs, n_latches, n_gates);
        let jobs = par_jobs();
        let (seq_net, seq_rep) = optimize(&n, &SynthesisOptions { jobs: 1, ..Default::default() });
        let (par_net, par_rep) = optimize(&n, &SynthesisOptions { jobs, ..Default::default() });
        prop_assert_eq!(bench::write(&seq_net), bench::write(&par_net));
        prop_assert_eq!(seq_rep, par_rep);
    }
}
