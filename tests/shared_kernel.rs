//! Pointer-identity oracle for the shared-memory concurrent BDD kernel.
//!
//! The shared kernel's contract is stronger than "same Boolean
//! function": because every worker hash-conses into the *same* unique
//! table as the sequential path, the `NodeId` an operation returns is
//! the canonical node for its function. These tests pin that contract
//! from outside the crate: results computed at `shared_workers` 2 and 4
//! are transferred into one fresh manager alongside the sequential
//! results, where equal functions must collapse to *identical* node
//! ids — pointer identity after canonical reconstruction, not just
//! semantic equivalence.
//!
//! Also covered: cooperative cancellation raised mid-operation from
//! another thread (the work-stealing phase must unwind every worker and
//! leave the manager fully usable), and the `shared_workers = 0`
//! default staying on the untouched single-threaded code path.

use proptest::prelude::*;
use symbi::bdd::hash::FxHashMap;
use symbi::bdd::{KernelConfig, Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// A manager with `n` declared variables and the given worker count.
fn manager(workers: usize, n_vars: usize) -> (Manager, Vec<NodeId>) {
    let kernel = KernelConfig { shared_workers: workers, ..KernelConfig::default() };
    let mut m = Manager::with_kernel_config(kernel);
    let vars = m.new_vars(n_vars);
    (m, vars)
}

/// Symmetric at-least-`k`-of-`n` threshold over `vars` — Θ(n·k) nodes,
/// the cheapest way to build operands big enough to cross the shared
/// dispatcher's size gate (small operands stay sequential by design).
fn threshold(m: &mut Manager, vars: &[NodeId], k: usize) -> NodeId {
    let mut rows: Vec<NodeId> =
        (0..=k).map(|j| if j == 0 { NodeId::TRUE } else { NodeId::FALSE }).collect();
    for &v in vars.iter().rev() {
        for j in (1..=k).rev() {
            rows[j] = m.ite(v, rows[j - 1], rows[j]);
        }
    }
    rows[k]
}

/// One step of the random operation script. Operand indices are taken
/// modulo the live pool, so any index vector is a valid script.
#[derive(Debug, Clone)]
enum ScriptOp {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Ite(usize, usize, usize),
    Exists(usize, u8),
    Forall(usize, u8),
    AndExists(usize, usize, u8),
}

fn script_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        any::<usize>().prop_map(ScriptOp::Not),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| ScriptOp::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| ScriptOp::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| ScriptOp::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| ScriptOp::Ite(a, b, c)),
        (any::<usize>(), any::<u8>()).prop_map(|(a, m)| ScriptOp::Exists(a, m)),
        (any::<usize>(), any::<u8>()).prop_map(|(a, m)| ScriptOp::Forall(a, m)),
        (any::<usize>(), any::<usize>(), any::<u8>())
            .prop_map(|(a, b, m)| ScriptOp::AndExists(a, b, m)),
    ]
}

/// Positive cube over the variables selected by `mask`'s low bits.
fn cube(m: &mut Manager, vars: &[NodeId], mask: u8, gov: &ResourceGovernor) -> NodeId {
    let mut c = NodeId::TRUE;
    for (i, &v) in vars.iter().enumerate().take(8) {
        if mask & (1 << i) != 0 {
            c = m.try_and(v, c, gov).expect("unlimited governor");
        }
    }
    c
}

/// Replays `ops` through the budgeted entry points (the only ones that
/// can dispatch onto the shared kernel) and returns every intermediate.
fn run_script(workers: usize, n_vars: usize, ops: &[ScriptOp]) -> (Manager, Vec<NodeId>) {
    let (mut m, vars) = manager(workers, n_vars);
    let gov = ResourceGovernor::unlimited();
    let mut pool = vars.clone();
    for op in ops {
        let pick = |i: &usize| pool[i % pool.len()];
        let r = match op {
            ScriptOp::Not(a) => m.try_not(pick(a), &gov),
            ScriptOp::And(a, b) => m.try_and(pick(a), pick(b), &gov),
            ScriptOp::Or(a, b) => m.try_or(pick(a), pick(b), &gov),
            ScriptOp::Xor(a, b) => m.try_xor(pick(a), pick(b), &gov),
            ScriptOp::Ite(a, b, c) => m.try_ite(pick(a), pick(b), pick(c), &gov),
            ScriptOp::Exists(a, mask) => {
                let (f, c) = (pick(a), cube(&mut m, &vars, *mask, &gov));
                m.try_exists_cube(f, c, &gov)
            }
            ScriptOp::Forall(a, mask) => {
                let (f, c) = (pick(a), cube(&mut m, &vars, *mask, &gov));
                m.try_forall_cube(f, c, &gov)
            }
            ScriptOp::AndExists(a, b, mask) => {
                let (f, g, c) = (pick(a), pick(b), cube(&mut m, &vars, *mask, &gov));
                m.try_and_exists(f, g, c, &gov)
            }
        };
        pool.push(r.expect("unlimited governor"));
    }
    (m, pool)
}

/// Transfers both runs' results into one fresh manager and asserts
/// pointer identity pairwise.
fn assert_pointer_identical(
    seq: (&Manager, &[NodeId]),
    shared: (&Manager, &[NodeId]),
    n_vars: usize,
    context: &str,
) {
    assert_eq!(seq.1.len(), shared.1.len());
    let mut dst = Manager::with_vars(n_vars);
    let identity: FxHashMap<VarId, VarId> =
        (0..n_vars as u32).map(|i| (VarId(i), VarId(i))).collect();
    for (i, (&a, &b)) in seq.1.iter().zip(shared.1).enumerate() {
        let ta = dst.transfer_from(seq.0, a, &identity);
        let tb = dst.transfer_from(shared.0, b, &identity);
        assert_eq!(
            ta, tb,
            "{context}: result {i} differs between sequential and shared runs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random apply/ITE/quantify scripts must produce pointer-identical
    /// results at 2 and 4 shared workers. (Small intermediates stay on
    /// the sequential path by design — the size gate itself is part of
    /// the contract under test: gate decisions depend only on canonical
    /// operand sizes, never on scheduling.)
    #[test]
    fn random_scripts_are_pointer_identical_across_workers(
        ops in proptest::collection::vec(script_op(), 4..40),
        n_vars in 4usize..12,
    ) {
        let (seq_m, seq_pool) = run_script(1, n_vars, &ops);
        for workers in [2usize, 4] {
            let (sh_m, sh_pool) = run_script(workers, n_vars, &ops);
            assert_pointer_identical(
                (&seq_m, &seq_pool),
                (&sh_m, &sh_pool),
                n_vars,
                &format!("workers={workers}"),
            );
        }
    }
}

/// Deterministically-large operands force the script through the
/// concurrent phase (the proptest above mostly exercises the gate's
/// decline path), covering binary apply, ITE, quantification and the
/// relational product.
#[test]
fn large_operands_are_pointer_identical_across_workers() {
    let n_vars = 90;
    let run = |workers: usize| {
        let (mut m, vars) = manager(workers, n_vars);
        let gov = ResourceGovernor::unlimited();
        let f = threshold(&mut m, &vars, 45);
        let g = threshold(&mut m, &vars[8..], 30);
        let h = threshold(&mut m, &vars[..70], 25);
        let mut results = vec![
            m.try_and(f, g, &gov).unwrap(),
            m.try_or(f, h, &gov).unwrap(),
            m.try_xor(g, h, &gov).unwrap(),
            m.try_ite(f, g, h, &gov).unwrap(),
        ];
        let mut c = NodeId::TRUE;
        for &v in &vars[..6] {
            c = m.try_and(v, c, &gov).unwrap();
        }
        results.push(m.try_exists_cube(f, c, &gov).unwrap());
        results.push(m.try_forall_cube(g, c, &gov).unwrap());
        results.push(m.try_and_exists(f, g, c, &gov).unwrap());
        (m, results)
    };
    let (seq_m, seq_r) = run(1);
    for workers in [2usize, 4] {
        let (sh_m, sh_r) = run(workers);
        assert_pointer_identical(
            (&seq_m, &seq_r),
            (&sh_m, &sh_r),
            n_vars,
            &format!("large operands, workers={workers}"),
        );
    }
}

/// Cancellation raised from another thread mid-operation: the phase
/// must unwind every worker (no hang, no leaked poison) and the manager
/// must stay fully usable for a clean rerun.
#[test]
fn cancellation_mid_run_unwinds_and_manager_survives() {
    let n_vars = 90;
    let (mut m, vars) = manager(4, n_vars);
    let f = threshold(&mut m, &vars, 45);
    let g = threshold(&mut m, &vars[8..], 30);
    let gov = ResourceGovernor::unlimited();
    let handle = gov.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_micros(200));
        handle.cancel();
    });
    let raced = m.try_and(f, g, &gov);
    canceller.join().expect("canceller thread");
    match raced {
        Ok(_) | Err(ResourceExhausted::Cancelled) => {}
        Err(e) => panic!("cancellation produced the wrong error: {e:?}"),
    }
    // The manager survives: a clean governor reruns the operation and
    // the result matches an untouched sequential manager's.
    let clean = ResourceGovernor::unlimited();
    let r = m.try_and(f, g, &clean).expect("clean rerun");
    let (mut seq_m, seq_vars) = manager(0, n_vars);
    let sf = threshold(&mut seq_m, &seq_vars, 45);
    let sg = threshold(&mut seq_m, &seq_vars[8..], 30);
    let sr = seq_m.try_and(sf, sg, &clean).expect("sequential reference");
    let mut dst = Manager::with_vars(n_vars);
    let identity: FxHashMap<VarId, VarId> =
        (0..n_vars as u32).map(|i| (VarId(i), VarId(i))).collect();
    assert_eq!(
        dst.transfer_from(&m, r, &identity),
        dst.transfer_from(&seq_m, sr, &identity),
        "post-cancellation rerun diverged from the sequential kernel"
    );
}

/// `shared_workers = 0` is the default and must stay on the sequential
/// path — the concurrent kernel is strictly opt-in.
#[test]
fn shared_workers_defaults_to_zero() {
    assert_eq!(KernelConfig::default().shared_workers, 0);
}
