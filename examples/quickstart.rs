//! Quickstart: symbolic bi-decomposition of a single function.
//!
//! Builds `f = ab + cd + e`, computes the characteristic function of all
//! feasible OR-decomposition supports, explores the choice space, and
//! extracts a verified decomposition — the core loop of the paper in
//! thirty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use symbi::bdd::{Manager, VarId};
use symbi::core::{or_dec, Interval};

fn main() {
    // 1. Build the function in a BDD manager.
    let mut m = Manager::new();
    let vars = m.new_vars(5);
    let ab = m.and(vars[0], vars[1]);
    let cd = m.and(vars[2], vars[3]);
    let t = m.or(ab, cd);
    let f = m.or(t, vars[4]);
    println!("f = ab + cd + e over 5 variables ({} BDD nodes)", m.size(f));

    // 2. Compute Bi(c1, c2): every feasible pair of supports at once.
    let spec = Interval::exact(f);
    let var_ids: Vec<VarId> = (0..5).map(VarId).collect();
    let mut choices = or_dec::Choices::compute(&mut m, &spec, &var_ids);
    println!("Bi BDD size: {} nodes", choices.bi_size());

    // 3. Explore the choice space symbolically.
    let pairs = choices.feasible_pairs(true);
    println!("non-dominated feasible support-size pairs: {pairs:?}");
    let (k1, k2) = choices.best_balanced().expect("f is OR-decomposable");
    println!("best balanced partition: ({k1}, {k2})");
    println!("choices of that shape: {}", choices.count_choices(k1, k2));

    // 4. Pick one partition and extract the witnesses.
    let partition = choices.pick_partition(k1, k2).expect("feasible");
    println!("supp(g1) = {:?}", partition.g1_vars);
    println!("supp(g2) = {:?}", partition.g2_vars);
    let a_vac: Vec<VarId> =
        var_ids.iter().copied().filter(|v| !partition.g1_vars.contains(v)).collect();
    let b_vac: Vec<VarId> =
        var_ids.iter().copied().filter(|v| !partition.g2_vars.contains(v)).collect();
    let (g1, g2) = or_dec::witnesses(&mut m, &spec, &a_vac, &b_vac);

    // 5. Verify: g1 + g2 must be a member of the specification interval.
    let composed = m.or(g1, g2);
    assert!(spec.contains(&mut m, composed), "decomposition verifies");
    println!("verified: f = g1 + g2 ✓");
}
