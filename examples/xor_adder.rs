//! XOR bi-decomposition of adder sum bits — the §3.4.2 workload.
//!
//! Shows the asymmetry the paper profiles: the implicit symbolic
//! computation finds the optimal `(2, 2i+1)` partition of every sum bit in
//! milliseconds, while the explicit greedy baseline re-checks partitions
//! one at a time and collapses on wide bits.
//!
//! ```text
//! cargo run --release --example xor_adder
//! ```

use std::time::{Duration, Instant};
use symbi::bdd::Manager;
use symbi::circuits::adder;
use symbi::core::{greedy, xor_dec, DecKind, Interval};
use symbi::netlist::cone::ConeExtractor;

fn main() {
    let netlist = adder::ripple_carry(9);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);

    println!("{:>6} {:>8} {:>12} {:>14} {:>14}", "bit", "inputs", "best part.", "implicit", "greedy");
    for bit in [2usize, 4, 6, 8] {
        let sig = netlist.signal(&format!("s{bit}")).expect("sum bit");
        let f = ext.bdd(&mut m, sig);
        let support = m.support(f);
        let spec = Interval::exact(f);

        let start = Instant::now();
        let mut choices = xor_dec::Choices::compute(&mut m, &spec, &support);
        let best = choices.best_balanced().expect("sum bits XOR-decompose");
        let implicit = start.elapsed();

        let start = Instant::now();
        let result = greedy::grow_styled(
            &mut m,
            DecKind::Xor,
            &spec,
            &support,
            Duration::from_secs(10),
            greedy::CheckStyle::ExplicitCofactor,
        );
        let greedy_text = match result {
            greedy::GreedyResult::Found(o) => {
                format!("{:?} in {:.1?}", o.sizes(support.len()), start.elapsed())
            }
            greedy::GreedyResult::Infeasible => "infeasible".to_string(),
            greedy::GreedyResult::TimedOut { checks } => {
                format!("timeout ({checks} checks)")
            }
        };
        println!(
            "{:>6} {:>8} {:>12} {:>14} {:>14}",
            format!("s{bit}"),
            support.len(),
            format!("({}, {})", best.0, best.1),
            format!("{implicit:.1?}"),
            greedy_text
        );

        // Extract and verify the implicit result.
        let partition = choices.pick_balanced_partition().expect("feasible");
        let a_vac: Vec<_> =
            support.iter().copied().filter(|v| !partition.g1_vars.contains(v)).collect();
        let b_vac: Vec<_> =
            support.iter().copied().filter(|v| !partition.g2_vars.contains(v)).collect();
        let (g1, g2) =
            xor_dec::witnesses(&mut m, &spec, &support, &a_vac, &b_vac).expect("constructs");
        let composed = m.xor(g1, g2);
        assert_eq!(composed, f, "s{bit}: g1 ⊕ g2 must equal the sum bit");
    }
    println!("all decompositions verified: s_i = (a_i ⊕ b_i) ⊕ carry_i ✓");
}
