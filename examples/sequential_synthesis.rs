//! Sequential synthesis end to end: parse a `.bench` circuit, run the
//! paper's Algorithm 1 with unreachable-state don't cares, and compare
//! mapped area/delay before and after — the Table 3.2 flow on a circuit
//! you can read in full.
//!
//! ```text
//! cargo run --example sequential_synthesis
//! ```

use symbi::netlist::sim::random_co_simulation;
use symbi::netlist::{bench, clean, stats};
use symbi::synth::flow::{optimize, SynthesisOptions};
use symbi::synth::genlib::Library;
use symbi::synth::map::{map, MapMode};

/// A one-hot 4-phase sequencer with two status outputs. The `busy` output
/// is written the long way — "exactly one of phase0/phase1 is hot" — which
/// is equivalent to `phase0 + phase1` on every *reachable* state; only
/// sequential don't cares can see that.
const DESIGN: &str = "
# name: sequencer
INPUT(advance)
OUTPUT(busy)
OUTPUT(done)
# init: p0 = 1
p0 = DFF(n0)
p1 = DFF(n1)
p2 = DFF(n2)
p3 = DFF(n3)
nadv = NOT(advance)
s0 = AND(advance, p3)
h0 = AND(nadv, p0)
n0 = OR(s0, h0)
s1 = AND(advance, p0)
h1 = AND(nadv, p1)
n1 = OR(s1, h1)
s2 = AND(advance, p1)
h2 = AND(nadv, p2)
n2 = OR(s2, h2)
s3 = AND(advance, p2)
h3 = AND(nadv, p3)
n3 = OR(s3, h3)
x01 = XOR(p0, p1)
both = AND(p0, p1)
nboth = NOT(both)
busy = AND(x01, nboth)
done = AND(p3, advance)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = bench::parse(DESIGN)?;
    println!("parsed `{}`: {}", netlist.name(), stats::stats(&netlist));

    // Baseline: structural cleanup + technology mapping.
    let library = Library::mcnc_like();
    let (pre, report) = clean::clean(&netlist);
    println!("cleanup: {report:?}");
    let before = map(&pre, &library, MapMode::Area);
    println!("pre-processed: area {:.1}, delay {:.1}", before.area, before.delay);

    // Algorithm 1: reachability + symbolic bi-decomposition.
    let (optimized, synth) = optimize(&netlist, &SynthesisOptions::default());
    println!(
        "Algorithm 1: {} candidates, {} decomposed, log2(states) = {:.1}",
        synth.candidates, synth.decomposed, synth.log2_states
    );
    let after = map(&optimized, &library, MapMode::Area);
    println!("optimized:     area {:.1}, delay {:.1}", after.area, after.delay);
    println!(
        "ratios: area {:.3}, delay {:.3}",
        after.area / before.area,
        after.delay / before.delay
    );

    // The optimization must preserve behaviour from the initial state.
    assert!(random_co_simulation(&netlist, &optimized, 64, 2026));
    println!("co-simulation over 64 cycles: equal ✓");
    println!("\noptimized netlist:\n{}", bench::write(&optimized));
    Ok(())
}
