//! Unreachable states as don't cares — Figure 3.1 and §3.5.1 end to end.
//!
//! Builds a one-hot ring, runs partitioned forward reachability, extracts
//! the care set over one signal's present-state support, and shows how the
//! widened interval decomposes into strictly smaller halves.
//!
//! ```text
//! cargo run --example reachability_dontcares
//! ```

use std::collections::HashMap;
use symbi::bdd::Manager;
use symbi::core::{or_dec, recursive, Interval};
use symbi::netlist::cone::ConeExtractor;
use symbi::netlist::{GateKind, Netlist};
use symbi::reach::{Reachability, ReachabilityOptions};

fn main() {
    // A 3-latch one-hot ring plus logic computing maj(q0, q1, q2) — which
    // on the ring's reachable states can never see two latches hot.
    let mut n = Netlist::new("ring3");
    let en = n.add_input("en");
    let q: Vec<_> = (0..3).map(|i| n.add_latch(format!("q{i}"), i == 0)).collect();
    let nen = n.add_gate("nen", GateKind::Not, vec![en]);
    for i in 0..3 {
        let sh = n.add_gate(format!("sh{i}"), GateKind::And, vec![en, q[(i + 2) % 3]]);
        let ho = n.add_gate(format!("ho{i}"), GateKind::And, vec![nen, q[i]]);
        let nx = n.add_gate(format!("nx{i}"), GateKind::Or, vec![sh, ho]);
        n.set_latch_next(q[i], nx);
    }
    let ab = n.add_gate("ab", GateKind::And, vec![q[0], q[1]]);
    let ac = n.add_gate("ac", GateKind::And, vec![q[0], q[2]]);
    let bc = n.add_gate("bc", GateKind::And, vec![q[1], q[2]]);
    let t = n.add_gate("t", GateKind::Or, vec![ab, ac]);
    let maj = n.add_gate("maj", GateKind::Or, vec![t, bc]);
    n.add_output("maj", maj);

    // Forward reachability on the latch partition.
    let mut reach = Reachability::analyze(&n, ReachabilityOptions::default());
    println!("reachable states: 2^{:.1} of 2^3", reach.log2_states());

    // Collapse the output cone and retrieve its unreachable-state DCs.
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
    let f = ext.bdd(&mut m, maj);
    let var_of: HashMap<_, _> =
        q.iter().map(|&l| (l, ext.var_of(l).expect("latch mapped"))).collect();
    let care = reach.care_set(&q, &mut m, &var_of);
    let unreachable = m.not(care);
    println!(
        "care set covers {} of 8 latch states",
        m.sat_count_over(care, &q.iter().map(|&l| var_of[&l]).collect::<Vec<_>>())
    );

    // Exact vs widened decomposition.
    let support = m.support(f);
    let exact = Interval::exact(f);
    let widened = Interval::with_dontcare(&mut m, f, unreachable);
    let exact_best = or_dec::Choices::compute(&mut m, &exact, &support).best_balanced();
    let widened_best = or_dec::Choices::compute(&mut m, &widened, &support).best_balanced();
    println!("maj(q0,q1,q2) exact best OR partition:   {exact_best:?}");
    println!("maj(q0,q1,q2) widened best OR partition: {widened_best:?}");

    // On the ring, maj is just constant false (never two latches hot)!
    let (tree, _) = recursive::decompose(&mut m, &widened, &recursive::Options::default());
    println!("widened decomposition: {tree}");
    let g = tree.to_bdd(&mut m);
    assert!(widened.contains(&mut m, g));
    println!("verified member of [f·care, f + unreachable] ✓");
}
