//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++,
//! seeded through splitmix64 exactly like rand's `seed_from_u64`, which
//! is more than adequate for deterministic test-circuit generation.
//! It is NOT a cryptographic generator and makes no distribution
//! guarantees beyond "uniform enough for benchmarks and fuzzing".

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A value that can be drawn uniformly from a range by `Rng::gen_range`.
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let span = (high_excl as u128).wrapping_sub(low as u128);
                // Multiply-shift reduction avoids modulo bias well below
                // the 2^64 word size for every span this workspace uses.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range form accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type `Rng::gen` can produce.
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Xoshiro256 { s }
    }
}

pub mod rngs {
    pub use super::Xoshiro256 as StdRng;
    pub use super::Xoshiro256 as SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
