//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest 1.x API its tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `any::<T>()` for integers
//! and `bool`, integer range strategies, tuple strategies, `prop_map`,
//! `prop_oneof!`, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Semantics are simplified relative to real proptest: cases are drawn
//! from a generator seeded deterministically from the test name (so
//! failures reproduce across runs), and there is no shrinking — a
//! failing case reports the case number and the assertion message.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic per-test random source (xoshiro256++ via splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, then splitmix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A failed test case. Returned (via `Err`) by the `prop_assert!` family.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of values for one test parameter.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = rng.next_u64() as u128;
                self.start.wrapping_add(((r * span) >> 64) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed strategies of one value type — the
/// engine behind [`prop_oneof!`]. (Real proptest weights its options;
/// the tests vendored here only use the uniform form.)
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Picks one of the given strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$(::std::boxed::Box::new($strategy) as _),+])
    };
}

/// `proptest::collection` — `Vec` strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec` — `len.start..len.end` elements of
    /// `element` per case.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Like `assert!`, but returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, but returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in any::<u64>(), k in 0u32..6) {
///         prop_assert!(x | u64::from(k) >= x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                #[allow(unreachable_code)]
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

pub mod strategy {
    pub use super::{Just, Map, Strategy};
}

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError, TestCaseResult, TestRng};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, OneOf,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1usize..=4, z in 10u64..) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(z >= 10);
        }

        #[test]
        fn tuples_and_map(pair in (any::<u8>(), 0u32..4).prop_map(|(a, b)| (a, b * 2))) {
            prop_assert_eq!(pair.1 % 2, 0);
            prop_assert!(u32::from(pair.0) <= 255);
        }

        #[test]
        fn oneof_and_vec(
            xs in crate::collection::vec(
                prop_oneof![(0u32..4).prop_map(|v| v), (10u32..12).prop_map(|v| v)],
                1..6,
            ),
        ) {
            let xs: Vec<u32> = xs;
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4 || (10..12).contains(&x)));
        }

        #[test]
        fn early_return_ok(x in any::<u64>()) {
            if x.is_multiple_of(2) {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("name");
        let mut b = TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use super::TestRng;
}
