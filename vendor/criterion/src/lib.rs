//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short
//! warm-up, then `sample_size` timed batches, and prints the median
//! per-iteration time. There is no statistical analysis, HTML report,
//! or baseline comparison — just enough to keep `cargo bench` useful
//! for relative comparisons.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: determine a batch size so one sample takes ~1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn print_result(name: &str, bencher: &mut Bencher) {
    match bencher.median() {
        Some(t) => println!("{name:<50} {t:>12.2?}/iter"),
        None => println!("{name:<50} (no samples)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        print_result(&format!("{}/{}", self.name, id), &mut bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        print_result(&format!("{}/{}", self.name, id), &mut bencher);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: 10 };
        f(&mut bencher);
        print_result(&id.to_string(), &mut bencher);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
