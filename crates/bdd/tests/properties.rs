//! Property-based tests: BDD algebraic laws checked against randomly
//! generated functions (via random truth tables, so the sample space is
//! uniform over functions rather than over expression syntax).

use proptest::prelude::*;
use symbi_bdd::{combin, Manager, NodeId, ResourceGovernor, VarId};

/// Builds the function of a truth table over `n` vars (row `r` = bit `r`).
fn from_tt(m: &mut Manager, n: usize, tt: u64) -> NodeId {
    let mut f = NodeId::FALSE;
    for row in 0..1u64 << n {
        if tt >> row & 1 == 1 {
            let assignment: Vec<(VarId, bool)> =
                (0..n).map(|i| (VarId(i as u32), row >> i & 1 == 1)).collect();
            let mt = m.minterm(&assignment);
            f = m.or(f, mt);
        }
    }
    f
}

fn eval_tt(n: usize, tt: u64, row: u64) -> bool {
    let _ = n;
    tt >> row & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn construction_matches_truth_table(tt in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt);
        for row in 0..1u64 << n {
            let assignment: Vec<bool> = (0..n).map(|i| row >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &assignment), eval_tt(n, tt, row));
        }
    }

    #[test]
    fn boolean_algebra_laws(tt1 in any::<u64>(), tt2 in any::<u64>(), tt3 in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        let h = from_tt(&mut m, n, tt3);
        // Distributivity.
        let gh = m.or(g, h);
        let lhs = m.and(f, gh);
        let fg = m.and(f, g);
        let fh = m.and(f, h);
        let rhs = m.or(fg, fh);
        prop_assert_eq!(lhs, rhs);
        // De Morgan.
        let fa = m.and(f, g);
        let nfa = m.not(fa);
        let nf = m.not(f);
        let ng = m.not(g);
        let dm = m.or(nf, ng);
        prop_assert_eq!(nfa, dm);
        // XOR self-inverse and associativity.
        let x1 = m.xor(f, g);
        let x2 = m.xor(x1, g);
        prop_assert_eq!(x2, f);
        let a = m.xor(f, g);
        let ab = m.xor(a, h);
        let bc = m.xor(g, h);
        let abc = m.xor(f, bc);
        prop_assert_eq!(ab, abc);
    }

    #[test]
    fn ite_consistency(tt1 in any::<u64>(), tt2 in any::<u64>(), tt3 in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        let h = from_tt(&mut m, n, tt3);
        let ite = m.ite(f, g, h);
        let fg = m.and(f, g);
        let nf = m.not(f);
        let nfh = m.and(nf, h);
        let expect = m.or(fg, nfh);
        prop_assert_eq!(ite, expect);
    }

    #[test]
    fn quantification_laws(tt in any::<u64>(), var in 0u32..6) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt);
        let v = VarId(var);
        let ex = m.exists_var(f, v);
        let fa = m.forall_var(f, v);
        // ∀x f ≤ f ≤ ∃x f.
        prop_assert!(m.leq(fa, f));
        prop_assert!(m.leq(f, ex));
        // Both results are vacuous in v.
        prop_assert!(!m.support(ex).contains(&v));
        prop_assert!(!m.support(fa).contains(&v));
        // Idempotence.
        prop_assert_eq!(m.exists_var(ex, v), ex);
        prop_assert_eq!(m.forall_var(fa, v), fa);
    }

    #[test]
    fn sat_count_agrees_with_truth_table(tt in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt);
        prop_assert_eq!(m.sat_count(f, n), u128::from(tt.count_ones()));
        let frac = m.sat_fraction(f);
        prop_assert!((frac * 64.0 - tt.count_ones() as f64).abs() < 1e-9);
    }

    #[test]
    fn compose_is_substitution(tt1 in any::<u64>(), tt2 in any::<u64>(), var in 0u32..6) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        let composed = m.compose(f, VarId(var), g);
        for row in 0..1u64 << n {
            let mut assignment: Vec<bool> = (0..n).map(|i| row >> i & 1 == 1).collect();
            let gv = m.eval(g, &assignment);
            assignment[var as usize] = gv;
            let direct = m.eval(f, &assignment);
            let mut orig: Vec<bool> = (0..n).map(|i| row >> i & 1 == 1).collect();
            orig[var as usize] = row >> var & 1 == 1;
            let via = m.eval(composed, &orig);
            prop_assert_eq!(via, direct);
        }
    }

    #[test]
    fn transfer_preserves_semantics(tt in any::<u64>()) {
        let n = 6;
        let mut src = Manager::with_vars(n);
        let f = from_tt(&mut src, n, tt);
        // Map variable i to 2i in a wider destination.
        let mut dst = Manager::with_vars(2 * n);
        let map: symbi_bdd::hash::FxHashMap<VarId, VarId> =
            (0..n as u32).map(|i| (VarId(i), VarId(2 * i))).collect();
        let g = dst.transfer_from(&src, f, &map);
        for row in 0..1u64 << n {
            let src_assign: Vec<bool> = (0..n).map(|i| row >> i & 1 == 1).collect();
            let mut dst_assign = vec![false; 2 * n];
            for i in 0..n {
                dst_assign[2 * i] = src_assign[i];
            }
            prop_assert_eq!(dst.eval(g, &dst_assign), src.eval(f, &src_assign));
        }
    }

    #[test]
    fn one_sat_is_satisfying(tt in 1u64..) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt);
        if f.is_false() {
            return Ok(());
        }
        let cube = m.one_sat(f).expect("satisfiable");
        let mut assignment = vec![false; n];
        for (v, phase) in cube {
            assignment[v.index()] = phase;
        }
        prop_assert!(m.eval(f, &assignment));
    }

    #[test]
    fn weight_functions_partition_the_space(seed in any::<u16>()) {
        let n = 5 + (seed % 3) as usize;
        let mut m = Manager::with_vars(n);
        let vars: Vec<VarId> = (0..n as u32).map(VarId).collect();
        // The w_k are pairwise disjoint and together cover everything.
        let mut union = NodeId::FALSE;
        let mut total = 0u128;
        for k in 0..=n {
            let w = combin::weight_exactly(&mut m, &vars, k);
            let overlap = m.and(union, w);
            prop_assert!(overlap.is_false());
            union = m.or(union, w);
            total += m.sat_count(w, n);
        }
        prop_assert!(union.is_true());
        prop_assert_eq!(total, 1u128 << n);
    }
}

// Budgeted twins: each `try_*` operation either returns exactly the
// node its unbudgeted counterpart would (canonicity makes the ids
// directly comparable) or fails with `ResourceExhausted` — it never
// returns a wrong node and never panics, no matter how starved.
//
// The budgeted attempts run first, with the cache cleared before each
// one, so the reference computations cannot warm the cache and mask a
// starvation path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn starved_twins_match_or_fail_cleanly(
        tt1 in any::<u64>(),
        tt2 in any::<u64>(),
        budget in 0u64..600,
    ) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        let h = from_tt(&mut m, n, tt1.rotate_left(17) ^ tt2);
        let qvars = [VarId(0), VarId(2), VarId(5)];
        let cube = m.cube(&qvars);
        let gov = || ResourceGovernor::unlimited().with_step_limit(budget);

        m.clear_cache();
        let t_and = m.try_and(f, g, &gov());
        m.clear_cache();
        let t_or = m.try_or(f, g, &gov());
        m.clear_cache();
        let t_xor = m.try_xor(f, g, &gov());
        m.clear_cache();
        let t_not = m.try_not(f, &gov());
        m.clear_cache();
        let t_ite = m.try_ite(f, g, h, &gov());
        m.clear_cache();
        let t_exists = m.try_exists(f, &qvars, &gov());
        m.clear_cache();
        let t_forall = m.try_forall(f, &qvars, &gov());
        m.clear_cache();
        let t_and_exists = m.try_and_exists(f, g, cube, &gov());
        m.clear_cache();
        let t_compose = m.try_compose(f, VarId(1), g, &gov());
        m.clear_cache();
        let t_restrict = m.try_restrict(f, g, &gov());
        m.clear_cache();
        let t_constrain = m.try_constrain(f, g, &gov());
        m.clear_cache();

        let expected = [
            (t_and, m.and(f, g)),
            (t_or, m.or(f, g)),
            (t_xor, m.xor(f, g)),
            (t_not, m.not(f)),
            (t_ite, m.ite(f, g, h)),
            (t_exists, m.exists(f, &qvars)),
            (t_forall, m.forall(f, &qvars)),
            (t_and_exists, m.and_exists(f, g, cube)),
            (t_compose, m.compose(f, VarId(1), g)),
            (t_restrict, m.restrict(f, g)),
            (t_constrain, m.constrain(f, g)),
        ];
        for (attempt, reference) in expected {
            // A clean refusal is always acceptable; a wrong node never is.
            if let Ok(node) = attempt {
                prop_assert_eq!(node, reference);
            }
        }
    }

    #[test]
    fn unlimited_twins_always_match(tt1 in any::<u64>(), tt2 in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        let qvars = [VarId(1), VarId(3)];
        let gov = ResourceGovernor::unlimited();
        let t_and = m.try_and(f, g, &gov).unwrap();
        let t_xor = m.try_xor(f, g, &gov).unwrap();
        let t_exists = m.try_exists(f, &qvars, &gov).unwrap();
        let t_restrict = m.try_restrict(f, g, &gov).unwrap();
        let t_constrain = m.try_constrain(f, g, &gov).unwrap();
        prop_assert_eq!(t_and, m.and(f, g));
        prop_assert_eq!(t_xor, m.xor(f, g));
        prop_assert_eq!(t_exists, m.exists(f, &qvars));
        prop_assert_eq!(t_restrict, m.restrict(f, g));
        prop_assert_eq!(t_constrain, m.constrain(f, g));
    }

    #[test]
    fn constrain_and_restrict_agree_with_f_on_the_care_set(
        tt1 in any::<u64>(),
        tt2 in any::<u64>(),
    ) {
        // The generalized-cofactor contract `constrain(f, c) · c ≡ f · c`
        // (same for restrict) — exactly the property that makes both
        // safe as cluster/frontier simplifiers in the image engine.
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let c = from_tt(&mut m, n, tt2);
        let fc = m.and(f, c);
        let con = m.constrain(f, c);
        let con_c = m.and(con, c);
        prop_assert_eq!(con_c, fc, "constrain broke the care contract");
        let res = m.restrict(f, c);
        let res_c = m.and(res, c);
        prop_assert_eq!(res_c, fc, "restrict broke the care contract");
        // Restrict never gains support; constrain may, but only from c.
        let supp_f = m.support(f);
        let supp_res = m.support(res);
        prop_assert!(supp_res.iter().all(|v| supp_f.contains(v)));
    }

    #[test]
    fn gc_preserves_rooted_semantics(
        tt1 in any::<u64>(),
        tt2 in any::<u64>(),
        tt3 in any::<u64>(),
        tt4 in any::<u64>(),
        keep_mask in any::<u8>(),
        force_twice in any::<bool>(),
    ) {
        // Eight functions from four seeds: each seed and its negation.
        let tts = [tt1, !tt1, tt2, !tt2, tt3, !tt3, tt4, !tt4];
        // A collection with a random subset of the built functions as
        // roots must leave every kept root semantically intact, must
        // never increase the live count, and a second collection with
        // the same roots must find nothing more to free.
        let n = 6;
        let mut m = Manager::with_vars(n);
        let built: Vec<NodeId> = tts.iter().map(|&tt| from_tt(&mut m, n, tt)).collect();
        // Extra garbage on top: pairwise products that nobody roots.
        for w in built.windows(2) {
            m.and(w[0], w[1]);
        }
        let kept: Vec<(usize, NodeId)> = built
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| keep_mask >> i & 1 == 1)
            .collect();
        let roots: Vec<NodeId> = kept.iter().map(|&(_, f)| f).collect();
        let live_before = m.stats().nodes;
        m.gc_with_roots(&roots);
        let live_after = m.stats().nodes;
        prop_assert!(live_after <= live_before, "sweep grew the live count");
        for &(i, f) in &kept {
            for row in 0..1u64 << n {
                let assignment: Vec<bool> = (0..n).map(|b| row >> b & 1 == 1).collect();
                prop_assert_eq!(m.eval(f, &assignment), eval_tt(n, tts[i], row));
            }
        }
        if force_twice {
            let freed = m.gc_with_roots(&roots);
            prop_assert_eq!(freed, 0, "second sweep with identical roots freed nodes");
            prop_assert_eq!(m.stats().nodes, live_after);
        }
        // Hash consing must still be canonical over the survivors:
        // rebuilding a kept function lands on the very same node.
        for &(i, f) in &kept {
            let rebuilt = from_tt(&mut m, n, tts[i]);
            prop_assert_eq!(rebuilt, f);
        }
    }

    #[test]
    fn gc_with_no_roots_keeps_only_infrastructure(tt1 in any::<u64>(), tt2 in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        m.xor(f, g);
        m.gc_with_roots(&[]);
        // Terminals plus the n single-variable nodes (implicit roots)
        // are all that survive an empty root set.
        prop_assert_eq!(m.stats().nodes, 2 + n);
    }

    #[test]
    fn sift_in_place_preserves_semantics(
        tt1 in any::<u64>(),
        tt2 in any::<u64>(),
        tt3 in any::<u64>(),
        tt4 in any::<u64>(),
    ) {
        let tts = [tt1, tt2, tt3, tt4];
        let n = 6;
        let mut m = Manager::with_vars(n);
        let built: Vec<NodeId> = tts.iter().map(|&tt| from_tt(&mut m, n, tt)).collect();
        // Sifting collects first; measure live size against that floor.
        m.gc_with_roots(&built);
        let live_before = m.stats().nodes;
        m.sift_in_place(&built);
        prop_assert!(
            m.stats().nodes <= live_before,
            "sifting may only shrink the live diagram ({} -> {})",
            live_before,
            m.stats().nodes
        );
        prop_assert_eq!(m.stats().reorder_runs, 1);
        // eval follows var ids, not levels, so agreement with the truth
        // table checks the reordered diagram end to end.
        for (i, &f) in built.iter().enumerate() {
            for row in 0..1u64 << n {
                let assignment: Vec<bool> = (0..n).map(|b| row >> b & 1 == 1).collect();
                prop_assert_eq!(m.eval(f, &assignment), eval_tt(n, tts[i], row));
            }
        }
        // The manager still works after reordering: fresh ops agree.
        let fg = m.and(built[0], built[1]);
        for row in 0..1u64 << n {
            let assignment: Vec<bool> = (0..n).map(|b| row >> b & 1 == 1).collect();
            let expect = eval_tt(n, tts[0], row) && eval_tt(n, tts[1], row);
            prop_assert_eq!(m.eval(fg, &assignment), expect);
        }
    }

    #[test]
    fn manager_survives_exhaustion(tt1 in any::<u64>(), tt2 in any::<u64>()) {
        // A zero-step governor refuses all non-trivial work, but the
        // manager stays fully usable afterwards: an unbudgeted retry
        // gives the correct answer.
        let n = 6;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, tt1);
        let g = from_tt(&mut m, n, tt2);
        m.clear_cache();
        let starved = ResourceGovernor::unlimited().with_step_limit(0);
        let attempt = m.try_and(f, g, &starved);
        if let Ok(node) = attempt {
            // Only terminal shortcuts can succeed with zero steps.
            prop_assert!(
                f.is_terminal() || g.is_terminal() || f == g,
                "zero budget finished non-trivial work: {node:?}"
            );
        }
        let reference = m.and(f, g);
        let retry = m.try_and(f, g, &ResourceGovernor::unlimited()).unwrap();
        prop_assert_eq!(retry, reference);
    }
}
