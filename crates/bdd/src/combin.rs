//! Symbolic combinatorics for decomposition-choice subsetting (§3.5.2 of
//! the paper): weight functions `w_k(c)`, binary integer encodings
//! `κ_k(e)`, the weight relation `K(c, e)`, and integer comparison
//! relations `gte`/`equ` used by the dominance purge.
//!
//! All constructors are free functions taking the [`Manager`] so the caller
//! controls variable layout.

use crate::{Manager, NodeId, VarId};

/// BDD of assignments to `vars` with **exactly** `k` variables set to 1 —
/// the `w_k(c)` of the paper, representing the combinatorial set `C(n, k)`.
///
/// Built with the standard threshold dynamic program: `O(n·k)` nodes.
pub fn weight_exactly(m: &mut Manager, vars: &[VarId], k: usize) -> NodeId {
    if k > vars.len() {
        return NodeId::FALSE;
    }
    let mut vars: Vec<VarId> = vars.to_vec();
    vars.sort_by_key(|&v| m.level_of(v));
    // row[j] = characteristic of "exactly j ones among the remaining vars",
    // built from the last variable upward.
    let mut row: Vec<NodeId> = (0..=k).map(|j| if j == 0 { NodeId::TRUE } else { NodeId::FALSE }).collect();
    for (i, &v) in vars.iter().enumerate().rev() {
        let remaining = vars.len() - i;
        let mut next = row.clone();
        for j in 0..=k {
            // Setting v consumes one from the budget; clearing it does not.
            let hi = if j > 0 { row[j - 1] } else { NodeId::FALSE };
            let lo = row[j];
            next[j] = m.mk(v.0, lo, hi);
            // Prune impossible rows (more ones required than vars left).
            if j > remaining {
                next[j] = NodeId::FALSE;
            }
        }
        row = next;
    }
    row[k]
}

/// BDD of assignments to `vars` with **at most** `k` ones.
pub fn weight_at_most(m: &mut Manager, vars: &[VarId], k: usize) -> NodeId {
    let terms: Vec<NodeId> = (0..=k.min(vars.len()))
        .map(|j| weight_exactly(m, vars, j))
        .collect();
    m.or_many(terms)
}

/// BDD of assignments to `vars` with **at least** `k` ones.
pub fn weight_at_least(m: &mut Manager, vars: &[VarId], k: usize) -> NodeId {
    if k == 0 {
        return NodeId::TRUE;
    }
    let at_most = weight_at_most(m, vars, k - 1);
    m.not(at_most)
}

/// Minterm over the little-endian variable vector `evars` encoding the
/// integer `k` — the `κ_k(e)` of the paper.
///
/// # Panics
///
/// Panics if `k` does not fit in `evars.len()` bits.
pub fn encode_int(m: &mut Manager, evars: &[VarId], k: usize) -> NodeId {
    assert!(
        evars.len() >= usize::BITS as usize - k.leading_zeros() as usize,
        "{k} does not fit in {} bits",
        evars.len()
    );
    let assignment: Vec<(VarId, bool)> =
        evars.iter().enumerate().map(|(i, &v)| (v, k >> i & 1 == 1)).collect();
    m.minterm(&assignment)
}

/// The weight relation `K(c, e) = Σ_k w_k(c)·κ_k(e)` tying an assignment of
/// the decision variables `cvars` to the binary encoding of its weight over
/// `evars` (little-endian).
///
/// # Panics
///
/// Panics if `evars` cannot represent `cvars.len()`.
pub fn weight_relation(m: &mut Manager, cvars: &[VarId], evars: &[VarId]) -> NodeId {
    let mut terms = Vec::with_capacity(cvars.len() + 1);
    for k in 0..=cvars.len() {
        let w = weight_exactly(m, cvars, k);
        let kappa = encode_int(m, evars, k);
        terms.push(m.and(w, kappa));
    }
    m.or_many(terms)
}

/// "Greater-than-or-equal" relation between two equal-width little-endian
/// integer vectors: true iff `int(avars) ≥ int(bvars)`.
///
/// # Panics
///
/// Panics if the vectors differ in width.
pub fn gte(m: &mut Manager, avars: &[VarId], bvars: &[VarId]) -> NodeId {
    assert_eq!(avars.len(), bvars.len(), "comparator widths must match");
    // From LSB to MSB: geq = (a > b) + (a == b)·geq_lower.
    let mut geq = NodeId::TRUE;
    for (&a, &b) in avars.iter().zip(bvars) {
        let av = m.var(a);
        let bv = m.var(b);
        let nb = m.not(bv);
        let gt = m.and(av, nb);
        let eq = m.xnor(av, bv);
        let eq_and_lower = m.and(eq, geq);
        geq = m.or(gt, eq_and_lower);
    }
    geq
}

/// Equality relation between two equal-width integer vectors.
///
/// # Panics
///
/// Panics if the vectors differ in width.
pub fn equ(m: &mut Manager, avars: &[VarId], bvars: &[VarId]) -> NodeId {
    assert_eq!(avars.len(), bvars.len(), "comparator widths must match");
    let bits: Vec<NodeId> = avars
        .iter()
        .zip(bvars)
        .map(|(&a, &b)| {
            let av = m.var(a);
            let bv = m.var(b);
            m.xnor(av, bv)
        })
        .collect();
    m.and_many(bits)
}

/// Decodes the little-endian integer selected by a (full) assignment to
/// `evars` within a satisfying cube; unconstrained bits read as 0.
pub fn decode_int(cube: &[(VarId, bool)], evars: &[VarId]) -> usize {
    let mut out = 0usize;
    for (i, &e) in evars.iter().enumerate() {
        if cube.iter().any(|&(v, phase)| v == e && phase) {
            out |= 1 << i;
        }
    }
    out
}

/// Number of `e`-variables needed to encode values up to `n` inclusive.
pub fn bits_for(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: u128, k: u128) -> u128 {
        if k > n {
            return 0;
        }
        let mut r: u128 = 1;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn weight_counts_match_binomials() {
        let mut m = Manager::new();
        let vars: Vec<VarId> = (0..8).map(VarId).collect();
        m.new_vars(8);
        for k in 0..=8usize {
            let w = weight_exactly(&mut m, &vars, k);
            assert_eq!(m.sat_count(w, 8), binomial(8, k as u128), "k={k}");
        }
    }

    #[test]
    fn weight_boundaries() {
        let mut m = Manager::new();
        m.new_vars(3);
        let vars: Vec<VarId> = (0..3).map(VarId).collect();
        assert_eq!(weight_exactly(&mut m, &vars, 4), NodeId::FALSE);
        let w0 = weight_exactly(&mut m, &vars, 0);
        assert_eq!(m.sat_count(w0, 3), 1);
        assert_eq!(weight_at_least(&mut m, &vars, 0), NodeId::TRUE);
        let am3 = weight_at_most(&mut m, &vars, 3);
        assert!(am3.is_true());
    }

    #[test]
    fn at_most_at_least_partition() {
        let mut m = Manager::new();
        m.new_vars(6);
        let vars: Vec<VarId> = (0..6).map(VarId).collect();
        for k in 0..=6usize {
            let le = weight_at_most(&mut m, &vars, k);
            let gt = weight_at_least(&mut m, &vars, k + 1);
            let both = m.and(le, gt);
            let either = m.or(le, gt);
            assert!(both.is_false());
            assert!(either.is_true());
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = Manager::new();
        m.new_vars(4);
        let evars: Vec<VarId> = (0..4).map(VarId).collect();
        for k in 0..16usize {
            let enc = encode_int(&mut m, &evars, k);
            let cube = m.one_sat(enc).expect("minterms are satisfiable");
            assert_eq!(decode_int(&cube, &evars), k);
        }
    }

    #[test]
    fn weight_relation_binds_weight_to_encoding() {
        let mut m = Manager::new();
        m.new_vars(4 + 3);
        let cvars: Vec<VarId> = (0..4).map(VarId).collect();
        let evars: Vec<VarId> = (4..7).map(VarId).collect();
        let rel = weight_relation(&mut m, &cvars, &evars);
        // For each total assignment check e == weight(c).
        for bits in 0u32..(1 << 7) {
            let a: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            let weight = a[..4].iter().filter(|&&b| b).count();
            let enc = (0..3).filter(|&i| a[4 + i]).fold(0usize, |acc, i| acc | 1 << i);
            assert_eq!(m.eval(rel, &a), weight == enc);
        }
    }

    #[test]
    fn comparators() {
        let mut m = Manager::new();
        m.new_vars(6);
        let a: Vec<VarId> = (0..3).map(VarId).collect();
        let b: Vec<VarId> = (3..6).map(VarId).collect();
        let ge = gte(&mut m, &a, &b);
        let eq = equ(&mut m, &a, &b);
        for bits in 0u32..64 {
            let assign: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let av = (0..3).filter(|&i| assign[i]).fold(0, |acc, i| acc | 1 << i);
            let bv = (0..3).filter(|&i| assign[3 + i]).fold(0, |acc, i| acc | 1 << i);
            assert_eq!(m.eval(ge, &assign), av >= bv, "gte {av} {bv}");
            assert_eq!(m.eval(eq, &assign), av == bv, "equ {av} {bv}");
        }
    }

    #[test]
    fn bits_for_widths() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(7), 3);
        assert_eq!(bits_for(8), 4);
        assert_eq!(bits_for(33), 6);
    }
}
