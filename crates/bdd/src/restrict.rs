//! The Coudert–Madre `restrict` operator: don't-care-driven minimization.
//!
//! `restrict(f, c)` returns a function that agrees with `f` everywhere the
//! care set `c` holds, chosen to (heuristically) have a smaller BDD by
//! letting the result float freely outside `c`. This is the classic way
//! to exploit an unreachable-state don't-care set when a single concrete
//! function is needed — e.g. picking a small member of an interval.

use crate::manager::Op;
use crate::{Manager, NodeId};

impl Manager {
    /// Coudert–Madre restriction of `f` to the care set `care`.
    ///
    /// Guarantees `restrict(f, c) · c = f · c`; outside the care set the
    /// result is unspecified (that freedom is what shrinks the BDD).
    /// `restrict(f, 0)` is defined as `f`.
    pub fn restrict(&mut self, f: NodeId, care: NodeId) -> NodeId {
        if care.is_false() {
            return f;
        }
        self.restrict_rec(f, care)
    }

    fn restrict_rec(&mut self, f: NodeId, care: NodeId) -> NodeId {
        if f.is_terminal() || care.is_true() {
            return f;
        }
        debug_assert!(!care.is_false(), "inner care set cannot be empty");
        let key = (Op::Restrict, f.0, care.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let lf = self.level(f);
        let lc = self.level(care);
        let r = if lc < lf {
            // The care set branches on a variable f ignores: merge the
            // branches (f must agree wherever *either* side cares).
            let (c0, c1) = self.branches(care);
            let merged = self.or(c0, c1);
            self.restrict_rec(f, merged)
        } else {
            let (f0, f1) = self.branches(f);
            let fvar = self.node(f).var;
            let (c0, c1) = if lc == lf { self.branches(care) } else { (care, care) };
            if c0.is_false() {
                self.restrict_rec(f1, c1)
            } else if c1.is_false() {
                self.restrict_rec(f0, c0)
            } else {
                let lo = self.restrict_rec(f0, c0);
                let hi = self.restrict_rec(f1, c1);
                self.mk(fvar, lo, hi)
            }
        };
        self.cache.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    #[test]
    fn agrees_on_care_set() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let t = m.xor(vs[0], vs[1]);
        let f = m.and(t, vs[2]);
        let care = m.or(vs[1], vs[3]);
        let r = m.restrict(f, care);
        let lhs = m.and(r, care);
        let rhs = m.and(f, care);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn full_care_is_identity() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let f = m.xor(vs[0], vs[2]);
        assert_eq!(m.restrict(f, NodeId::TRUE), f);
        assert_eq!(m.restrict(f, NodeId::FALSE), f);
    }

    #[test]
    fn cube_care_cofactors() {
        // Restricting to the cube a=1 turns f into its cofactor there.
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.and(vs[0], vs[1]);
        let r = m.restrict(f, vs[0]);
        assert_eq!(r, vs[1], "restrict to a=1 drops the a test");
    }

    #[test]
    fn shrinks_with_sparse_care() {
        // f = majority over 3 vars; care = "not all equal": on the care
        // set maj equals "at least two ones" which restrict can simplify.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.and(vs[0], vs[2]);
        let bc = m.and(vs[1], vs[2]);
        let t = m.or(ab, ac);
        let f = m.or(t, bc);
        // care: a ≠ b (then maj = c... no: maj(a,b,c) with a≠b equals c).
        let care = m.xor(vs[0], vs[1]);
        let r = m.restrict(f, care);
        let lhs = m.and(r, care);
        let rhs = m.and(f, care);
        assert_eq!(lhs, rhs);
        assert!(m.size(r) <= m.size(f));
    }

    #[test]
    fn exhaustive_contract_small() {
        // For all 3-var (f, care≠0) pairs drawn from a structured family,
        // restrict agrees on care.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let mut funcs = vec![NodeId::FALSE, NodeId::TRUE];
        for &v in &vs {
            funcs.push(v);
            let nv = m.not(v);
            funcs.push(nv);
        }
        let x = m.xor(vs[0], vs[1]);
        let a = m.and(vs[1], vs[2]);
        let o = m.or(vs[0], vs[2]);
        funcs.extend([x, a, o]);
        for &f in &funcs {
            for &care in &funcs {
                if care.is_false() {
                    continue;
                }
                let r = m.restrict(f, care);
                let lhs = m.and(r, care);
                let rhs = m.and(f, care);
                assert_eq!(lhs, rhs, "f={f}, care={care}");
            }
        }
        let _ = VarId(0);
    }
}
