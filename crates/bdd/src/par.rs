//! A minimal deterministic parallel-map for worker-local BDD pipelines.
//!
//! The workspace vendors no thread-pool crate, so this module provides
//! the one primitive the parallel reachability and synthesis engines
//! need: run a function over a list of items on `jobs` scoped threads
//! and return the results **in input order**. Work is claimed through a
//! single atomic counter (self-scheduling), which load-balances as well
//! as work stealing for the coarse-grained tasks used here (one
//! reachability partition or one candidate cone per item).
//!
//! Determinism contract: the *value* of `f(i, item)` must not depend on
//! which worker runs it or in which order items complete. [`Manager`]
//! is plain data (`Send`), so each task can own a private manager and
//! hand results back by value or via [`Manager::transfer_from`]; a
//! shared [`ResourceGovernor`](crate::ResourceGovernor) provides the
//! cross-thread budget and cancellation (its counters are atomic).
//! Under that contract `parallel_map(jobs, ..)` returns bit-identical
//! results for every `jobs`, because `jobs <= 1` degenerates to a plain
//! in-order loop on the calling thread.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A sensible worker count for `--jobs 0` style "use all cores" CLIs.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Below this many work items, thread spawn/teardown costs more than the
/// parallelism recovers for the coarse tasks used here (measured: the
/// seq6-class benches ran ~0.8× at `jobs 8` on single-digit item counts).
pub const INLINE_CUTOFF: usize = 16;

/// The worker count actually worth using for `items` work items: `1`
/// (inline on the caller's thread) below [`INLINE_CUTOFF`], else `jobs`.
/// Callers that must report which path ran can compare against `1`.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    if items < INLINE_CUTOFF {
        1
    } else {
        jobs.max(1)
    }
}

/// A panic absorbed at a task boundary by [`parallel_map_isolated`].
///
/// Carries the stringified payload of the original panic so the caller
/// can report it once; the payload itself is consumed at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared driver: every task runs under `catch_unwind`, so one
/// panicking item can neither poison the slot mutexes while they are
/// held nor tear down the other workers mid-task. The slot locks are
/// additionally poison-tolerant (`PoisonError::into_inner`) as defense
/// in depth — ownership transfer through them is correct even if some
/// future panic path poisons one.
type TaskResult<R> = Result<R, Box<dyn Any + Send>>;

fn run_tasks<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<TaskResult<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| catch_unwind(AssertUnwindSafe(|| f(i, item))))
            .collect();
    }
    // Each slot is locked exactly once by the claiming worker; the atomic
    // counter guarantees unique claims, the mutexes only move ownership.
    let tasks: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let results: Vec<Mutex<Option<TaskResult<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("claimed once");
                let r = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled slot")
        })
        .collect()
}

/// Applies `f` to every item on up to `jobs` threads, returning results
/// in input order. `f` receives `(index, item)`. With `jobs <= 1` (or
/// fewer than two items) everything runs inline on the caller's thread.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all workers have
/// drained (each task is isolated by `catch_unwind`, so a panicking
/// item never poisons shared state or aborts sibling tasks). When
/// several items panic, the payload of the lowest input index is
/// re-raised — once — and the others are dropped.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in run_tasks(jobs, items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Like [`parallel_map`], but converts a panicking task into a
/// per-item [`TaskPanic`] instead of re-raising: the pool always drains
/// and every other item's result is returned untouched. Isolation is
/// identical on the inline (`jobs <= 1`) path, so the jobs-invariance
/// contract extends to panics.
pub fn parallel_map_isolated<T, R, F>(
    jobs: usize,
    items: Vec<T>,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_tasks(jobs, items, f)
        .into_iter()
        .map(|r| r.map_err(|payload| TaskPanic { message: payload_message(payload.as_ref()) }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;
    use crate::{Manager, ResourceExhausted, ResourceGovernor, VarId};

    /// The whole parallel design rests on these auto-impls; fail at
    /// compile time if a future change introduces interior mutability.
    #[test]
    fn managers_and_governors_cross_threads() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Manager>();
        assert_sync::<Manager>();
        assert_send::<ResourceGovernor>();
        assert_sync::<ResourceGovernor>();
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(8, items.clone(), |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_: usize, x: u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let seq = parallel_map(1, items.clone(), f);
        let par = parallel_map(7, items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_local_managers_transfer_back() {
        // Each worker builds a function in its own manager; the caller
        // transfers them all into one manager and checks canonicity.
        let built: Vec<(Manager, crate::NodeId)> = parallel_map(4, (2..10).collect(), |_, k| {
            let mut m = Manager::new();
            let vars = m.new_vars(k);
            let f = vars.iter().skip(1).fold(vars[0], |acc, &v| m.xor(acc, v));
            (m, f)
        });
        let mut global = Manager::with_vars(10);
        for (i, (m, f)) in built.iter().enumerate() {
            let k = i + 2;
            let map: FxHashMap<VarId, VarId> =
                (0..k as u32).map(|v| (VarId(v), VarId(v))).collect();
            let t = global.transfer_from(m, *f, &map);
            let vars: Vec<_> = (0..k as u32).map(|v| global.var(VarId(v))).collect();
            let expect = vars.iter().skip(1).fold(vars[0], |acc, &v| global.xor(acc, v));
            assert_eq!(t, expect, "parity of {k} vars survives the transfer");
        }
    }

    #[test]
    fn shared_governor_cancellation_drains_all_workers() {
        let gov = ResourceGovernor::unlimited();
        let handle = gov.cancel_handle();
        let verdicts = parallel_map(4, (0..8).collect::<Vec<usize>>(), |i, _| {
            if i == 0 {
                handle.cancel();
            }
            let worker_gov = gov.fork_steps(u64::MAX);
            loop {
                if let Err(e) = worker_gov.checkpoint(0) {
                    return e;
                }
            }
        });
        assert_eq!(verdicts, vec![ResourceExhausted::Cancelled; 8]);
    }

    /// One panicking worker must not cascade into poisoned-mutex
    /// panics on the other threads: all 31 well-behaved items complete
    /// and the original payload surfaces exactly once.
    #[test]
    fn single_panic_surfaces_original_payload_once() {
        let completed = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, (0..32).collect::<Vec<usize>>(), |_, x| {
                if x == 7 {
                    panic!("original worker failure");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let payload = r.expect_err("panic propagates");
        assert_eq!(payload_message(payload.as_ref()), "original worker failure");
        assert_eq!(completed.load(Ordering::Relaxed), 31, "siblings all drained");
    }

    #[test]
    fn lowest_index_payload_wins_when_several_panic() {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, (0..32).collect::<Vec<usize>>(), |_, x| {
                if x == 5 || x == 20 {
                    panic!("task {x} failed");
                }
                x
            })
        }));
        let payload = r.expect_err("panic propagates");
        assert_eq!(payload_message(payload.as_ref()), "task 5 failed");
    }

    #[test]
    fn isolated_map_degrades_only_the_panicking_item() {
        for jobs in [1, 4] {
            let out = parallel_map_isolated(jobs, (0..20).collect::<Vec<usize>>(), |_, x| {
                if x == 13 {
                    panic!("unlucky");
                }
                x * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    assert_eq!(
                        r.as_ref().unwrap_err(),
                        &TaskPanic { message: "unlucky".to_string() },
                        "jobs={jobs}"
                    );
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn poisoned_slot_still_yields_its_value() {
        // Force-poison a mutex, then confirm the recovery idiom used by
        // the driver extracts the inner value instead of cascading.
        let slot = Mutex::new(Some(41usize));
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = slot.lock().unwrap();
            panic!("poison it");
        }));
        assert!(slot.is_poisoned());
        let v = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
        assert_eq!(v, Some(41));
    }

    #[test]
    fn shared_step_budget_is_globally_enforced() {
        // 4 workers hammer one shared budget of 1000 steps; the total
        // number of *successful* checkpoints must be exactly the limit.
        let gov = ResourceGovernor::unlimited().with_step_limit(1000);
        let oks = parallel_map(4, vec![(); 4], |_, ()| {
            let mut ok = 0u64;
            while gov.checkpoint(0).is_ok() {
                ok += 1;
            }
            ok
        });
        assert_eq!(oks.iter().sum::<u64>(), 1000);
    }
}
