//! A minimal deterministic parallel-map for worker-local BDD pipelines.
//!
//! The workspace vendors no thread-pool crate, so this module provides
//! the one primitive the parallel reachability and synthesis engines
//! need: run a function over a list of items on `jobs` scoped threads
//! and return the results **in input order**. Work is claimed through a
//! single atomic counter (self-scheduling), which load-balances as well
//! as work stealing for the coarse-grained tasks used here (one
//! reachability partition or one candidate cone per item).
//!
//! Determinism contract: the *value* of `f(i, item)` must not depend on
//! which worker runs it or in which order items complete. [`Manager`]
//! is plain data (`Send`), so each task can own a private manager and
//! hand results back by value or via [`Manager::transfer_from`]; a
//! shared [`ResourceGovernor`](crate::ResourceGovernor) provides the
//! cross-thread budget and cancellation (its counters are atomic).
//! Under that contract `parallel_map(jobs, ..)` returns bit-identical
//! results for every `jobs`, because `jobs <= 1` degenerates to a plain
//! in-order loop on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker count for `--jobs 0` style "use all cores" CLIs.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Below this many work items, thread spawn/teardown costs more than the
/// parallelism recovers for the coarse tasks used here (measured: the
/// seq6-class benches ran ~0.8× at `jobs 8` on single-digit item counts).
pub const INLINE_CUTOFF: usize = 16;

/// The worker count actually worth using for `items` work items: `1`
/// (inline on the caller's thread) below [`INLINE_CUTOFF`], else `jobs`.
/// Callers that must report which path ran can compare against `1`.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    if items < INLINE_CUTOFF {
        1
    } else {
        jobs.max(1)
    }
}

/// Applies `f` to every item on up to `jobs` threads, returning results
/// in input order. `f` receives `(index, item)`. With `jobs <= 1` (or
/// fewer than two items) everything runs inline on the caller's thread.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all workers have
/// stopped (the panicking thread poisons no shared state; remaining
/// items may or may not have been processed).
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    // Each slot is locked exactly once by the claiming worker; the atomic
    // counter guarantees unique claims, the mutexes only move ownership.
    let tasks: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i].lock().expect("task slot").take().expect("claimed once");
                let r = f(i, item);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot").expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;
    use crate::{Manager, ResourceExhausted, ResourceGovernor, VarId};

    /// The whole parallel design rests on these auto-impls; fail at
    /// compile time if a future change introduces interior mutability.
    #[test]
    fn managers_and_governors_cross_threads() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Manager>();
        assert_sync::<Manager>();
        assert_send::<ResourceGovernor>();
        assert_sync::<ResourceGovernor>();
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(8, items.clone(), |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_: usize, x: u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let seq = parallel_map(1, items.clone(), f);
        let par = parallel_map(7, items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_local_managers_transfer_back() {
        // Each worker builds a function in its own manager; the caller
        // transfers them all into one manager and checks canonicity.
        let built: Vec<(Manager, crate::NodeId)> = parallel_map(4, (2..10).collect(), |_, k| {
            let mut m = Manager::new();
            let vars = m.new_vars(k);
            let f = vars.iter().skip(1).fold(vars[0], |acc, &v| m.xor(acc, v));
            (m, f)
        });
        let mut global = Manager::with_vars(10);
        for (i, (m, f)) in built.iter().enumerate() {
            let k = i + 2;
            let map: FxHashMap<VarId, VarId> =
                (0..k as u32).map(|v| (VarId(v), VarId(v))).collect();
            let t = global.transfer_from(m, *f, &map);
            let vars: Vec<_> = (0..k as u32).map(|v| global.var(VarId(v))).collect();
            let expect = vars.iter().skip(1).fold(vars[0], |acc, &v| global.xor(acc, v));
            assert_eq!(t, expect, "parity of {k} vars survives the transfer");
        }
    }

    #[test]
    fn shared_governor_cancellation_drains_all_workers() {
        let gov = ResourceGovernor::unlimited();
        let handle = gov.cancel_handle();
        let verdicts = parallel_map(4, (0..8).collect::<Vec<usize>>(), |i, _| {
            if i == 0 {
                handle.cancel();
            }
            let worker_gov = gov.fork_steps(u64::MAX);
            loop {
                if let Err(e) = worker_gov.checkpoint(0) {
                    return e;
                }
            }
        });
        assert_eq!(verdicts, vec![ResourceExhausted::Cancelled; 8]);
    }

    #[test]
    fn shared_step_budget_is_globally_enforced() {
        // 4 workers hammer one shared budget of 1000 steps; the total
        // number of *successful* checkpoints must be exactly the limit.
        let gov = ResourceGovernor::unlimited().with_step_limit(1000);
        let oks = parallel_map(4, vec![(); 4], |_, ()| {
            let mut ok = 0u64;
            while gov.checkpoint(0).is_ok() {
                ok += 1;
            }
            ok
        });
        assert_eq!(oks.iter().sum::<u64>(), 1000);
    }
}
