//! Copying functions between managers ("node spaces").
//!
//! The paper's synthesis flow stores reachable-state BDDs "in a separate
//! node space for each partition" and, when retrieving don't cares,
//! brings "their conjunctive approximation … together to a common node
//! space" (§3.5.3). [`Manager::transfer_from`] is that bridge.

use crate::hash::FxHashMap;
use crate::{Manager, NodeId, VarId};

impl Manager {
    /// Copies `f` from `src` into `self`, renaming variables through
    /// `var_map` (source variable id → destination variable id).
    ///
    /// The destination order need not match the source order; the copy is
    /// rebuilt with `ITE`, so the result is canonical in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a source variable absent from `var_map`,
    /// or if a mapped destination variable is undeclared.
    pub fn transfer_from(
        &mut self,
        src: &Manager,
        f: NodeId,
        var_map: &FxHashMap<VarId, VarId>,
    ) -> NodeId {
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        self.transfer_rec(src, f, var_map, &mut memo)
    }

    fn transfer_rec(
        &mut self,
        src: &Manager,
        f: NodeId,
        var_map: &FxHashMap<VarId, VarId>,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let node = src.node(f);
        let lo = self.transfer_rec(src, node.lo, var_map, memo);
        let hi = self.transfer_rec(src, node.hi, var_map, memo);
        let dst_var = *var_map
            .get(&VarId(node.var))
            .unwrap_or_else(|| panic!("transfer: no mapping for source variable v{}", node.var));
        let v = self.var(dst_var);
        let r = self.ite(v, hi, lo);
        memo.insert(f, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, u32)]) -> FxHashMap<VarId, VarId> {
        pairs.iter().map(|&(a, b)| (VarId(a), VarId(b))).collect()
    }

    #[test]
    fn identity_transfer_preserves_function() {
        let mut src = Manager::new();
        let a = src.new_var();
        let b = src.new_var();
        let x = src.xor(a, b);
        let f = src.or(x, a);
        let mut dst = Manager::with_vars(2);
        let g = dst.transfer_from(&src, f, &map(&[(0, 0), (1, 1)]));
        for bits in 0u32..4 {
            let assign: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(src.eval(f, &assign), dst.eval(g, &assign));
        }
    }

    #[test]
    fn transfer_with_reordered_variables() {
        let mut src = Manager::new();
        let a = src.new_var(); // v0
        let b = src.new_var(); // v1
        let nb = src.not(b);
        let f = src.and(a, nb); // a·¬b
        let mut dst = Manager::with_vars(3);
        // a → v2, b → v0: order is inverted in the destination.
        let g = dst.transfer_from(&src, f, &map(&[(0, 2), (1, 0)]));
        // Check semantics: g(v0=b, v2=a) = a·¬b.
        for bits in 0u32..8 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = assign[2] && !assign[0];
            assert_eq!(dst.eval(g, &assign), expect);
        }
    }

    #[test]
    fn terminals_cross_untouched() {
        let src = Manager::new();
        let mut dst = Manager::new();
        assert_eq!(dst.transfer_from(&src, NodeId::TRUE, &map(&[])), NodeId::TRUE);
        assert_eq!(dst.transfer_from(&src, NodeId::FALSE, &map(&[])), NodeId::FALSE);
    }

    #[test]
    #[should_panic(expected = "no mapping")]
    fn missing_mapping_panics() {
        let mut src = Manager::new();
        let a = src.new_var();
        let mut dst = Manager::with_vars(1);
        dst.transfer_from(&src, a, &map(&[]));
    }
}
