//! Clustered image computation over partitioned transition relations.
//!
//! The classic symbolic image `Img(F) = ∃V. F(V) ∧ ∏ᵢ Tᵢ(V, V')`
//! dominates forward reachability, and the order in which the per-bit
//! relations `Tᵢ = v'ᵢ ⊙ δᵢ` are conjoined — and the point at which
//! each variable of `V` is quantified — decides whether the
//! intermediate products stay small or blow up. This module packages
//! the three standard levers (Ranjan/Brayton-style machinery):
//!
//! 1. **Clustering** — neighbouring conjuncts are greedily conjoined
//!    into clusters of at most `cluster_limit` nodes, so one
//!    `and_exists` pass handles a whole cluster instead of one bit.
//!    Each merge runs under a forked step sub-budget: on governor
//!    pressure the merge is abandoned and the pieces stay separate, so
//!    the engine degrades smoothly toward the per-bit granularity.
//! 2. **Ordering + scheduling** — clusters are ordered by an
//!    IWLS95-style benefit score (variables quantifiable immediately
//!    minus variables newly introduced, normalized by support width),
//!    and every variable is quantified right after its last-use
//!    cluster (early quantification).
//! 3. **Frontier simplification** — each cluster is replaced by its
//!    generalized cofactor [`Manager::constrain`]`(Tᵢ, F)` when that
//!    shrinks it (sound because `F · ∏Tᵢ↓F = F · ∏Tᵢ` pointwise), and
//!    between iterations the frontier itself can be minimized against
//!    the previously reached set with [`Manager::restrict`].
//!
//! Every decision is a pure function of canonical per-partition data
//! (BDD sizes and sorted supports in a private manager), so an engine
//! built from the same inputs behaves identically regardless of how
//! many worker threads surround it — the determinism contract of the
//! parallel flows. All heavy lifting goes through the budgeted `try_*`
//! entry points, so a tripped governor unwinds mid-image — and when the
//! owning manager was built with [`crate::KernelConfig::shared_workers`]
//! at `2+`, the large `and_exists`/`and`/`exists` calls inside each
//! image step transparently run on the shared-memory work-stealing
//! kernel (see `shared`), without changing any result.

use crate::governor::{FaultSite, ResourceExhausted, ResourceGovernor};
use crate::{Manager, NodeId, VarId};
use std::collections::{HashMap, HashSet};

/// Default node-count ceiling for one transition-relation cluster.
/// Conjuncts stop being merged into a cluster once it would exceed
/// this many BDD nodes — small enough that a single `and_exists` pass
/// stays cheap, large enough to amortize quantification across bits.
pub const DEFAULT_CLUSTER_LIMIT: usize = 128;

/// Recursion-step sub-budget for one speculative cluster merge. A
/// merge that cannot finish inside this many steps is abandoned (the
/// conjuncts stay in separate clusters); the steps spent still charge
/// the surrounding governor, so a global budget keeps counting.
const MERGE_STEP_BUDGET: u64 = 1 << 16;

/// Consecutive win-less constrain passes before the engine stops
/// attempting cluster constraining for the rest of the fixpoint. The
/// attempt itself costs a traversal of every cluster per image, so a
/// frontier shape that never shrinks anything must not keep paying it.
const CONSTRAIN_STRIKE_LIMIT: u8 = 2;

/// Default for [`ImageEngine::with_constrain_min_cluster`]: clusters
/// below this node count are never worth constraining. One
/// `constrain(c, F)` traversal costs on the order of `|c| · |F|`
/// cache-missed recursions, while the `and_exists` it would speed up
/// is already cheap for small `c` — empirically, at the default
/// 128-node cluster cap the traversals alone cost more than the whole
/// per-bit image. The pass therefore stays dormant until clusters are
/// large enough (raised `cluster_limit`, or monolithic relations as in
/// SEC) for conjunction cost to dominate the attempt.
const CONSTRAIN_MIN_CLUSTER: usize = 512;

/// A constrained cluster is kept only when it is at most half the
/// original's node count; marginal shrinks do not repay the per-image
/// constrain traversals.
const CONSTRAIN_KEEP_DIVISOR: usize = 2;

/// Counters and shape statistics of one [`ImageEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImageStats {
    /// Number of transition-relation clusters.
    pub clusters: usize,
    /// Nodes of the largest cluster BDD at build time.
    pub max_cluster_nodes: usize,
    /// Total nodes across all cluster BDDs at build time.
    pub total_cluster_nodes: usize,
    /// Clusters replaced by a substantially smaller (≤ 1/2 node
    /// count) `constrain(cluster, frontier)` across all
    /// [`ImageEngine::try_image`] calls.
    pub constrain_wins: u64,
    /// Frontiers replaced by a strictly smaller `restrict(frontier,
    /// ¬reached)` across all
    /// [`ImageEngine::try_simplified_frontier`] calls.
    pub restrict_wins: u64,
    /// Cluster merges whose first sub-budget tripped and were retried
    /// once at half budget (the retry rung: the computed table is warm,
    /// so a transient trip often completes on the second, cheaper try).
    pub merge_retries: u64,
}

/// A reusable image-computation engine for one transition relation.
///
/// Build it once per fixpoint with [`ImageEngine::try_clustered`] (or
/// [`ImageEngine::per_bit`] for the legacy one-conjunct-at-a-time
/// schedule), then call [`ImageEngine::try_image`] every iteration.
/// The returned image ranges over the *next-state* variables; renaming
/// them back to present-state is the caller's business (the
/// substitution is caller-specific).
#[derive(Debug)]
pub struct ImageEngine {
    /// Ordered transition-relation clusters.
    clusters: Vec<NodeId>,
    /// `base_schedule[0]`: vars in no cluster, quantified straight out
    /// of the frontier; `base_schedule[i + 1]`: vars whose last use is
    /// cluster `i`, quantified inside that cluster's `and_exists`.
    base_schedule: Vec<Vec<VarId>>,
    /// Whether constrain/restrict frontier simplification is active
    /// (clustered mode) or off (the legacy per-bit schedule).
    simplify: bool,
    /// Consecutive image calls whose constrain pass shrank nothing;
    /// saturates at [`CONSTRAIN_STRIKE_LIMIT`], which retires the pass.
    /// Pure per-partition history, so determinism across `jobs` holds.
    constrain_strikes: u8,
    /// Node-count floor below which a cluster is never constrained
    /// (see [`CONSTRAIN_MIN_CLUSTER`]).
    constrain_min_cluster: usize,
    stats: ImageStats,
}

impl ImageEngine {
    /// The legacy engine: conjuncts stay unmerged and in their given
    /// order, with plain last-use quantification — exactly the per-bit
    /// schedule the clustered engine replaces. No frontier
    /// simplification. Useful as the degraded rung of the ladder and
    /// as the baseline arm of benchmarks.
    pub fn per_bit(m: &Manager, conjuncts: &[NodeId], quantify: &[VarId]) -> Self {
        ImageEngine::from_clusters(m, conjuncts.to_vec(), quantify, false)
    }

    /// Builds a clustered engine: greedy merging up to `cluster_limit`
    /// nodes per cluster, IWLS95-style ordering, early-quantification
    /// schedule, and frontier simplification enabled.
    ///
    /// Cluster merges run under forked step sub-budgets, so step or
    /// node pressure degrades the clustering (down to per-bit
    /// granularity) instead of failing the build; only a deadline or
    /// cancellation — where continuing is pointless — propagates as an
    /// error.
    pub fn try_clustered(
        m: &mut Manager,
        conjuncts: &[NodeId],
        quantify: &[VarId],
        cluster_limit: usize,
        gov: &ResourceGovernor,
    ) -> Result<Self, ResourceExhausted> {
        let limit = cluster_limit.max(1);
        let mut clusters: Vec<NodeId> = Vec::new();
        let mut current: Option<NodeId> = None;
        let mut merge_retries: u64 = 0;
        for &c in conjuncts {
            let Some(acc) = current else {
                current = Some(c);
                continue;
            };
            if m.size(acc) >= limit {
                clusters.push(acc);
                current = Some(c);
                continue;
            }
            let merge_gov = gov.fork_steps(MERGE_STEP_BUDGET);
            let attempt = gov
                .fault_site(FaultSite::ImageCluster)
                .and_then(|()| m.try_and(acc, c, &merge_gov));
            // Retry rung: a step trip on the merge sub-budget is
            // transient — the computed table is warm from the first
            // attempt — so retry once at half budget before keeping
            // the pieces apart.
            let attempt = match attempt {
                Err(ResourceExhausted::Steps) => {
                    merge_retries += 1;
                    let retry_gov = gov.fork_steps(MERGE_STEP_BUDGET / 2);
                    m.try_and(acc, c, &retry_gov)
                }
                other => other,
            };
            match attempt {
                Ok(merged) if m.size(merged) <= limit => current = Some(merged),
                // Too big, or the merge sub-budget (or a surrounding
                // step/node cap) tripped: keep the pieces separate.
                Ok(_) | Err(ResourceExhausted::Steps) | Err(ResourceExhausted::Nodes) => {
                    clusters.push(acc);
                    current = Some(c);
                }
                Err(e @ (ResourceExhausted::Deadline | ResourceExhausted::Cancelled)) => {
                    return Err(e)
                }
            }
        }
        clusters.extend(current);
        let ordered = order_clusters(m, &clusters, quantify);
        let mut engine = ImageEngine::from_clusters(m, ordered, quantify, true);
        engine.stats.merge_retries = merge_retries;
        Ok(engine)
    }

    fn from_clusters(
        m: &Manager,
        clusters: Vec<NodeId>,
        quantify: &[VarId],
        simplify: bool,
    ) -> Self {
        let sizes: Vec<usize> = clusters.iter().map(|&c| m.size(c)).collect();
        let stats = ImageStats {
            clusters: clusters.len(),
            max_cluster_nodes: sizes.iter().copied().max().unwrap_or(0),
            total_cluster_nodes: sizes.iter().sum(),
            ..ImageStats::default()
        };
        let base_schedule = last_use_schedule(m, &clusters, quantify);
        ImageEngine {
            clusters,
            base_schedule,
            simplify,
            constrain_strikes: 0,
            constrain_min_cluster: CONSTRAIN_MIN_CLUSTER,
            stats,
        }
    }

    /// Overrides the node-count floor below which clusters are never
    /// constrained by the frontier (default: dormant until clusters
    /// reach several hundred nodes, where conjunction cost starts to
    /// dominate the constrain traversal). Mainly for large-cluster
    /// flows and for tests that want the pass exercised on small BDDs.
    pub fn with_constrain_min_cluster(mut self, nodes: usize) -> Self {
        self.constrain_min_cluster = nodes.max(1);
        self
    }

    /// One image step: `∃ quantify. frontier ∧ ∏ clusters`, over the
    /// engine's schedule. The result ranges over the non-quantified
    /// (next-state) variables.
    ///
    /// In clustered mode each cluster is first constrained by the
    /// frontier and the generalized cofactor kept when it is both
    /// substantially smaller and **support-monotone** (no new
    /// variables): [`Manager::constrain`] can pull frontier variables
    /// into a cluster, and a support gain would invalidate the cached
    /// last-use schedule. Losing variables is harmless — quantifying a
    /// variable a cluster no longer depends on is the identity — so
    /// support-monotone wins reuse the schedule as-is.
    pub fn try_image(
        &mut self,
        m: &mut Manager,
        frontier: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let mut clusters = self.clusters.clone();
        if self.simplify
            && self.constrain_strikes < CONSTRAIN_STRIKE_LIMIT
            && !frontier.is_true()
            && !frontier.is_false()
        {
            let mut attempts: u64 = 0;
            let mut wins: u64 = 0;
            for c in clusters.iter_mut() {
                if m.size(*c) < self.constrain_min_cluster {
                    continue;
                }
                attempts += 1;
                gov.fault_site(FaultSite::ImageConstrain)?;
                let cand = m.try_constrain(*c, frontier, gov)?;
                if cand != *c
                    && m.size(cand) * CONSTRAIN_KEEP_DIVISOR <= m.size(*c)
                    && sorted_subset(&m.support(cand), &m.support(*c))
                {
                    *c = cand;
                    wins += 1;
                    self.stats.constrain_wins += 1;
                }
            }
            // A pass pays for itself only when wins are broad, not one
            // lucky cluster out of hundreds: require ≥ 1/8 of attempts.
            if wins * 8 >= attempts && wins > 0 {
                self.constrain_strikes = 0;
            } else {
                self.constrain_strikes += 1;
            }
        }
        let schedule = &self.base_schedule;
        let mut product = m.try_exists(frontier, &schedule[0], gov)?;
        for (idx, &c) in clusters.iter().enumerate() {
            let cube = m.cube(&schedule[idx + 1]);
            product = m.try_and_exists(product, c, cube, gov)?;
        }
        Ok(product)
    }

    /// The next frontier to feed [`ImageEngine::try_image`]: any set
    /// `F` with `fresh ⊆ F ⊆ fresh ∪ prev_reach` yields the same
    /// fixpoint (states of `prev_reach` re-imaged early are reachable
    /// anyway), so in clustered mode this returns
    /// `restrict(fresh, ¬prev_reach)` when that BDD is strictly
    /// smaller — the restrict contract pins `F` to `fresh` outside
    /// `prev_reach` and lets it float only inside it. The per-bit
    /// engine returns `fresh` unchanged.
    ///
    /// Requires `fresh ∩ prev_reach = ∅` (pass the reached set from
    /// *before* the states of `fresh` were added): if `prev_reach`
    /// overlapped `fresh`, the float region would cover part of `fresh`
    /// and the returned set could silently drop frontier states.
    pub fn try_simplified_frontier(
        &mut self,
        m: &mut Manager,
        fresh: NodeId,
        prev_reach: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if !self.simplify || prev_reach.is_false() || fresh.is_terminal() {
            return Ok(fresh);
        }
        debug_assert!(
            m.and(fresh, prev_reach).is_false(),
            "frontier simplification requires fresh ∩ prev_reach = ∅"
        );
        let care = m.try_not(prev_reach, gov)?;
        let cand = m.try_restrict(fresh, care, gov)?;
        if m.size(cand) < m.size(fresh) {
            self.stats.restrict_wins += 1;
            Ok(cand)
        } else {
            Ok(fresh)
        }
    }

    /// The cluster BDDs, for rooting across GC safe points.
    pub fn clusters(&self) -> &[NodeId] {
        &self.clusters
    }

    /// Node counts of the clusters (canonical build-time order).
    pub fn cluster_sizes(&self, m: &Manager) -> Vec<usize> {
        self.clusters.iter().map(|&c| m.size(c)).collect()
    }

    /// Shape statistics and simplification counters so far.
    pub fn stats(&self) -> ImageStats {
        self.stats
    }
}

/// IWLS95-style greedy ordering. At each step the remaining cluster
/// with the best benefit is appended, where benefit is
/// `(quantifiable now − introduced) / support width` compared as exact
/// integer cross-products; ties break toward the smaller original
/// index. "Quantifiable now" counts quantify-variables whose only
/// remaining occurrence is this cluster; "introduced" counts variables
/// the product has not seen yet (next-state variables, chiefly).
fn order_clusters(m: &Manager, clusters: &[NodeId], quantify: &[VarId]) -> Vec<NodeId> {
    if clusters.len() <= 1 {
        return clusters.to_vec();
    }
    let qset: HashSet<VarId> = quantify.iter().copied().collect();
    let supports: Vec<Vec<VarId>> = clusters.iter().map(|&c| m.support(c)).collect();
    let mut occ: HashMap<VarId, usize> = HashMap::new();
    for support in &supports {
        for &v in support {
            if qset.contains(&v) {
                *occ.entry(v).or_insert(0) += 1;
            }
        }
    }
    // The product is assumed to start over the quantifiable variables
    // (the frontier); everything else a cluster mentions is introduced
    // the first time some chosen cluster pulls it in.
    let mut in_product: HashSet<VarId> = qset.clone();
    let mut remaining: Vec<usize> = (0..clusters.len()).collect();
    let mut ordered = Vec::with_capacity(clusters.len());
    while !remaining.is_empty() {
        let mut best_at = 0usize;
        let mut best_score: Option<(i64, i64)> = None; // (numerator, width)
        for (at, &idx) in remaining.iter().enumerate() {
            let support = &supports[idx];
            let quantifiable =
                support.iter().filter(|v| occ.get(v).copied() == Some(1)).count() as i64;
            let introduced =
                support.iter().filter(|v| !in_product.contains(v)).count() as i64;
            let width = (support.len() as i64).max(1);
            let score = (quantifiable - introduced, width);
            // score > best  ⇔  score.0 / score.1 > best.0 / best.1
            let better = match best_score {
                None => true,
                Some(best) => score.0 * best.1 > best.0 * score.1,
            };
            if better {
                best_score = Some(score);
                best_at = at;
            }
        }
        let idx = remaining.remove(best_at);
        for &v in &supports[idx] {
            in_product.insert(v);
            if let Some(n) = occ.get_mut(&v) {
                *n -= 1;
                if *n == 0 {
                    in_product.remove(&v);
                }
            }
        }
        ordered.push(clusters[idx]);
    }
    ordered
}

/// Early-quantification schedule: slot `0` holds the quantify-vars no
/// cluster mentions (eliminated straight from the frontier), slot
/// `i + 1` the vars whose last-use cluster is `i`.
fn last_use_schedule(
    m: &Manager,
    clusters: &[NodeId],
    quantify: &[VarId],
) -> Vec<Vec<VarId>> {
    let mut last_use: HashMap<VarId, usize> =
        quantify.iter().map(|&v| (v, 0)).collect();
    for (idx, &c) in clusters.iter().enumerate() {
        for v in m.support(c) {
            if let Some(slot) = last_use.get_mut(&v) {
                *slot = (*slot).max(idx + 1);
            }
        }
    }
    (0..=clusters.len())
        .map(|idx| quantify.iter().copied().filter(|v| last_use[v] == idx).collect())
        .collect()
}

/// Is sorted slice `a` a subset of sorted slice `b`? (Both come from
/// [`Manager::support`], which returns variables in order.)
fn sorted_subset(a: &[VarId], b: &[VarId]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.by_ref().any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic transition system: `k` state bits with
    /// structured next-state functions over present bits and `inputs`
    /// free inputs. Layout: present 0..k, next k..2k, inputs 2k.. —
    /// returns (conjuncts, quantify, next_vars).
    fn fixture(m: &mut Manager, k: usize, inputs: usize) -> (Vec<NodeId>, Vec<VarId>, Vec<VarId>) {
        let vars = m.new_vars(2 * k + inputs);
        let ps: Vec<NodeId> = vars[..k].to_vec();
        let ns: Vec<VarId> = (k..2 * k).map(|i| VarId(i as u32)).collect();
        let ins: Vec<NodeId> = vars[2 * k..].to_vec();
        let mut conjuncts = Vec::with_capacity(k);
        for i in 0..k {
            // Mix of neighbours and an input keeps supports overlapping.
            let a = ps[i];
            let b = ps[(i + 1) % k];
            let mut delta = match i % 3 {
                0 => m.xor(a, b),
                1 => m.and(a, b),
                _ => m.or(a, b),
            };
            if !ins.is_empty() {
                let x = ins[i % ins.len()];
                delta = m.xor(delta, x);
            }
            let nv = m.var(ns[i]);
            conjuncts.push(m.xnor(nv, delta));
        }
        let mut quantify: Vec<VarId> = (0..k).map(|i| VarId(i as u32)).collect();
        quantify.extend((2 * k..2 * k + inputs).map(|i| VarId(i as u32)));
        (conjuncts, quantify, ns)
    }

    /// The specification image: one monolithic relation, one
    /// `and_exists` with the full quantification cube.
    fn naive_image(
        m: &mut Manager,
        conjuncts: &[NodeId],
        quantify: &[VarId],
        frontier: NodeId,
    ) -> NodeId {
        let relation = m.and_many(conjuncts.iter().copied());
        let cube = m.cube(quantify);
        m.and_exists(frontier, relation, cube)
    }

    /// A grab-bag of frontiers: everything, single states, sub-cubes.
    fn frontiers(m: &mut Manager, k: usize) -> Vec<NodeId> {
        let mut out = vec![NodeId::TRUE];
        let all_zero: Vec<(VarId, bool)> =
            (0..k).map(|i| (VarId(i as u32), false)).collect();
        out.push(m.minterm(&all_zero));
        let alt: Vec<(VarId, bool)> =
            (0..k).map(|i| (VarId(i as u32), i % 2 == 0)).collect();
        out.push(m.minterm(&alt));
        let v0 = m.var(VarId(0));
        let v1 = m.var(VarId(1));
        out.push(m.or(v0, v1));
        out.push(m.xor(v0, v1));
        out
    }

    #[test]
    fn clustered_image_matches_naive_image() {
        let gov = ResourceGovernor::unlimited();
        for (k, inputs, limit) in [(4, 0, 8), (5, 2, 64), (6, 3, 1), (6, 3, 10_000)] {
            let mut m = Manager::new();
            let (conjuncts, quantify, _) = fixture(&mut m, k, inputs);
            let mut engine =
                ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, limit, &gov)
                    .expect("unlimited build");
            for f in frontiers(&mut m, k) {
                let img = engine.try_image(&mut m, f, &gov).expect("unlimited image");
                let spec = naive_image(&mut m, &conjuncts, &quantify, f);
                assert_eq!(img, spec, "k={k} inputs={inputs} limit={limit} frontier={f}");
            }
        }
    }

    #[test]
    fn per_bit_image_matches_naive_image() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 5, 2);
        let mut engine = ImageEngine::per_bit(&m, &conjuncts, &quantify);
        for f in frontiers(&mut m, 5) {
            let img = engine.try_image(&mut m, f, &gov).expect("unlimited image");
            let spec = naive_image(&mut m, &conjuncts, &quantify, f);
            assert_eq!(img, spec);
        }
        assert_eq!(engine.stats().clusters, 5, "per-bit engine must not merge");
        assert_eq!(engine.stats().constrain_wins, 0);
    }

    #[test]
    fn constrain_pass_wins_and_stays_exact_when_enabled() {
        // The default floor keeps the pass dormant on BDDs this small,
        // so lower it to 1 to force the generalized-cofactor path and
        // check it never changes the computed image.
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 6, 3);
        let mut engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
            .expect("unlimited build")
            .with_constrain_min_cluster(1);
        for f in frontiers(&mut m, 6) {
            let img = engine.try_image(&mut m, f, &gov).expect("unlimited image");
            let spec = naive_image(&mut m, &conjuncts, &quantify, f);
            assert_eq!(img, spec, "frontier={f}");
        }
        assert!(
            engine.stats().constrain_wins > 0,
            "cube frontiers must shrink some cluster via constrain"
        );
    }

    #[test]
    fn constrain_pass_retires_after_win_less_strikes() {
        // With the default floor every cluster is below the threshold:
        // zero attempts count as a win-less pass, so after
        // CONSTRAIN_STRIKE_LIMIT images the pass is retired for good.
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 5, 2);
        let mut engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
            .expect("unlimited build");
        let f = {
            let bits: Vec<(VarId, bool)> = (0..5).map(|i| (VarId(i as u32), false)).collect();
            m.minterm(&bits)
        };
        for _ in 0..4 {
            engine.try_image(&mut m, f, &gov).expect("unlimited image");
        }
        assert_eq!(engine.stats().constrain_wins, 0);
        assert!(engine.constrain_strikes >= CONSTRAIN_STRIKE_LIMIT, "pass must retire");
    }

    #[test]
    fn tiny_limit_degrades_to_per_bit_granularity() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 6, 2);
        let engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 1, &gov)
            .expect("unlimited build");
        assert_eq!(engine.stats().clusters, conjuncts.len());
        let generous = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 1 << 20, &gov)
            .expect("unlimited build");
        assert!(generous.stats().clusters < conjuncts.len(), "generous limit must merge");
    }

    #[test]
    fn merge_budget_pressure_keeps_finer_clusters_sound() {
        // A 1-step budget cannot pay for any merge: the build must
        // still succeed (finer clusters) and compute correct images
        // once the budget is lifted.
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 5, 1);
        let starved = ResourceGovernor::unlimited().with_step_limit(1);
        let mut engine =
            ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 1 << 20, &starved)
                .expect("merge pressure must degrade, not fail");
        assert_eq!(engine.stats().clusters, conjuncts.len());
        let gov = ResourceGovernor::unlimited();
        for f in frontiers(&mut m, 5) {
            let img = engine.try_image(&mut m, f, &gov).expect("unlimited image");
            let spec = naive_image(&mut m, &conjuncts, &quantify, f);
            assert_eq!(img, spec);
        }
    }

    #[test]
    fn cancellation_unwinds_build_and_image() {
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 5, 2);
        let gov = ResourceGovernor::unlimited();
        let mut engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
            .expect("unlimited build");
        let cancelled = ResourceGovernor::unlimited();
        cancelled.cancel();
        // Build in a cold manager: cache hits are free in the try_*
        // twins, so only a cold build is forced through checkpoints.
        let mut cold = Manager::new();
        let (cold_conjuncts, cold_quantify, _) = fixture(&mut cold, 5, 2);
        assert_eq!(
            ImageEngine::try_clustered(&mut cold, &cold_conjuncts, &cold_quantify, 64, &cancelled)
                .map(|e| e.stats().clusters),
            Err(ResourceExhausted::Cancelled)
        );
        let v0 = m.var(VarId(0));
        let v2 = m.var(VarId(2));
        let f = m.and(v0, v2); // fresh product: no warm cache to answer for free
        assert_eq!(engine.try_image(&mut m, f, &cancelled), Err(ResourceExhausted::Cancelled));
    }

    #[test]
    fn injected_cancel_in_constrain_pass_unwinds_then_rebuilds_exactly() {
        use crate::governor::{FaultKind, FaultPlan, FaultSite};
        use std::sync::Arc;
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 6, 3);
        let mut engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
            .expect("unlimited build")
            .with_constrain_min_cluster(1);
        let f = {
            let bits: Vec<(VarId, bool)> = (0..6).map(|i| (VarId(i as u32), false)).collect();
            m.minterm(&bits)
        };
        // Cancel at the first per-cluster constrain attempt: the image
        // must unwind mid-pass with the precise cause …
        let plan = Arc::new(
            FaultPlan::new(13).with_rule(FaultSite::ImageConstrain, 1, FaultKind::Cancel),
        );
        let faulted = ResourceGovernor::unlimited().with_fault_plan(plan);
        assert_eq!(engine.try_image(&mut m, f, &faulted), Err(ResourceExhausted::Cancelled));
        // … and a clean retry on the *same* engine and manager computes
        // the exact image: the aborted pass left only sound cache
        // entries and untouched clusters behind.
        let img = engine.try_image(&mut m, f, &gov).expect("clean retry");
        let spec = naive_image(&mut m, &conjuncts, &quantify, f);
        assert_eq!(img, spec, "post-cancel rebuild must be canonical");
    }

    #[test]
    fn injected_merge_fault_is_absorbed_by_the_halved_budget_retry() {
        use crate::governor::{FaultKind, FaultPlan, FaultSite};
        use std::sync::Arc;
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 5, 1);
        // A one-shot budget fault on the first cluster-merge attempt:
        // the merge loop retries once at half budget, the crossing
        // counter has moved past the rule, and the build completes.
        let plan = Arc::new(
            FaultPlan::new(17).with_rule(FaultSite::ImageCluster, 1, FaultKind::Budget),
        );
        let faulted = ResourceGovernor::unlimited().with_fault_plan(plan);
        let mut engine =
            ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 1 << 20, &faulted)
                .expect("transient fault must be absorbed");
        assert!(engine.stats().merge_retries >= 1, "the retry must be counted");
        let gov = ResourceGovernor::unlimited();
        for f in frontiers(&mut m, 5) {
            let img = engine.try_image(&mut m, f, &gov).expect("unlimited image");
            let spec = naive_image(&mut m, &conjuncts, &quantify, f);
            assert_eq!(img, spec);
        }
    }

    #[test]
    fn simplified_frontier_is_sound_and_off_per_bit() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let (conjuncts, quantify, _) = fixture(&mut m, 4, 0);
        let mut clustered = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
            .expect("unlimited build");
        let mut per_bit = ImageEngine::per_bit(&m, &conjuncts, &quantify);
        let v0 = m.var(VarId(0));
        let v1 = m.var(VarId(1));
        let fresh = m.and(v0, v1);
        let nv0 = m.not(v0);
        let prev = m.and(nv0, v1);
        assert_eq!(per_bit.try_simplified_frontier(&mut m, fresh, prev, &gov), Ok(fresh));
        let simplified =
            clustered.try_simplified_frontier(&mut m, fresh, prev, &gov).expect("unlimited");
        // fresh ⊆ F ⊆ fresh ∪ prev — the fixpoint-preserving envelope.
        let nf = m.not(simplified);
        let missing = m.and(fresh, nf);
        assert!(missing.is_false(), "simplified frontier must cover fresh");
        let envelope = m.or(fresh, prev);
        let ne = m.not(envelope);
        let outside = m.and(simplified, ne);
        assert!(outside.is_false(), "simplified frontier escaped the envelope");
    }

    #[test]
    fn engine_build_is_deterministic() {
        let gov = ResourceGovernor::unlimited();
        let build = || {
            let mut m = Manager::new();
            let (conjuncts, quantify, _) = fixture(&mut m, 6, 2);
            let engine = ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, 64, &gov)
                .expect("unlimited build");
            (engine.stats(), engine.cluster_sizes(&m), engine.clusters.clone())
        };
        assert_eq!(build(), build());
    }
}
