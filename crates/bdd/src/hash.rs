//! A fast, non-cryptographic hasher for the unique and computed tables.
//!
//! The default `SipHash` is needlessly slow for the hot hash-consing path of
//! a BDD package; this is the classic Fx multiply-rotate hash used by the
//! Rust compiler, reimplemented here to keep the crate dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the `rustc` "Fx" hash).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Mixes a 128-bit key (as two words) down to one well-distributed
/// word: the same multiply-rotate accumulation as [`FxHasher`] over
/// both words, followed by an avalanche so that the *high* bits are
/// usable for shard selection, not just the low bits for slot masks.
#[inline]
pub(crate) fn fx_mix128(k0: u64, k1: u64) -> u64 {
    let mut h = k0.wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ k1).wrapping_mul(SEED);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_in_practice() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..100 {
            for b in 0u32..100 {
                seen.insert(build.hash_one((a, b)));
            }
        }
        // Not a strict requirement, but collisions should be rare.
        assert!(seen.len() > 9_900);
    }

    #[test]
    fn deterministic() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let once = build.hash_one((1u32, 2u32, 3u32));
        let twice = build.hash_one((1u32, 2u32, 3u32));
        assert_eq!(once, twice);
    }
}
