//! Node and variable identifiers.

use std::fmt;

/// Index of a BDD variable; doubles as its level in the (static) order.
///
/// Variables created earlier with [`crate::Manager::new_var`] sit higher in
/// the diagram (closer to the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(v: u32) -> Self {
        VarId(v)
    }
}

/// Handle to a node in a [`crate::Manager`].
///
/// `NodeId`s are only meaningful relative to the manager that produced them.
/// Two equal `NodeId`s from the same manager denote the same Boolean
/// function (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant `0` (false) function.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant `1` (true) function.
    pub const TRUE: NodeId = NodeId(1);

    /// Is this one of the two terminal nodes?
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Is this the constant-false node?
    #[inline]
    pub fn is_false(self) -> bool {
        self == NodeId::FALSE
    }

    /// Is this the constant-true node?
    #[inline]
    pub fn is_true(self) -> bool {
        self == NodeId::TRUE
    }

    /// Raw index into the manager's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeId::FALSE => write!(f, "⊥"),
            NodeId::TRUE => write!(f, "⊤"),
            NodeId(n) => write!(f, "n{n}"),
        }
    }
}

/// Internal node representation: `ITE(var, hi, lo)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    /// Level/variable index; `u32::MAX` for terminals so they sort below
    /// every real variable.
    pub var: u32,
    /// Cofactor with `var = 0`.
    pub lo: NodeId,
    /// Cofactor with `var = 1`.
    pub hi: NodeId,
}

impl Node {
    /// The unique-table key of this node. Hash-consing treats two nodes
    /// as the same iff their keys match, so both the sequential `find`
    /// path and the concurrent CAS-publish path compare via this tuple.
    #[inline]
    pub(crate) fn key(&self) -> (u32, NodeId, NodeId) {
        (self.var, self.lo, self.hi)
    }
}

pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_predicates() {
        assert!(NodeId::FALSE.is_terminal());
        assert!(NodeId::TRUE.is_terminal());
        assert!(NodeId::FALSE.is_false());
        assert!(NodeId::TRUE.is_true());
        assert!(!NodeId(5).is_terminal());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::FALSE.to_string(), "⊥");
        assert_eq!(NodeId::TRUE.to_string(), "⊤");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(VarId(3).to_string(), "v3");
    }
}
