//! Shared-memory concurrent kernel: CAS-published unique table,
//! sharded seqlock computed cache, and work-stealing recursive
//! apply/ITE/quantify.
//!
//! # Design (Sylvan-style phases, not a free-running shared manager)
//!
//! A concurrent *phase* is one top-level operation dispatched by the
//! budgeted twins when [`crate::KernelConfig::shared_workers`] is `2+`
//! and the operand DAGs are large enough to amortize thread startup.
//! Between phases the manager is exactly the single-threaded kernel —
//! GC, sifting, compaction and rehashing all happen there, stop-the-
//! world by construction. Inside a phase the world is frozen:
//!
//! * **Node arena.** Fresh nodes are bump-allocated into the spare
//!   capacity of the existing node `Vec` (reserved up front, `set_len`
//!   committed afterwards). Nothing moves; pre-existing ids stay valid
//!   and new ids are handed out by an atomic cursor.
//! * **Unique table.** The open-addressed power-of-two slot array is
//!   viewed as `AtomicU32`s. Lookup is the ordinary linear probe with
//!   `Acquire` loads; insertion writes the node into the arena first
//!   and then publishes its index with a single
//!   `compare_exchange(EMPTY → id, AcqRel)`. A CAS loser re-inspects
//!   the slot (the winner may have published exactly the key it
//!   wanted) and recycles its provisional node as a spare, so losing a
//!   race costs one retry, not a leak that grows with contention.
//!   Tombstones are never claimed during a phase; the table is
//!   pre-sized so live + reserve stays under half the slots, which
//!   bounds every probe. Any overflow aborts the phase, commits what
//!   was published, doubles the reservation and retries warm.
//! * **Computed cache.** A sharded seqlock cache (16 shards, shard
//!   picked by the high hash bits, slot by the low bits). Readers
//!   validate an even, unchanged sequence number around relaxed field
//!   loads; writers claim a slot with one CAS on the sequence word and
//!   skip (the cache is lossy anyway) if it is contended. Hit/miss
//!   tallies are relaxed per-shard atomics drained into
//!   [`SharedHooks`] totals at every stop-the-world boundary, so
//!   [`crate::Manager::stats`] never tears.
//! * **Work stealing.** Recursion splits on the top variable's
//!   cofactor pair: the `hi` branch becomes a task on the owner's
//!   deque (LIFO for the owner, FIFO for thieves), the `lo` branch
//!   runs inline, and the join either claims the task back or helps
//!   by stealing others. Splitting stops below [`SPLIT_DEPTH`];
//!   deeper recursion is plain sequential code per worker.
//!
//! # Why determinism survives
//!
//! Hash consing makes the *result* of every operation canonical: each
//! Boolean function has exactly one node per manager, so whichever
//! worker publishes it first, every thread agrees on the id and the
//! final root is the same node the sequential twin returns. Raw id
//! *values* of intermediate nodes do depend on the schedule — which is
//! why everything downstream (sizes, netlist emission, flow decisions)
//! consumes canonical quantities, and why the oracle tests assert
//! function identity after a canonical rebuild rather than raw-id
//! transcripts. Budget trip *points* under finite budgets are
//! schedule-dependent, exactly as the jobs-sweep contract already
//! documents for partition-level parallelism.
//!
//! # Governor contract
//!
//! Every worker calls [`ResourceGovernor::checkpoint`] at each
//! cache-miss expansion, so step/node/deadline budgets and the
//! cancellation ladder are observed cooperatively from inside the
//! concurrent region. The first error wins, raises a phase-local stop
//! flag, and every other worker unwinds at its next checkpoint or
//! join. Worker panics are caught per thread, the phase still commits
//! its arena (so the manager stays structurally sound), and the
//! payload is rethrown on the calling thread — the same isolation
//! contract `par.rs` gives partition-level tasks. The coordinator
//! crosses [`FaultSite::BddSharedApply`] exactly once per dispatched
//! operation, before any worker exists, so chaos-plan ordinals stay
//! deterministic under any worker count.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::governor::{FaultSite, ResourceExhausted, ResourceGovernor};
use crate::hash::{fx_mix128, FxHashSet};
use crate::manager::{cache_pack, key_hash, CacheKey, Op, SLOT_EMPTY, SLOT_TOMB};
use crate::node::Node;
use crate::{Manager, NodeId};

/// Operand-DAG node count below which dispatch declines and the
/// sequential twin runs: thread startup plus table pre-sizing costs
/// more than recomputing a small cone.
const SHARED_SIZE_CUTOFF: usize = 2048;

/// Recursion depth below which the `hi` cofactor is forked as a task.
/// `6` yields at most ~64 outstanding tasks per operation — plenty to
/// keep 8 workers fed without drowning in task overhead.
const SPLIT_DEPTH: u32 = 6;

/// Smallest arena reservation for a phase, in nodes.
const MIN_RESERVE: usize = 1 << 16;

/// log2 of the shard count of the concurrent computed cache.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

// ---------------------------------------------------------------------
// Manager-side hooks
// ---------------------------------------------------------------------

/// Concurrent-kernel state owned by the [`Manager`].
///
/// The cache is lazily materialized on the first dispatched phase and
/// wiped (not freed) at every stop-the-world safe point that moves or
/// frees nodes. Hit/miss totals live here as plain integers — shard
/// atomics are drained into them at phase end, so reading stats never
/// races a worker.
pub(crate) struct SharedHooks {
    pub(crate) cache: Option<Box<SharedCache>>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl SharedHooks {
    pub(crate) fn new() -> Self {
        SharedHooks { cache: None, hits: 0, misses: 0 }
    }

    /// Safe-point hook: cached results name node ids, so any sweep,
    /// compaction or reorder invalidates every entry. Counters are
    /// kept; the slot memory is kept too (it is bounded and will
    /// refill on the next phase).
    pub(crate) fn invalidate(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
    }
}

impl Clone for SharedHooks {
    fn clone(&self) -> Self {
        // A cloned manager starts with a cold concurrent cache: entries
        // name ids of the source manager's arena, which the clone
        // shares structurally, so carrying them over would be valid —
        // but a fresh cache keeps clone cheap and obviously correct.
        SharedHooks { cache: None, hits: self.hits, misses: self.misses }
    }
}

impl std::fmt::Debug for SharedHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHooks")
            .field("cache", &self.cache.as_ref().map(|c| c.slot_count()))
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Sharded seqlock computed cache
// ---------------------------------------------------------------------

/// One cache line's worth of seqlock-protected entry: an odd sequence
/// number means a writer owns the slot; readers validate the sequence
/// is even and unchanged around their field loads.
struct SeqSlot {
    seq: AtomicU32,
    r: AtomicU32,
    k0: AtomicU64,
    k1: AtomicU64,
}

impl SeqSlot {
    fn empty() -> Self {
        SeqSlot {
            seq: AtomicU32::new(0),
            r: AtomicU32::new(u32::MAX),
            k0: AtomicU64::new(0),
            k1: AtomicU64::new(0),
        }
    }
}

struct Shard {
    slots: Vec<SeqSlot>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The concurrent computed table: direct-mapped like the sequential
/// one (lossy, bounded by construction), split into [`SHARDS`] shards
/// so simultaneous inserts rarely touch the same cache lines. Shard
/// selection uses the *high* bits of the mixed key, slot selection the
/// low bits — independent, so a shard's slots stay uniformly loaded.
pub(crate) struct SharedCache {
    shards: Vec<Shard>,
    slot_mask: usize,
}

impl SharedCache {
    pub(crate) fn new(cache_bits: u32) -> Self {
        // Keep the same total budget as the sequential cache would
        // have at `cache_bits`, split across the shards.
        let per_shard_bits = cache_bits.saturating_sub(SHARD_BITS).clamp(6, 20);
        let per_shard = 1usize << per_shard_bits;
        let shards = (0..SHARDS)
            .map(|_| Shard {
                slots: (0..per_shard).map(|_| SeqSlot::empty()).collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect();
        SharedCache { shards, slot_mask: per_shard - 1 }
    }

    fn slot_count(&self) -> usize {
        SHARDS * (self.slot_mask + 1)
    }

    #[inline]
    fn slot(&self, k0: u64, k1: u64) -> (&Shard, &SeqSlot) {
        let h = fx_mix128(k0, k1);
        let shard = &self.shards[(h >> (64 - SHARD_BITS)) as usize];
        let slot = &shard.slots[h as usize & self.slot_mask];
        (shard, slot)
    }

    /// Seqlock read: even sequence, relaxed field loads, fence, then
    /// re-validate the sequence. A torn or in-flight slot reads as a
    /// miss — the cache is lossy, so that is merely a recomputation.
    fn get(&self, key: CacheKey) -> Option<NodeId> {
        let (k0, k1) = cache_pack(key);
        let (shard, slot) = self.slot(k0, k1);
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 0 {
            let sk0 = slot.k0.load(Ordering::Relaxed);
            let sk1 = slot.k1.load(Ordering::Relaxed);
            let r = slot.r.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == seq && r != u32::MAX && sk0 == k0 && sk1 == k1 {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Some(NodeId(r));
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Seqlock write: claim the slot by bumping the sequence odd with
    /// one CAS; if another writer holds it, skip — overwrite-on-
    /// collision already loses entries by design, so a contended
    /// insert is just an early collision.
    fn insert(&self, key: CacheKey, r: NodeId) {
        let (k0, k1) = cache_pack(key);
        let (_, slot) = self.slot(k0, k1);
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 != 0 {
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq.wrapping_add(1), Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.k0.store(k0, Ordering::Relaxed);
        slot.k1.store(k1, Ordering::Relaxed);
        slot.r.store(r.0, Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Stop-the-world wipe (no phase is running when this is called).
    fn clear(&mut self) {
        for shard in &mut self.shards {
            for slot in &shard.slots {
                slot.r.store(u32::MAX, Ordering::Relaxed);
            }
        }
    }

    /// Moves the per-shard relaxed tallies into plain totals; called
    /// at phase end, when no worker can touch the counters.
    fn drain_counters(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for shard in &self.shards {
            hits += shard.hits.swap(0, Ordering::Relaxed);
            misses += shard.misses.swap(0, Ordering::Relaxed);
        }
        (hits, misses)
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// A top-level operation eligible for concurrent execution. Mirrors
/// the budgeted twins' entry points; `Not` exists only because XOR's
/// terminal shortcut needs it inside a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SharedOp {
    Not(NodeId),
    And(NodeId, NodeId),
    Or(NodeId, NodeId),
    Xor(NodeId, NodeId),
    Ite(NodeId, NodeId, NodeId),
    Exists(NodeId, NodeId),
    Forall(NodeId, NodeId),
    AndExists(NodeId, NodeId, NodeId),
}

impl SharedOp {
    fn roots(&self) -> ([NodeId; 3], usize) {
        match *self {
            SharedOp::Not(f) => ([f, f, f], 1),
            SharedOp::And(f, g) | SharedOp::Or(f, g) | SharedOp::Xor(f, g) => ([f, g, g], 2),
            SharedOp::Ite(f, g, h) => ([f, g, h], 3),
            SharedOp::Exists(f, c) | SharedOp::Forall(f, c) => ([f, c, c], 2),
            SharedOp::AndExists(f, g, c) => ([f, g, c], 3),
        }
    }

    /// The exact computed-table key the *sequential* twin would use
    /// for this top-level call, or `None` when a terminal shortcut
    /// applies (the sequential path would return without touching the
    /// cache). Used both to answer warm calls without spinning up a
    /// phase and to seed the sequential cache with the phase's result.
    fn seq_cache_key(&self, m: &Manager) -> Option<CacheKey> {
        let norm = |f: NodeId, g: NodeId| if f.0 <= g.0 { (f, g) } else { (g, f) };
        match *self {
            SharedOp::Not(f) => (!f.is_terminal()).then_some((Op::Not, f.0, 0, 0)),
            SharedOp::And(f, g) => {
                if f == g || f.is_terminal() || g.is_terminal() {
                    return None;
                }
                let (a, b) = norm(f, g);
                Some((Op::And, a.0, b.0, 0))
            }
            SharedOp::Or(f, g) => {
                if f == g || f.is_terminal() || g.is_terminal() {
                    return None;
                }
                let (a, b) = norm(f, g);
                Some((Op::Or, a.0, b.0, 0))
            }
            SharedOp::Xor(f, g) => {
                if f == g || f.is_terminal() || g.is_terminal() {
                    return None;
                }
                let (a, b) = norm(f, g);
                Some((Op::Xor, a.0, b.0, 0))
            }
            SharedOp::Ite(f, g, h) => {
                if f.is_terminal() || g == h {
                    return None;
                }
                if (g.is_true() && h.is_false()) || (g.is_false() && h.is_true()) {
                    return None;
                }
                Some((Op::Ite, f.0, g.0, h.0))
            }
            SharedOp::Exists(f, cube) | SharedOp::Forall(f, cube) => {
                let op = if matches!(self, SharedOp::Exists(..)) { Op::Exists } else { Op::Forall };
                if f.is_terminal() || cube.is_true() {
                    return None;
                }
                // The sequential twin keys on the cube *after* skipping
                // variables above f's level.
                let mut c = cube;
                let f_level = m.level(f);
                while !c.is_true() && m.level(c) < f_level {
                    c = m.branches(c).1;
                }
                (!c.is_true()).then_some((op, f.0, c.0, 0))
            }
            SharedOp::AndExists(f, g, cube) => {
                if f.is_false() || g.is_false() || (f.is_true() && g.is_true()) {
                    return None;
                }
                if cube.is_true() || f.is_true() || g.is_true() {
                    return None; // delegates to and / exists — let the seq path key it
                }
                let (a, b) = norm(f, g);
                Some((Op::Exists, a.0, b.0, cube.0))
            }
        }
    }
}

/// Counts nodes reachable from `roots`, stopping at `cap` — the
/// dispatch gate only needs "big enough", never an exact size.
fn bounded_size(m: &Manager, roots: &[NodeId], cap: usize) -> usize {
    let mut seen = FxHashSet::default();
    let mut stack: Vec<NodeId> = roots.iter().copied().filter(|r| !r.is_terminal()).collect();
    let mut count = 0usize;
    while let Some(f) = stack.pop() {
        if !seen.insert(f.0) {
            continue;
        }
        count += 1;
        if count >= cap {
            return count;
        }
        let (lo, hi) = m.branches(f);
        if !lo.is_terminal() {
            stack.push(lo);
        }
        if !hi.is_terminal() {
            stack.push(hi);
        }
    }
    count
}

/// Entry point called by the budgeted twins when
/// `shared_workers >= 2`. Returns `Ok(None)` when the operation is too
/// small to be worth a phase (caller falls through to the sequential
/// twin), `Ok(Some(r))` with the canonical result otherwise.
pub(crate) fn dispatch(
    m: &mut Manager,
    op: SharedOp,
    gov: &ResourceGovernor,
) -> Result<Option<NodeId>, ResourceExhausted> {
    let workers = m.kernel_config().shared_workers;
    debug_assert!(workers >= 2, "dispatch requires a concurrent config");
    let (roots, n) = op.roots();
    if bounded_size(m, &roots[..n], SHARED_SIZE_CUTOFF) < SHARED_SIZE_CUTOFF {
        return Ok(None);
    }
    // Warm top-level results answer for free, preserving the
    // "cache hits succeed under a zero budget" contract of the twins.
    let key = op.seq_cache_key(m);
    if let Some(key) = key {
        if let Some(r) = m.cache.get(key) {
            return Ok(Some(r));
        }
    }
    // One deterministic fault-site crossing per dispatched operation,
    // on the calling thread, before any worker exists.
    gov.fault_site(FaultSite::BddSharedApply)?;
    gov.poll_interrupt()?;
    let r = run(m, op, gov, workers)?;
    if let Some(key) = key {
        // Seed the sequential cache too, so a repeat of this exact
        // call (budgeted or not) is a hit without a phase.
        m.cache.insert(key, r);
    }
    Ok(Some(r))
}

// ---------------------------------------------------------------------
// Phase driver
// ---------------------------------------------------------------------

/// Why a phase stopped early. Panics travel separately (as payloads).
enum PhaseErr {
    Exhausted(ResourceExhausted),
    /// The arena reservation ran out; retry with a bigger one.
    Overflow,
}

enum Outcome {
    Done(NodeId),
    Overflow,
    Err(ResourceExhausted),
}

/// Runs `op` to completion under `workers` threads, growing the arena
/// reservation on overflow. Published nodes and warm cache entries
/// survive a retry, so overflow costs a re-walk, not a recompute.
pub(crate) fn run(
    m: &mut Manager,
    op: SharedOp,
    gov: &ResourceGovernor,
    workers: usize,
) -> Result<NodeId, ResourceExhausted> {
    run_with_reserve(m, op, gov, workers, (m.live_node_count() * 2).max(MIN_RESERVE))
}

fn run_with_reserve(
    m: &mut Manager,
    op: SharedOp,
    gov: &ResourceGovernor,
    workers: usize,
    initial_reserve: usize,
) -> Result<NodeId, ResourceExhausted> {
    if m.shared.cache.is_none() {
        m.shared.cache = Some(Box::new(SharedCache::new(m.kernel_config().cache_bits)));
    }
    let mut reserve = initial_reserve.max(64);
    loop {
        // Node ids are u32 with two reserved sentinels; clamp so the
        // arena can never hand out an id that collides with them.
        let headroom = (SLOT_TOMB as usize - 1).saturating_sub(m.nodes.len());
        reserve = reserve.min(headroom);
        prepare(m, reserve);
        match phase(m, op, gov, workers, reserve) {
            Outcome::Done(r) => return Ok(r),
            Outcome::Err(e) => return Err(e),
            Outcome::Overflow => {
                if reserve >= headroom {
                    // The 32-bit id space itself is exhausted; surface
                    // it as the node ceiling it really is.
                    return Err(ResourceExhausted::Nodes);
                }
                reserve = reserve.saturating_mul(2);
            }
        }
    }
}

/// Pre-phase safe point: reserve arena capacity and size the unique
/// table so that even if every reserved node is published, load stays
/// at or under one half — the bound that keeps concurrent probes
/// short and guarantees an empty slot terminates every probe.
fn prepare(m: &mut Manager, reserve: usize) {
    m.nodes.reserve(reserve);
    let need = (m.unique.occupied + m.unique.tombstones + reserve) * 2;
    let mut target = m.unique.slots.len();
    while target < need {
        target *= 2;
    }
    if target != m.unique.slots.len() {
        // Rehash drops tombstones as a side effect, which also
        // restores the tombstone-free invariant concurrent probing
        // prefers (leftover tombstones are still skipped correctly).
        m.unique.rehash(&m.nodes, target);
    }
}

/// One stop-start concurrent phase. Commits the arena unconditionally
/// — on success, error, overflow, or panic — so every id published to
/// the unique table is backed by an initialized, in-bounds node before
/// anything can observe the manager again.
fn phase(
    m: &mut Manager,
    op: SharedOp,
    gov: &ResourceGovernor,
    workers: usize,
    reserve: usize,
) -> Outcome {
    let base_len = m.nodes.len();
    let cap = base_len + reserve;
    debug_assert!(cap <= m.nodes.capacity());
    let base_live = m.live_node_count();
    let nodes_ptr = m.nodes.as_mut_ptr();
    let slots_ptr = m.unique.slots.as_mut_ptr();
    let slots_mask = m.unique.slots.len() - 1;
    let var2level = m.var2level.clone();
    let level2var = m.level2var.clone();
    let cache: &SharedCache = m.shared.cache.as_deref().expect("cache materialized by run()");

    let ctx = Ctx {
        nodes: nodes_ptr,
        cap,
        base_len,
        base_live,
        slots: slots_ptr,
        slots_mask,
        var2level: &var2level,
        level2var: &level2var,
        cache,
        gov,
        next: AtomicUsize::new(base_len),
        published: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        root_done: AtomicBool::new(false),
        verdict: Mutex::new(None),
        panic: Mutex::new(None),
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        spares: (0..workers).map(|_| AtomicU32::new(u32::MAX)).collect(),
    };

    let root_result = std::thread::scope(|s| {
        for w in 1..workers {
            let ctx = &ctx;
            s.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| worker_loop(ctx, w))) {
                    ctx.record_panic(payload);
                }
            });
        }
        // The calling thread is worker 0: it evaluates the root and
        // thereby also steals, so `shared_workers = N` means N busy
        // threads, not N+1.
        let root = match catch_unwind(AssertUnwindSafe(|| eval(&ctx, 0, op, 0))) {
            Ok(r) => Some(r),
            Err(payload) => {
                ctx.record_panic(payload);
                None
            }
        };
        ctx.root_done.store(true, Ordering::Release);
        root
    });

    // ---- Commit (unconditional) ----
    let next = ctx.next.load(Ordering::Relaxed).min(cap);
    let published = ctx.published.load(Ordering::Relaxed);
    let panic_payload = ctx.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
    let verdict = ctx.verdict.lock().unwrap_or_else(|p| p.into_inner()).take();
    drop(ctx);
    // SAFETY: every index in `base_len..next` was returned exactly once
    // by the arena cursor, and each one below `cap` was written with a
    // whole `Node` before any early return could occur; indices at or
    // above `cap` were never handed out (`next` is clamped). Capacity
    // was reserved in `prepare`.
    unsafe { m.nodes.set_len(next) };
    m.unique.occupied += published;
    let live = m.live_node_count();
    if live > m.peak_live {
        m.peak_live = live;
    }
    let (hits, misses) = m.shared.cache.as_ref().expect("still materialized").drain_counters();
    m.shared.hits += hits;
    m.shared.misses += misses;

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    match verdict {
        Some(PhaseErr::Exhausted(e)) => Outcome::Err(e),
        Some(PhaseErr::Overflow) => Outcome::Overflow,
        None => {
            let root = root_result
                .expect("panic payloads were rethrown above")
                .expect("a phase only stops early with a verdict or a panic");
            Outcome::Done(root)
        }
    }
}

// ---------------------------------------------------------------------
// Phase context: the frozen world the workers see
// ---------------------------------------------------------------------

/// Unwind token: the phase is stopping (budget, cancel, overflow, or a
/// sibling's panic). Carries no data — the cause lives in the phase
/// verdict, recorded by whichever worker stopped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stopped;

const TASK_OPEN: u8 = 0;
const TASK_CLAIMED: u8 = 1;
const TASK_DONE: u8 = 2;

/// A forked `hi`-cofactor computation. `state` moves OPEN → CLAIMED →
/// DONE; `result` is written before the DONE store (Release) and read
/// after a DONE load (Acquire). A task abandoned by an unwinding
/// worker stays CLAIMED forever — waiters are rescued by the stop
/// flag, which is always raised before an unwind begins.
struct Task {
    op: SharedOp,
    depth: u32,
    state: AtomicU8,
    result: AtomicU32,
}

struct Ctx<'a> {
    nodes: *mut Node,
    cap: usize,
    base_len: usize,
    base_live: usize,
    slots: *mut u32,
    slots_mask: usize,
    var2level: &'a [u32],
    level2var: &'a [u32],
    cache: &'a SharedCache,
    gov: &'a ResourceGovernor,
    next: AtomicUsize,
    published: AtomicUsize,
    stop: AtomicBool,
    root_done: AtomicBool,
    verdict: Mutex<Option<PhaseErr>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    queues: Vec<Mutex<VecDeque<Arc<Task>>>>,
    spares: Vec<AtomicU32>,
}

// SAFETY: the raw pointers cover a frozen prefix (read-only for
// everyone) plus an arena tail in which every slot is written by
// exactly one worker (the one the cursor handed it to) before being
// published; cross-thread reads of published nodes are ordered by the
// Acquire/Release pairs on the unique-table slots and task states.
unsafe impl Send for Ctx<'_> {}
unsafe impl Sync for Ctx<'_> {}

impl Ctx<'_> {
    /// A unique-table slot as an atomic. `AtomicU32` is layout- and
    /// ABI-compatible with `u32`, and during a phase every access to
    /// the slot array goes through this view.
    #[inline]
    fn slot(&self, i: usize) -> &AtomicU32 {
        // SAFETY: i is masked into bounds; AtomicU32 has the same
        // size/alignment as u32.
        unsafe { &*(self.slots.add(i) as *const AtomicU32) }
    }

    #[inline]
    fn node(&self, f: NodeId) -> Node {
        // SAFETY: f is either pre-phase (below base_len) or was
        // published/returned to this thread with Acquire ordering, so
        // its slot is initialized and visible.
        unsafe { *self.nodes.add(f.index()) }
    }

    #[inline]
    fn level(&self, f: NodeId) -> u32 {
        let v = self.node(f).var;
        if v == crate::node::TERMINAL_LEVEL {
            crate::node::TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    #[inline]
    fn branches(&self, f: NodeId) -> (NodeId, NodeId) {
        let n = self.node(f);
        (n.lo, n.hi)
    }

    #[inline]
    fn var_at_level(&self, level: u32) -> u32 {
        self.level2var[level as usize]
    }

    /// The cooperative budget/cancel gate, called at every cache-miss
    /// expansion — the same placement as the sequential twins'
    /// `checkpoint`, so the governor's ladder works unchanged inside
    /// the concurrent region.
    #[inline]
    fn check(&self) -> Result<(), Stopped> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(Stopped);
        }
        let live = self.base_live + (self.next.load(Ordering::Relaxed) - self.base_len);
        if let Err(e) = self.gov.checkpoint(live) {
            self.record(PhaseErr::Exhausted(e));
            return Err(Stopped);
        }
        Ok(())
    }

    /// First error wins; the stop flag is raised only after the
    /// verdict is stored, so an unwinding waiter always finds a cause.
    fn record(&self, e: PhaseErr) {
        let mut v = self.verdict.lock().unwrap_or_else(|p| p.into_inner());
        if v.is_none() {
            *v = Some(e);
        }
        drop(v);
        self.stop.store(true, Ordering::Release);
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut p = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if p.is_none() {
            *p = Some(payload);
        }
        drop(p);
        self.stop.store(true, Ordering::Release);
    }

    fn take_spare(&self, w: usize) -> Option<u32> {
        let id = self.spares[w].swap(u32::MAX, Ordering::Relaxed);
        (id != u32::MAX).then_some(id)
    }

    /// Returns a provisional node the CAS race lost. If it was the
    /// most recent allocation, un-bump the cursor (full recycling);
    /// otherwise park it as this worker's spare for the next alloc.
    fn put_spare(&self, w: usize, id: u32) {
        if self
            .next
            .compare_exchange(id as usize + 1, id as usize, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.spares[w].store(id, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Concurrent MK: CAS publish into the unique table
// ---------------------------------------------------------------------

fn mk(ctx: &Ctx, w: usize, var: u32, lo: NodeId, hi: NodeId) -> Result<NodeId, Stopped> {
    if lo == hi {
        return Ok(lo);
    }
    debug_assert!(
        ctx.var2level[var as usize] < ctx.level(lo) && ctx.var2level[var as usize] < ctx.level(hi),
        "ordering violated: node variable must precede both children"
    );
    let mask = ctx.slots_mask;
    let mut i = key_hash(var, lo, hi) as usize & mask;
    loop {
        let slot = ctx.slot(i);
        let s = slot.load(Ordering::Acquire);
        if s == SLOT_EMPTY {
            // Write the node first, publish its index second: any
            // thread that Acquire-loads the id sees a complete node.
            let id = match ctx.take_spare(w) {
                Some(id) => id,
                None => {
                    let idx = ctx.next.fetch_add(1, Ordering::Relaxed);
                    if idx >= ctx.cap {
                        ctx.record(PhaseErr::Overflow);
                        return Err(Stopped);
                    }
                    idx as u32
                }
            };
            // SAFETY: `id` is in the reserved arena tail and owned
            // exclusively by this worker until the CAS below succeeds.
            unsafe { ctx.nodes.add(id as usize).write(Node { var, lo, hi }) };
            match slot.compare_exchange(SLOT_EMPTY, id, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    ctx.published.fetch_add(1, Ordering::Relaxed);
                    return Ok(NodeId(id));
                }
                Err(_) => {
                    // Lost the race: recycle the provisional node and
                    // re-inspect this same slot — the winner may have
                    // published exactly our key.
                    ctx.put_spare(w, id);
                    continue;
                }
            }
        }
        if s != SLOT_TOMB && ctx.node(NodeId(s)).key() == (var, lo, hi) {
            return Ok(NodeId(s));
        }
        // Tombstones are skipped, never claimed: a concurrent claim
        // would race the sequential remove-path's accounting.
        i = (i + 1) & mask;
    }
}

// ---------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------

fn fork2(
    ctx: &Ctx,
    w: usize,
    lo_op: SharedOp,
    hi_op: SharedOp,
    depth: u32,
) -> Result<(NodeId, NodeId), Stopped> {
    if depth < SPLIT_DEPTH {
        let task =
            Arc::new(Task { op: hi_op, depth: depth + 1, state: AtomicU8::new(TASK_OPEN), result: AtomicU32::new(0) });
        ctx.queues[w].lock().unwrap_or_else(|p| p.into_inner()).push_back(Arc::clone(&task));
        let lo = eval(ctx, w, lo_op, depth + 1)?;
        let hi = join(ctx, w, &task)?;
        Ok((lo, hi))
    } else {
        let lo = eval(ctx, w, lo_op, depth + 1)?;
        let hi = eval(ctx, w, hi_op, depth + 1)?;
        Ok((lo, hi))
    }
}

/// Claim-or-help join: run the forked task inline if nobody stole it;
/// otherwise keep the core busy stealing other tasks until the thief
/// finishes (or the phase stops).
fn join(ctx: &Ctx, w: usize, task: &Arc<Task>) -> Result<NodeId, Stopped> {
    if task
        .state
        .compare_exchange(TASK_OPEN, TASK_CLAIMED, Ordering::Acquire, Ordering::Relaxed)
        .is_ok()
    {
        // Still ours. The deque may still hold the Arc; steals skip
        // non-OPEN tasks, so that stale entry is inert.
        let r = eval(ctx, w, task.op, task.depth)?;
        task.result.store(r.0, Ordering::Relaxed);
        task.state.store(TASK_DONE, Ordering::Release);
        return Ok(r);
    }
    loop {
        if task.state.load(Ordering::Acquire) == TASK_DONE {
            return Ok(NodeId(task.result.load(Ordering::Relaxed)));
        }
        if ctx.stop.load(Ordering::Relaxed) {
            // The thief that owns our task is unwinding (stop is set
            // before any worker abandons a claimed task), so waiting
            // longer cannot succeed.
            return Err(Stopped);
        }
        match steal(ctx, w) {
            Some(other) => run_task(ctx, w, &other),
            None => std::thread::yield_now(),
        }
    }
}

/// Pops a runnable task: own deque LIFO (locality), others FIFO
/// (steal the oldest, largest-grained work). Claiming happens inside
/// the deque lock via the state CAS, so a task runs exactly once.
fn steal(ctx: &Ctx, w: usize) -> Option<Arc<Task>> {
    let n = ctx.queues.len();
    for d in 0..n {
        let mut q = ctx.queues[(w + d) % n].lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let t = if d == 0 { q.pop_back() } else { q.pop_front() };
            match t {
                Some(t) => {
                    if t.state
                        .compare_exchange(TASK_OPEN, TASK_CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        return Some(t);
                    }
                    // Already claimed elsewhere (owner join) or done:
                    // drop the stale entry, keep draining this deque.
                }
                None => break,
            }
        }
    }
    None
}

fn run_task(ctx: &Ctx, w: usize, task: &Task) {
    if let Ok(r) = eval(ctx, w, task.op, task.depth) {
        task.result.store(r.0, Ordering::Relaxed);
        task.state.store(TASK_DONE, Ordering::Release);
    }
    // On Err the stop flag is already set; the task stays CLAIMED and
    // every waiter bails out through its stop check.
}

fn worker_loop(ctx: &Ctx, w: usize) {
    loop {
        if ctx.root_done.load(Ordering::Acquire) {
            return;
        }
        match steal(ctx, w) {
            Some(task) => run_task(ctx, w, &task),
            None => std::thread::yield_now(),
        }
    }
}

// ---------------------------------------------------------------------
// Concurrent evaluation — mirrors the sequential twins step for step
// ---------------------------------------------------------------------

fn eval(ctx: &Ctx, w: usize, op: SharedOp, depth: u32) -> Result<NodeId, Stopped> {
    match op {
        SharedOp::Not(f) => eval_not(ctx, w, f),
        SharedOp::And(f, g) => eval_binary(ctx, w, Op::And, f, g, depth),
        SharedOp::Or(f, g) => eval_binary(ctx, w, Op::Or, f, g, depth),
        SharedOp::Xor(f, g) => eval_binary(ctx, w, Op::Xor, f, g, depth),
        SharedOp::Ite(f, g, h) => eval_ite(ctx, w, f, g, h, depth),
        SharedOp::Exists(f, c) => eval_quant(ctx, w, Op::Exists, f, c, depth),
        SharedOp::Forall(f, c) => eval_quant(ctx, w, Op::Forall, f, c, depth),
        SharedOp::AndExists(f, g, c) => eval_and_exists(ctx, w, f, g, c, depth),
    }
}

fn eval_not(ctx: &Ctx, w: usize, f: NodeId) -> Result<NodeId, Stopped> {
    if f.is_false() {
        return Ok(NodeId::TRUE);
    }
    if f.is_true() {
        return Ok(NodeId::FALSE);
    }
    let key = (Op::Not, f.0, 0, 0);
    if let Some(r) = ctx.cache.get(key) {
        return Ok(r);
    }
    ctx.check()?;
    let n = ctx.node(f);
    let lo = eval_not(ctx, w, n.lo)?;
    let hi = eval_not(ctx, w, n.hi)?;
    let r = mk(ctx, w, n.var, lo, hi)?;
    ctx.cache.insert(key, r);
    Ok(r)
}

fn eval_binary(
    ctx: &Ctx,
    w: usize,
    op: Op,
    f: NodeId,
    g: NodeId,
    depth: u32,
) -> Result<NodeId, Stopped> {
    // Terminal shortcuts, identical to the sequential twins.
    match op {
        Op::And => {
            if f == g {
                return Ok(f);
            }
            if f.is_false() || g.is_false() {
                return Ok(NodeId::FALSE);
            }
            if f.is_true() {
                return Ok(g);
            }
            if g.is_true() {
                return Ok(f);
            }
        }
        Op::Or => {
            if f == g {
                return Ok(f);
            }
            if f.is_true() || g.is_true() {
                return Ok(NodeId::TRUE);
            }
            if f.is_false() {
                return Ok(g);
            }
            if g.is_false() {
                return Ok(f);
            }
        }
        Op::Xor => {
            if f == g {
                return Ok(NodeId::FALSE);
            }
            if f.is_false() {
                return Ok(g);
            }
            if g.is_false() {
                return Ok(f);
            }
            if f.is_true() {
                return eval_not(ctx, w, g);
            }
            if g.is_true() {
                return eval_not(ctx, w, f);
            }
        }
        _ => unreachable!("eval_binary only handles AND/OR/XOR"),
    }
    let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
    let key = (op, a.0, b.0, 0);
    if let Some(r) = ctx.cache.get(key) {
        return Ok(r);
    }
    ctx.check()?;
    let (la, lb) = (ctx.level(a), ctx.level(b));
    let top = la.min(lb);
    let (a0, a1) = if la == top { ctx.branches(a) } else { (a, a) };
    let (b0, b1) = if lb == top { ctx.branches(b) } else { (b, b) };
    let (lo_op, hi_op) = match op {
        Op::And => (SharedOp::And(a0, b0), SharedOp::And(a1, b1)),
        Op::Or => (SharedOp::Or(a0, b0), SharedOp::Or(a1, b1)),
        Op::Xor => (SharedOp::Xor(a0, b0), SharedOp::Xor(a1, b1)),
        _ => unreachable!(),
    };
    let (lo, hi) = fork2(ctx, w, lo_op, hi_op, depth)?;
    let var = ctx.var_at_level(top);
    let r = mk(ctx, w, var, lo, hi)?;
    ctx.cache.insert(key, r);
    Ok(r)
}

fn eval_ite(
    ctx: &Ctx,
    w: usize,
    f: NodeId,
    g: NodeId,
    h: NodeId,
    depth: u32,
) -> Result<NodeId, Stopped> {
    if f.is_true() {
        return Ok(g);
    }
    if f.is_false() {
        return Ok(h);
    }
    if g == h {
        return Ok(g);
    }
    if g.is_true() && h.is_false() {
        return Ok(f);
    }
    if g.is_false() && h.is_true() {
        return eval_not(ctx, w, f);
    }
    let key = (Op::Ite, f.0, g.0, h.0);
    if let Some(r) = ctx.cache.get(key) {
        return Ok(r);
    }
    ctx.check()?;
    let top = ctx.level(f).min(ctx.level(g)).min(ctx.level(h));
    let (f0, f1) = if ctx.level(f) == top { ctx.branches(f) } else { (f, f) };
    let (g0, g1) = if ctx.level(g) == top { ctx.branches(g) } else { (g, g) };
    let (h0, h1) = if ctx.level(h) == top { ctx.branches(h) } else { (h, h) };
    let (lo, hi) =
        fork2(ctx, w, SharedOp::Ite(f0, g0, h0), SharedOp::Ite(f1, g1, h1), depth)?;
    let var = ctx.var_at_level(top);
    let r = mk(ctx, w, var, lo, hi)?;
    ctx.cache.insert(key, r);
    Ok(r)
}

fn eval_quant(
    ctx: &Ctx,
    w: usize,
    qop: Op,
    f: NodeId,
    cube: NodeId,
    depth: u32,
) -> Result<NodeId, Stopped> {
    if f.is_terminal() || cube.is_true() {
        return Ok(f);
    }
    debug_assert!(!cube.is_false(), "quantification cube must be a positive cube");
    let mut cube = cube;
    let f_level = ctx.level(f);
    while !cube.is_true() && ctx.level(cube) < f_level {
        cube = ctx.branches(cube).1;
    }
    if cube.is_true() {
        return Ok(f);
    }
    let key = (qop, f.0, cube.0, 0);
    if let Some(r) = ctx.cache.get(key) {
        return Ok(r);
    }
    ctx.check()?;
    let (f0, f1) = ctx.branches(f);
    let fvar = ctx.node(f).var;
    let quant = |f: NodeId, c: NodeId| match qop {
        Op::Exists => SharedOp::Exists(f, c),
        Op::Forall => SharedOp::Forall(f, c),
        _ => unreachable!(),
    };
    let r = if ctx.level(cube) == f_level {
        let rest = ctx.branches(cube).1;
        let (lo, hi) = fork2(ctx, w, quant(f0, rest), quant(f1, rest), depth)?;
        match qop {
            Op::Exists => eval_binary(ctx, w, Op::Or, lo, hi, depth)?,
            Op::Forall => eval_binary(ctx, w, Op::And, lo, hi, depth)?,
            _ => unreachable!(),
        }
    } else {
        let (lo, hi) = fork2(ctx, w, quant(f0, cube), quant(f1, cube), depth)?;
        mk(ctx, w, fvar, lo, hi)?
    };
    ctx.cache.insert(key, r);
    Ok(r)
}

fn eval_and_exists(
    ctx: &Ctx,
    w: usize,
    f: NodeId,
    g: NodeId,
    cube: NodeId,
    depth: u32,
) -> Result<NodeId, Stopped> {
    if f.is_false() || g.is_false() {
        return Ok(NodeId::FALSE);
    }
    if f.is_true() && g.is_true() {
        return Ok(NodeId::TRUE);
    }
    if cube.is_true() {
        return eval_binary(ctx, w, Op::And, f, g, depth);
    }
    if f.is_true() {
        return eval_quant(ctx, w, Op::Exists, g, cube, depth);
    }
    if g.is_true() {
        return eval_quant(ctx, w, Op::Exists, f, cube, depth);
    }
    let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
    let key = (Op::Exists, a.0, b.0, cube.0);
    if let Some(r) = ctx.cache.get(key) {
        return Ok(r);
    }
    ctx.check()?;
    let top = ctx.level(a).min(ctx.level(b));
    let mut cube_here = cube;
    while !cube_here.is_true() && ctx.level(cube_here) < top {
        cube_here = ctx.branches(cube_here).1;
    }
    let (a0, a1) = if ctx.level(a) == top { ctx.branches(a) } else { (a, a) };
    let (b0, b1) = if ctx.level(b) == top { ctx.branches(b) } else { (b, b) };
    let r = if !cube_here.is_true() && ctx.level(cube_here) == top {
        let rest = ctx.branches(cube_here).1;
        if depth < SPLIT_DEPTH {
            // Forked: compute both cofactors concurrently. The
            // sequential early-exit (skip `hi` when `lo` is ⊤) is a
            // latency trick, not a semantic one — or(⊤, hi) is ⊤
            // either way, so the canonical result is identical.
            let (lo, hi) =
                fork2(ctx, w, SharedOp::AndExists(a0, b0, rest), SharedOp::AndExists(a1, b1, rest), depth)?;
            eval_binary(ctx, w, Op::Or, lo, hi, depth)?
        } else {
            let lo = eval_and_exists(ctx, w, a0, b0, rest, depth + 1)?;
            if lo.is_true() {
                NodeId::TRUE
            } else {
                let hi = eval_and_exists(ctx, w, a1, b1, rest, depth + 1)?;
                eval_binary(ctx, w, Op::Or, lo, hi, depth)?
            }
        }
    } else {
        let (lo, hi) = fork2(
            ctx,
            w,
            SharedOp::AndExists(a0, b0, cube_here),
            SharedOp::AndExists(a1, b1, cube_here),
            depth,
        )?;
        let var = ctx.var_at_level(top);
        mk(ctx, w, var, lo, hi)?
    };
    ctx.cache.insert(key, r);
    Ok(r)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{FaultKind, FaultPlan, ResourceGovernor};
    use crate::VarId;

    /// A function family big enough to exercise real recursion:
    /// pairwise-AND terms folded with XOR over a window of variables.
    fn ripple(m: &mut Manager, vars: &[NodeId]) -> NodeId {
        let mut f = vars[0];
        for w in vars.windows(2) {
            let t = m.and(w[0], w[1]);
            f = m.xor(f, t);
        }
        f
    }

    fn setup(n: usize) -> (Manager, Vec<NodeId>) {
        let mut m = Manager::with_kernel_config(crate::KernelConfig {
            auto_gc: false,
            ..Default::default()
        });
        let vars = m.new_vars(n);
        (m, vars)
    }

    /// Symmetric threshold ("at least k of these n ones"): its BDD has
    /// Θ(n·k) nodes regardless of order, so it reliably clears the
    /// dispatch size gate without an exponential build cost.
    fn threshold(m: &mut Manager, vars: &[NodeId], k: usize) -> NodeId {
        let mut next: Vec<NodeId> =
            (0..=k).map(|c| if c == 0 { NodeId::TRUE } else { NodeId::FALSE }).collect();
        for &x in vars.iter().rev() {
            let cur: Vec<NodeId> = (0..=k)
                .map(|c| if c == 0 { NodeId::TRUE } else { m.ite(x, next[c - 1], next[c]) })
                .collect();
            next = cur;
        }
        next[k]
    }

    #[test]
    fn shared_results_are_canonical_per_op() {
        for workers in [2, 4] {
            let gov = ResourceGovernor::unlimited();
            let (mut m, vars) = setup(16);
            let f = ripple(&mut m, &vars[..10]);
            let g = ripple(&mut m, &vars[6..]);
            let cube = m.cube(&[VarId(2), VarId(5), VarId(9)]);

            let shared_and = run(&mut m, SharedOp::And(f, g), &gov, workers).unwrap();
            assert_eq!(shared_and, m.and(f, g), "AND canonical @ {workers} workers");
            let shared_or = run(&mut m, SharedOp::Or(f, g), &gov, workers).unwrap();
            assert_eq!(shared_or, m.or(f, g), "OR canonical @ {workers} workers");
            let shared_xor = run(&mut m, SharedOp::Xor(f, g), &gov, workers).unwrap();
            assert_eq!(shared_xor, m.xor(f, g), "XOR canonical @ {workers} workers");
            let shared_ite = run(&mut m, SharedOp::Ite(f, g, vars[0]), &gov, workers).unwrap();
            assert_eq!(shared_ite, m.ite(f, g, vars[0]), "ITE canonical @ {workers} workers");
            let shared_ex = run(&mut m, SharedOp::Exists(f, cube), &gov, workers).unwrap();
            assert_eq!(shared_ex, m.exists_cube(f, cube), "∃ canonical @ {workers} workers");
            let shared_fa = run(&mut m, SharedOp::Forall(f, cube), &gov, workers).unwrap();
            assert_eq!(shared_fa, m.forall_cube(f, cube), "∀ canonical @ {workers} workers");
            let shared_ae = run(&mut m, SharedOp::AndExists(f, g, cube), &gov, workers).unwrap();
            assert_eq!(
                shared_ae,
                m.and_exists(f, g, cube),
                "AND-∃ canonical @ {workers} workers"
            );
        }
    }

    #[test]
    fn dispatch_declines_small_operands_and_accepts_large_ones() {
        let gov = ResourceGovernor::unlimited();
        let (mut m, vars) = setup(120);
        let small = m.and(vars[0], vars[1]);
        let mut cfg = m.kernel_config();
        cfg.shared_workers = 2;
        m.set_kernel_config(cfg);
        assert_eq!(dispatch(&mut m, SharedOp::And(small, vars[2]), &gov), Ok(None));
        let big = threshold(&mut m, &vars, 60);
        let g = threshold(&mut m, &vars[10..], 40);
        assert!(
            bounded_size(&m, &[big, g], SHARED_SIZE_CUTOFF) >= SHARED_SIZE_CUTOFF,
            "test operands must clear the dispatch gate"
        );
        let r = dispatch(&mut m, SharedOp::And(big, g), &gov).unwrap();
        assert_eq!(r, Some(m.and(big, g)));
    }

    #[test]
    fn overflow_retries_until_the_arena_fits() {
        let gov = ResourceGovernor::unlimited();
        let (mut m, vars) = setup(18);
        let f = ripple(&mut m, &vars[..12]);
        let g = ripple(&mut m, &vars[6..]);
        // A deliberately starved initial reservation: the phase must
        // overflow, commit, double, and finish warm.
        let r = run_with_reserve(&mut m, SharedOp::Xor(f, g), &gov, 3, 64).unwrap();
        assert_eq!(r, m.xor(f, g));
    }

    #[test]
    fn budget_exhaustion_inside_a_phase_unwinds_cleanly() {
        let starved = ResourceGovernor::unlimited().with_step_limit(3);
        let (mut m, vars) = setup(16);
        let f = ripple(&mut m, &vars[..10]);
        let g = ripple(&mut m, &vars[6..]);
        let err = run(&mut m, SharedOp::Xor(f, g), &starved, 4).unwrap_err();
        assert_eq!(err, ResourceExhausted::Steps);
        // The manager is still sound: the same op completes unbudgeted
        // and reuses whatever partial nodes the phase committed.
        let full = m.xor(f, g);
        let fresh = {
            let (mut m2, vars2) = setup(16);
            let f2 = ripple(&mut m2, &vars2[..10]);
            let g2 = ripple(&mut m2, &vars2[6..]);
            let r2 = m2.xor(f2, g2);
            (m2.size(r2), m2.sat_count(r2, 16))
        };
        assert_eq!((m.size(full), m.sat_count(full, 16)), fresh);
    }

    #[test]
    fn pre_raised_cancel_stops_the_phase() {
        let gov = ResourceGovernor::unlimited();
        gov.cancel_handle().cancel();
        let (mut m, vars) = setup(14);
        let f = ripple(&mut m, &vars[..9]);
        let g = ripple(&mut m, &vars[5..]);
        let err = run(&mut m, SharedOp::And(f, g), &gov, 4).unwrap_err();
        assert_eq!(err, ResourceExhausted::Cancelled);
    }

    #[test]
    fn cancellation_mid_phase_unwinds_every_worker() {
        // Cancel from an outside thread while 4 workers are mid-steal;
        // the phase must return Cancelled (not hang, not panic) and
        // leave the manager usable.
        let gov = ResourceGovernor::unlimited();
        let handle = gov.cancel_handle();
        let (mut m, vars) = setup(22);
        let f = ripple(&mut m, &vars[..14]);
        let g = ripple(&mut m, &vars[8..]);
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(200));
            handle.cancel();
        });
        let result = run(&mut m, SharedOp::Xor(f, g), &gov, 4);
        canceller.join().unwrap();
        match result {
            Ok(r) => assert_eq!(r, m.xor(f, g), "finished before the cancel landed"),
            Err(e) => {
                assert_eq!(e, ResourceExhausted::Cancelled);
                // Post-cancel the manager still computes correctly.
                let r = m.xor(f, g);
                assert!(!r.is_terminal());
            }
        }
    }

    #[test]
    fn worker_panic_is_rethrown_after_commit_and_manager_survives() {
        let plan = std::sync::Arc::new(
            FaultPlan::new(7).with_rule(FaultSite::BddApply, 5, FaultKind::Panic),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        let (mut m, vars) = setup(16);
        let f = ripple(&mut m, &vars[..10]);
        let g = ripple(&mut m, &vars[6..]);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&mut m, SharedOp::And(f, g), &gov, 4)
        }));
        assert!(caught.is_err(), "the injected panic must surface on the calling thread");
        // The phase committed before rethrowing: the manager is
        // structurally sound and finishes the op on a clean governor.
        let clean = ResourceGovernor::unlimited();
        let r = run(&mut m, SharedOp::And(f, g), &clean, 4).unwrap();
        assert_eq!(r, m.and(f, g));
    }

    #[test]
    fn stats_fold_in_shared_cache_counters() {
        let gov = ResourceGovernor::unlimited();
        let (mut m, vars) = setup(16);
        let f = ripple(&mut m, &vars[..10]);
        let g = ripple(&mut m, &vars[6..]);
        let before = m.stats();
        let _ = run(&mut m, SharedOp::And(f, g), &gov, 2).unwrap();
        let after = m.stats();
        assert!(
            after.cache_misses > before.cache_misses,
            "a cold phase must record shared-cache misses in ManagerStats"
        );
        // Re-running the identical op is answered from the shared
        // cache at the root: hits must move.
        let _ = run(&mut m, SharedOp::And(f, g), &gov, 2).unwrap();
        assert!(m.stats().cache_hits > after.cache_hits);
    }

    #[test]
    fn seqlock_cache_roundtrip_and_clear() {
        let mut cache = SharedCache::new(12);
        let key = (Op::And, 17, 42, 0);
        assert_eq!(cache.get(key), None);
        cache.insert(key, NodeId(99));
        assert_eq!(cache.get(key), Some(NodeId(99)));
        cache.clear();
        assert_eq!(cache.get(key), None);
        let (hits, misses) = cache.drain_counters();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(cache.drain_counters(), (0, 0));
    }

    #[test]
    fn fault_site_crossing_is_deterministic_per_dispatch() {
        // A Cancel rule on the first bdd.shared_apply crossing must
        // fire on the coordinator before any worker spawns, no matter
        // the worker count.
        for workers in [2, 8] {
            let plan = std::sync::Arc::new(
                FaultPlan::new(3).with_rule(FaultSite::BddSharedApply, 1, FaultKind::Cancel),
            );
            let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
            let (mut m, vars) = setup(120);
            let f = threshold(&mut m, &vars, 60);
            let g = threshold(&mut m, &vars[10..], 40);
            let mut cfg = m.kernel_config();
            cfg.shared_workers = workers;
            m.set_kernel_config(cfg);
            assert!(bounded_size(&m, &[f, g], SHARED_SIZE_CUTOFF) >= SHARED_SIZE_CUTOFF);
            let err = dispatch(&mut m, SharedOp::And(f, g), &gov).unwrap_err();
            assert_eq!(err, ResourceExhausted::Cancelled);
        }
    }
}
