//! Tests for variable-order indirection: custom static orders,
//! [`Manager::reordered`], and [`Manager::sifted`].

use crate::{Manager, NodeId, VarId};

/// Carry-out of an n-bit ripple adder with operand bits laid out as
/// `a0..a{n-1}, b0..b{n-1}` — the textbook order-sensitivity example:
/// blocked order is exponential, interleaved order is linear.
fn carry(m: &mut Manager, n: usize) -> NodeId {
    let mut c = NodeId::FALSE;
    for i in 0..n {
        let a = m.var(VarId(i as u32));
        let b = m.var(VarId((n + i) as u32));
        let ab = m.and(a, b);
        let x = m.xor(a, b);
        let xc = m.and(x, c);
        c = m.or(ab, xc);
    }
    c
}

fn eval_everywhere_equal(
    ma: &Manager,
    fa: NodeId,
    mb: &Manager,
    fb: NodeId,
    n: usize,
) -> bool {
    (0u32..1 << n).all(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        ma.eval(fa, &assignment) == mb.eval(fb, &assignment)
    })
}

#[test]
fn interleaved_order_shrinks_the_carry() {
    let n = 6;
    let mut blocked = Manager::with_vars(2 * n);
    let f_blocked = carry(&mut blocked, n);
    // Interleaved: a_i at level 2i, b_i at level 2i+1.
    let mut order = Vec::new();
    for i in 0..n {
        order.push(VarId(i as u32));
        order.push(VarId((n + i) as u32));
    }
    let mut interleaved = Manager::with_var_order(&order);
    let f_inter = carry(&mut interleaved, n);
    assert!(
        interleaved.size(f_inter) * 2 < blocked.size(f_blocked),
        "interleaved {} vs blocked {}",
        interleaved.size(f_inter),
        blocked.size(f_blocked)
    );
    assert!(eval_everywhere_equal(&blocked, f_blocked, &interleaved, f_inter, 2 * n));
}

#[test]
fn reordered_preserves_semantics() {
    let n = 4;
    let mut m = Manager::with_vars(2 * n);
    let f = carry(&mut m, n);
    let mut order = Vec::new();
    for i in 0..n {
        order.push(VarId(i as u32));
        order.push(VarId((n + i) as u32));
    }
    let (m2, roots) = m.reordered(&[f], &order);
    assert!(eval_everywhere_equal(&m, f, &m2, roots[0], 2 * n));
    assert!(m2.size(roots[0]) <= m.size(f));
    assert_eq!(m2.variable_order(), order);
}

#[test]
fn sifting_recovers_a_good_order() {
    let n = 5;
    let mut m = Manager::with_vars(2 * n);
    let f = carry(&mut m, n);
    let blocked_size = m.size(f);
    let (sifted, roots) = m.sifted(&[f]);
    let sifted_size = sifted.size(roots[0]);
    assert!(
        sifted_size < blocked_size,
        "sifting must improve the blocked order: {sifted_size} vs {blocked_size}"
    );
    assert!(eval_everywhere_equal(&m, f, &sifted, roots[0], 2 * n));
    // The known-optimal interleaved size is a lower bound; sifting should
    // land in its neighbourhood.
    let mut order = Vec::new();
    for i in 0..n {
        order.push(VarId(i as u32));
        order.push(VarId((n + i) as u32));
    }
    let (inter, iroots) = m.reordered(&[f], &order);
    let optimal = inter.size(iroots[0]);
    assert!(
        sifted_size <= optimal * 2,
        "sifted {sifted_size} too far from interleaved {optimal}"
    );
}

#[test]
fn custom_order_full_op_matrix() {
    // All core operations behave identically under a scrambled order.
    let order: Vec<VarId> = [3u32, 0, 4, 1, 2].into_iter().map(VarId).collect();
    let mut m = Manager::with_var_order(&order);
    let mut id = Manager::with_vars(5);
    let build = |m: &mut Manager| {
        let v: Vec<NodeId> = (0..5u32).map(|i| m.var(VarId(i))).collect();
        let t1 = m.and(v[0], v[1]);
        let t2 = m.xor(v[2], v[3]);
        let t3 = m.or(t1, t2);
        let t4 = m.ite(v[4], t3, t1);
        let q = m.exists(t4, &[VarId(1), VarId(3)]);
        let r = m.forall(t4, &[VarId(0)]);
        let s = m.compose(t4, VarId(2), t1);
        let c = m.restrict(t4, t3);
        (t4, q, r, s, c)
    };
    let (a1, a2, a3, a4, a5) = build(&mut m);
    let (b1, b2, b3, b4, b5) = build(&mut id);
    for (x, y) in [(a1, b1), (a2, b2), (a3, b3), (a4, b4)] {
        for bits in 0u32..32 {
            let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(x, &assignment), id.eval(y, &assignment), "bits {bits:05b}");
        }
    }
    // `restrict` is heuristic — different orders may pick different
    // don't-care completions — so only its contract is order-independent:
    // agreement with f wherever the care set holds.
    for bits in 0u32..32 {
        let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        if m.eval(a3, &assignment) {
            // (t3 was the care set passed to restrict in build().)
        }
        let care_a = {
            let v: Vec<NodeId> = (0..5u32).map(|i| m.var(VarId(i))).collect();
            let t1 = m.and(v[0], v[1]);
            let t2 = m.xor(v[2], v[3]);
            m.or(t1, t2)
        };
        if m.eval(care_a, &assignment) {
            assert_eq!(m.eval(a5, &assignment), m.eval(a1, &assignment));
            assert_eq!(id.eval(b5, &assignment), id.eval(b1, &assignment));
        }
    }
    // sat_count must agree with the identity-order manager.
    assert_eq!(m.sat_count(a1, 5), id.sat_count(b1, 5));
    // cube/minterm respect the scrambled order internally.
    let cube_a = m.cube(&[VarId(0), VarId(4)]);
    let cube_b = id.cube(&[VarId(0), VarId(4)]);
    for bits in 0u32..32 {
        let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        assert_eq!(m.eval(cube_a, &assignment), id.eval(cube_b, &assignment));
    }
}

#[test]
#[should_panic(expected = "duplicate variable")]
fn bad_order_rejected() {
    let _ = Manager::with_var_order(&[VarId(0), VarId(0), VarId(1)]);
}

#[test]
fn combinatorics_under_custom_order() {
    use crate::combin;
    let order: Vec<VarId> = [2u32, 0, 3, 1].into_iter().map(VarId).collect();
    let mut m = Manager::with_var_order(&order);
    let vars: Vec<VarId> = (0..4).map(VarId).collect();
    for k in 0..=4usize {
        let w = combin::weight_exactly(&mut m, &vars, k);
        let expect = [1u128, 4, 6, 4, 1][k];
        assert_eq!(m.sat_count(w, 4), expect, "k={k}");
    }
}
