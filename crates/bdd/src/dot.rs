//! Graphviz DOT export for debugging and documentation figures.

use crate::{Manager, NodeId};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the diagram rooted at `roots` in Graphviz DOT syntax.
///
/// Each root gets a labelled entry arrow; dashed edges are `lo` (variable
/// = 0) branches, solid edges are `hi` branches. Pipe the output through
/// `dot -Tsvg` to visualize.
///
/// # Example
///
/// ```
/// use symbi_bdd::{dot, Manager};
/// let mut m = Manager::new();
/// let a = m.new_var();
/// let b = m.new_var();
/// let f = m.and(a, b);
/// let text = dot::to_dot(&m, &[("f", f)]);
/// assert!(text.contains("digraph"));
/// ```
pub fn to_dot(m: &Manager, roots: &[(&str, NodeId)]) -> String {
    let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
    out.push_str("  node0 [label=\"0\", shape=box];\n");
    out.push_str("  node1 [label=\"1\", shape=box];\n");
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for (name, root) in roots {
        let _ = writeln!(out, "  root_{name} [label=\"{name}\", shape=plaintext];");
        let _ = writeln!(out, "  root_{name} -> node{};", root.index());
        stack.push(*root);
    }
    while let Some(n) = stack.pop() {
        if n.is_terminal() || !seen.insert(n) {
            continue;
        }
        let var = m.top_var(n).expect("non-terminal has a variable");
        let (lo, hi) = m.branches(n);
        let _ = writeln!(out, "  node{} [label=\"{var}\", shape=circle];", n.index());
        let _ = writeln!(out, "  node{} -> node{} [style=dashed];", n.index(), lo.index());
        let _ = writeln!(out, "  node{} -> node{};", n.index(), hi.index());
        stack.push(lo);
        stack.push(hi);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let f = m.xor(a, b);
        let text = to_dot(&m, &[("f", f)]);
        assert!(text.starts_with("digraph"));
        assert!(text.contains("root_f"));
        // XOR of two vars: 3 internal nodes.
        assert_eq!(text.matches("shape=circle").count(), 3);
        assert!(text.contains("style=dashed"));
    }

    #[test]
    fn terminal_root_is_legal() {
        let m = Manager::new();
        let text = to_dot(&m, &[("t", NodeId::TRUE)]);
        assert!(text.contains("root_t -> node1"));
    }
}
