//! The Coudert–Madre `constrain` operator (generalized cofactor).
//!
//! `constrain(f, c)` — written `f ↓ c` — maps every point outside the
//! care set `c` to the *nearest* care point under the variable-order
//! metric and evaluates `f` there. Like [`Manager::restrict`] it
//! guarantees `constrain(f, c) · c = f · c`, but it is a true cofactor
//! generalization: `constrain(f, x) = f|ₓ`, it distributes over
//! conjunction (`(f·g) ↓ c = (f ↓ c) · (g ↓ c)`), and it commutes with
//! existential quantification of variables outside `supp(c)`. Those
//! algebraic properties are what let an image computation replace each
//! transition-relation cluster `Tᵢ` by `Tᵢ ↓ F` while still conjoining
//! the frontier `F`: the products agree wherever `F` holds and both
//! vanish elsewhere.
//!
//! The price over `restrict`: when `c` tests a variable above `f`'s
//! top, `constrain` *branches* on it instead of or-merging the care
//! branches, so the result can gain support variables from `c`. Use
//! `restrict` to pick one small representative of an interval; use
//! `constrain` when the algebraic identities matter (image
//! computation, frontier-simplified fixpoints).

use crate::manager::Op;
use crate::{Manager, NodeId};

impl Manager {
    /// Coudert–Madre generalized cofactor of `f` by the care set `care`.
    ///
    /// Guarantees `constrain(f, c) · c = f · c`; outside the care set
    /// the result takes `f`'s value at the nearest care point (nearest
    /// in the variable-order metric — the classic definition).
    /// `constrain(f, 0)` is defined as `f`, mirroring
    /// [`Manager::restrict`].
    pub fn constrain(&mut self, f: NodeId, care: NodeId) -> NodeId {
        if care.is_false() {
            return f;
        }
        self.constrain_rec(f, care)
    }

    fn constrain_rec(&mut self, f: NodeId, care: NodeId) -> NodeId {
        if f.is_terminal() || care.is_true() {
            return f;
        }
        debug_assert!(!care.is_false(), "inner care set cannot be empty");
        if f == care {
            return NodeId::TRUE;
        }
        let key = (Op::Constrain, f.0, care.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let lf = self.level(f);
        let lc = self.level(care);
        let top = lf.min(lc);
        let (c0, c1) = if lc == top { self.branches(care) } else { (care, care) };
        let (f0, f1) = if lf == top { self.branches(f) } else { (f, f) };
        let r = if c0.is_false() {
            // Every care point sets the top variable: points with it
            // clear are mapped across, so the variable test disappears.
            self.constrain_rec(f1, c1)
        } else if c1.is_false() {
            self.constrain_rec(f0, c0)
        } else {
            // Both care branches are non-empty: branch on the top
            // variable even when f ignores it (this is where the result
            // may gain support from `care` — the cost of keeping the
            // conjunction/quantification identities exact).
            let lo = self.constrain_rec(f0, c0);
            let hi = self.constrain_rec(f1, c1);
            let var = self.var_at_level(top);
            self.mk(var, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    /// A structured family of 3-var functions for exhaustive contracts.
    fn family(m: &mut Manager, vs: &[NodeId]) -> Vec<NodeId> {
        let mut funcs = vec![NodeId::FALSE, NodeId::TRUE];
        for &v in vs {
            funcs.push(v);
            let nv = m.not(v);
            funcs.push(nv);
        }
        let x = m.xor(vs[0], vs[1]);
        let a = m.and(vs[1], vs[2]);
        let o = m.or(vs[0], vs[2]);
        let xa = m.and(x, vs[2]);
        let oo = m.or(x, a);
        funcs.extend([x, a, o, xa, oo]);
        funcs
    }

    #[test]
    fn agrees_on_care_set_exhaustive() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let funcs = family(&mut m, &vs);
        for &f in &funcs {
            for &care in &funcs {
                if care.is_false() {
                    continue;
                }
                let r = m.constrain(f, care);
                let lhs = m.and(r, care);
                let rhs = m.and(f, care);
                assert_eq!(lhs, rhs, "f={f}, care={care}");
            }
        }
        let _ = VarId(0);
    }

    #[test]
    fn full_and_empty_care_are_identity() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let f = m.xor(vs[0], vs[2]);
        assert_eq!(m.constrain(f, NodeId::TRUE), f);
        assert_eq!(m.constrain(f, NodeId::FALSE), f);
    }

    #[test]
    fn literal_care_is_cofactor() {
        // constrain by a literal is exactly the Shannon cofactor.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let x = m.xor(vs[1], vs[2]);
        let f = m.and(vs[0], x);
        let pos = m.constrain(f, vs[0]);
        assert_eq!(pos, m.cofactor(f, VarId(0), true));
        let n0 = m.not(vs[0]);
        let neg = m.constrain(f, n0);
        assert_eq!(neg, m.cofactor(f, VarId(0), false));
    }

    #[test]
    fn constrain_by_itself_is_true() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let f = m.or(ab, vs[2]);
        assert_eq!(m.constrain(f, f), NodeId::TRUE);
    }

    #[test]
    fn distributes_over_conjunction() {
        // (f·g) ↓ c = (f ↓ c) · (g ↓ c) — the identity image clustering
        // relies on; restrict does NOT satisfy it in general.
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let funcs = family(&mut m, &vs[..3]);
        let cares = [m.or(vs[0], vs[3]), m.xor(vs[1], vs[3]), vs[2]];
        for &f in &funcs {
            for &g in &funcs {
                for &c in &cares {
                    let fg = m.and(f, g);
                    let lhs = m.constrain(fg, c);
                    let rf = m.constrain(f, c);
                    let rg = m.constrain(g, c);
                    let rhs = m.and(rf, rg);
                    assert_eq!(lhs, rhs, "f={f} g={g} c={c}");
                }
            }
        }
    }

    #[test]
    fn can_gain_support_from_care() {
        // f ignores v0; care links v0 to v1, so f ↓ c tests v0 — the
        // documented difference from restrict.
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = vs[1];
        let care = m.xor(vs[0], vs[1]);
        let r = m.constrain(f, care);
        // On the care set v1 = ¬v0, so the nearest-point map yields ¬v0.
        assert_eq!(r, m.not(vs[0]));
        assert!(m.support(r).contains(&VarId(0)));
    }
}
