//! Variable substitution: single-variable composition and simultaneous
//! vector composition.

use crate::hash::FxHashMap;
use crate::manager::Op;
use crate::{Manager, NodeId, VarId};

/// Handle to a substitution table registered with
/// [`Manager::register_substitution`]; used by [`Manager::vector_compose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubstitutionId(pub(crate) u32);

impl Manager {
    /// Substitutes function `g` for variable `v` in `f`:
    /// `f[v ← g] = g·f|v=1 + ¬g·f|v=0`.
    pub fn compose(&mut self, f: NodeId, v: VarId, g: NodeId) -> NodeId {
        if f.is_terminal() || self.level(f) > self.level_of(v) as u32 {
            // Ordered: v cannot occur below a deeper top variable.
            return f;
        }
        let key = (Op::Compose, f.0, v.0, g.0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let node = self.node(f);
        let r = if node.var == v.0 {
            self.ite(g, node.hi, node.lo)
        } else {
            let lo = self.compose(node.lo, v, g);
            let hi = self.compose(node.hi, v, g);
            let top = self.var(VarId(node.var));
            self.ite(top, hi, lo)
        };
        self.cache.insert(key, r);
        r
    }

    /// Registers a simultaneous substitution `{vᵢ ← gᵢ}` for use with
    /// [`Manager::vector_compose`]. Registering once and reusing the id
    /// lets repeated compositions share computed-table entries.
    pub fn register_substitution(&mut self, pairs: &[(VarId, NodeId)]) -> SubstitutionId {
        let mut map = FxHashMap::default();
        for &(v, g) in pairs {
            let prev = map.insert(v.0, g);
            debug_assert!(prev.is_none(), "duplicate substitution for {v}");
        }
        let id = SubstitutionId(self.substitutions.len() as u32);
        self.substitutions.push(map);
        id
    }

    /// Simultaneously substitutes all registered pairs into `f`.
    ///
    /// Unlike chains of [`Manager::compose`], the substitution is
    /// *simultaneous*: replacement functions are never themselves rewritten,
    /// which is what the parameterized forms of the paper require
    /// (e.g. `xᵢ ← ITE(cᵢ, xᵢ, yᵢ)` mentions `xᵢ` on the right-hand side).
    pub fn vector_compose(&mut self, f: NodeId, subst: SubstitutionId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let key = (Op::VCompose, f.0, subst.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let node = self.node(f);
        let lo = self.vector_compose(node.lo, subst);
        let hi = self.vector_compose(node.hi, subst);
        let replacement = match self.substitutions[subst.0 as usize].get(&node.var) {
            Some(&g) => g,
            None => self.var(VarId(node.var)),
        };
        let r = self.ite(replacement, hi, lo);
        self.cache.insert(key, r);
        r
    }

    /// Renames variables according to `pairs` (a special case of vector
    /// composition where every target is a variable). Convenience for
    /// present-state/next-state swaps in reachability analysis.
    pub fn rename(&mut self, f: NodeId, pairs: &[(VarId, VarId)]) -> NodeId {
        let subst: Vec<(VarId, NodeId)> =
            pairs.iter().map(|&(v, w)| (v, self.var(w))).collect();
        let id = self.register_substitution(&subst);
        self.vector_compose(f, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_with_constant_is_cofactor() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let f = m.xor(a, b);
        let f1 = m.compose(f, VarId(0), NodeId::TRUE);
        let nb = m.not(b);
        assert_eq!(f1, nb);
    }

    #[test]
    fn compose_substitutes_function() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let f = m.or(vs[0], vs[2]);
        let g = m.and(vs[1], vs[2]);
        // (a + c)[a ← bc] = bc + c = c
        let r = m.compose(f, VarId(0), g);
        assert_eq!(r, vs[2]);
    }

    #[test]
    fn vector_compose_is_simultaneous() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let (a, b) = (vs[0], vs[1]);
        // Swap a and b in a·¬b via simultaneous substitution.
        let nb = m.not(b);
        let f = m.and(a, nb);
        let id = m.register_substitution(&[(VarId(0), b), (VarId(1), a)]);
        let swapped = m.vector_compose(f, id);
        let na = m.not(a);
        let expect = m.and(b, na);
        assert_eq!(swapped, expect);
    }

    #[test]
    fn vector_compose_self_referencing_substitution() {
        // x ← ITE(c, x, y): with c=1 identity, with c=0 substitutes y.
        let mut m = Manager::new();
        let c = m.new_var();
        let x = m.new_var();
        let y = m.new_var();
        let rep = m.ite(c, x, y);
        let id = m.register_substitution(&[(VarId(1), rep)]);
        let f = x; // the function "x"
        let g = m.vector_compose(f, id);
        assert_eq!(g, rep);
        let g_c1 = m.cofactor(g, VarId(0), true);
        let g_c0 = m.cofactor(g, VarId(0), false);
        assert_eq!(g_c1, x);
        assert_eq!(g_c0, y);
    }

    #[test]
    fn rename_swaps_variables() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let f = m.and(vs[0], vs[1]);
        let r = m.rename(f, &[(VarId(0), VarId(2)), (VarId(1), VarId(3))]);
        let expect = m.and(vs[2], vs[3]);
        assert_eq!(r, expect);
    }
}
