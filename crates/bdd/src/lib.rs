//! Reduced ordered binary decision diagrams (ROBDDs) for the `symbi`
//! logic-synthesis suite.
//!
//! This crate is a self-contained BDD package in the tradition of CUDD,
//! providing the substrate for the symbolic bi-decomposition algorithms of
//! Kravets & Mishchenko (DATE 2009). It implements:
//!
//! - a hash-consed, open-addressed unique table with a bounded lossy
//!   computed-table cache ([`Manager`], tunable via [`KernelConfig`]),
//! - mark-and-sweep garbage collection over an explicit root set
//!   ([`Manager::protect`] / [`Ref`]), with auto-GC at safe points
//!   ([`Manager::maybe_gc`]) and order-preserving compaction
//!   ([`Manager::compact`]),
//! - the Boolean connectives and the `ITE` operator,
//! - existential/universal quantification over variable cubes,
//! - variable substitution (single and simultaneous vector composition),
//! - structural analyses: support, node counting, satisfying-assignment
//!   counting and enumeration,
//! - symbolic combinatorics used by the paper's choice subsetting:
//!   weight functions `w_k(c)`, integer encodings, comparison relations
//!   ([`combin`]),
//! - DOT export for debugging ([`dot`]).
//!
//! Variable order defaults to creation order ([`Manager::new_var`]
//! appends at the bottom), but variables and levels are decoupled:
//! [`Manager::with_var_order`] starts from any permutation,
//! [`Manager::reordered`] rebuilds chosen roots under a new order, and
//! [`Manager::sift_in_place`] runs Rudell sifting by adjacent-level
//! swaps without rebuilding. The
//! algorithms in `symbi-core` plan their variable layout up front
//! (interleaving decision and function variables), matching the scales
//! reported in the paper.
//!
//! # Example
//!
//! ```
//! use symbi_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let f = m.or(x, y);
//! let g = m.and(x, y);
//! // x + y is not x & y ...
//! assert_ne!(f, g);
//! // ... but De Morgan holds.
//! let nx = m.not(x);
//! let ny = m.not(y);
//! let h = m.and(nx, ny);
//! let h = m.not(h);
//! assert_eq!(f, h);
//! ```

mod analysis;
mod budgeted;
pub mod combin;
mod compose;
mod constrain;
pub mod dot;
mod governor;
pub mod hash;
pub mod image;
mod manager;
mod node;
pub mod par;
mod quant;
mod restrict;
mod shared;
mod transfer;

pub use governor::{
    CancelHandle, FaultKind, FaultPlan, FaultRule, FaultSite, ResourceExhausted, ResourceGovernor,
    MAX_DEADLINE_OVERSHOOT_STEPS,
};
pub use manager::{KernelConfig, Manager, ManagerStats, Ref, RootSet};
pub use node::{NodeId, VarId};
pub use par::TaskPanic;

#[cfg(test)]
mod tests_reorder;
#[cfg(test)]
mod tests_semantics;
