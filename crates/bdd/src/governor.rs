//! Resource governance for potentially exponential symbolic operations.
//!
//! BDD operations have no useful worst-case bound: a pathological cone
//! can make a single `ite` or image computation diverge. Production BDD
//! packages (CUDD's `*Limit` API family) and modern SAT solvers treat
//! resource-bounded execution as a first-class *result* rather than a
//! crash, and the QBF bi-decomposition line of work relies on per-check
//! timeouts with fallback between engines. [`ResourceGovernor`] is that
//! layer for this workspace: a shared bundle of
//!
//! - a **recursion-step budget** (checked at every cache-miss recursion
//!   step of the budgeted `Manager` ops),
//! - a **live-node ceiling** (total allocated nodes in the manager),
//! - a **wall-clock deadline**, and
//! - a **cooperative cancellation flag** (settable from another thread
//!   through a [`CancelHandle`]).
//!
//! Budgeted operations (`Manager::try_and`, `try_ite`, …) call
//! [`ResourceGovernor::checkpoint`] once per cache-miss step and unwind
//! with [`ResourceExhausted`] the moment any limit trips. Because the
//! budgeted twins share the computed table with their unbudgeted
//! counterparts, work done before exhaustion is not wasted: a retry (or
//! a fallback on a smaller problem) starts from the warm cache.
//!
//! # Sub-budgets
//!
//! [`ResourceGovernor::fork_steps`] creates a child governor with its
//! own (smaller) step budget whose steps *also* charge every ancestor.
//! This is what degradation ladders need: try the expensive symbolic
//! route under a fraction of the remaining budget, and on exhaustion
//! fall back to a cheaper route that still has budget left — while a
//! global cap over everything continues to count.
//!
//! # Example
//!
//! ```
//! use symbi_bdd::{Manager, ResourceGovernor, ResourceExhausted};
//!
//! let mut m = Manager::new();
//! let vars = m.new_vars(8);
//! let gov = ResourceGovernor::unlimited().with_step_limit(2);
//! let result = (1..8).try_fold(vars[0], |acc, i| m.try_xor(acc, vars[i], &gov));
//! assert_eq!(result, Err(ResourceExhausted::Steps));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted operation stopped early.
///
/// Returned by every `try_*` operation. The variants are ordered by how
/// the caller typically reacts: step/node/deadline exhaustion usually
/// triggers a fallback to a cheaper algorithm, while cancellation
/// aborts the whole computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceExhausted {
    /// The recursion-step budget ran out.
    Steps,
    /// The manager grew past the live-node ceiling.
    Nodes,
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceExhausted::Steps => write!(f, "recursion-step budget exhausted"),
            ResourceExhausted::Nodes => write!(f, "live-node ceiling exceeded"),
            ResourceExhausted::Deadline => write!(f, "wall-clock deadline passed"),
            ResourceExhausted::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for ResourceExhausted {}

/// How often (in steps) the deadline is re-read from the system clock.
/// `Instant::now()` costs tens of nanoseconds; amortizing it keeps the
/// per-step overhead of a deadline-only governor to one atomic add.
const DEADLINE_CHECK_PERIOD: u64 = 256;

#[derive(Debug)]
struct Inner {
    /// `u64::MAX` means unlimited.
    step_limit: u64,
    steps: AtomicU64,
    /// `usize::MAX` means unlimited.
    node_limit: usize,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    /// Ancestor whose budget this governor's steps also consume.
    parent: Option<Arc<Inner>>,
    /// Precomputed: false iff the only possible trip is cancellation,
    /// letting `checkpoint` skip all accounting on unlimited governors.
    metered: bool,
}

impl Inner {
    fn charge(&self) -> Result<u64, ResourceExhausted> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.step_limit {
            return Err(ResourceExhausted::Steps);
        }
        Ok(n)
    }
}

/// Cancels the computation driven by a [`ResourceGovernor`] from
/// another thread (or a signal handler). Cheap to clone.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Raises the flag; every governor sharing it fails its next
    /// checkpoint with [`ResourceExhausted::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A shared, cloneable bundle of resource limits. See the
/// [module documentation](self) for semantics.
///
/// `Clone` shares state: all clones observe the same step counter,
/// deadline, and cancellation flag, so a governor can be handed to
/// several phases of a flow and enforce one global budget.
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    inner: Arc<Inner>,
}

impl Default for ResourceGovernor {
    fn default() -> Self {
        ResourceGovernor::unlimited()
    }
}

impl ResourceGovernor {
    fn from_parts(
        step_limit: u64,
        node_limit: usize,
        deadline: Option<Instant>,
        cancel: Arc<AtomicBool>,
        parent: Option<Arc<Inner>>,
    ) -> Self {
        let metered = step_limit != u64::MAX
            || node_limit != usize::MAX
            || deadline.is_some()
            || parent.is_some();
        ResourceGovernor {
            inner: Arc::new(Inner {
                step_limit,
                steps: AtomicU64::new(0),
                node_limit,
                deadline,
                cancel,
                parent,
                metered,
            }),
        }
    }

    /// A governor that never trips (except through its cancel handle).
    /// `checkpoint` on an unlimited governor costs one atomic load.
    pub fn unlimited() -> Self {
        ResourceGovernor::from_parts(
            u64::MAX,
            usize::MAX,
            None,
            Arc::new(AtomicBool::new(false)),
            None,
        )
    }

    /// Replaces the recursion-step budget. Resets the step counter;
    /// intended for configuration before the governor is shared.
    pub fn with_step_limit(self, limit: u64) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            limit,
            inner.node_limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.parent.clone(),
        )
    }

    /// Replaces the live-node ceiling (total allocated nodes in the
    /// manager the budgeted operation runs in).
    pub fn with_node_limit(self, limit: usize) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            inner.step_limit,
            limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.parent.clone(),
        )
    }

    /// Sets the wall-clock deadline to `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            inner.step_limit,
            inner.node_limit,
            Instant::now().checked_add(timeout),
            inner.cancel.clone(),
            inner.parent.clone(),
        )
    }

    /// Creates a child governor with a fresh step budget of `limit`.
    ///
    /// The child shares the cancellation flag, deadline, and node
    /// ceiling, and every step it charges is *also* charged to this
    /// governor (and its ancestors). A degradation ladder gives its
    /// expensive first attempt `fork_steps(remaining / 2)`: if the
    /// attempt exhausts the fork, at least half the parent budget is
    /// still available for the cheaper fallback.
    pub fn fork_steps(&self, limit: u64) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            limit,
            inner.node_limit,
            inner.deadline,
            inner.cancel.clone(),
            Some(self.inner.clone()),
        )
    }

    /// Steps consumed through this governor so far (including steps
    /// charged by forked children).
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// The live-node ceiling; `usize::MAX` if unlimited. Callers layering
    /// their own cap on an inherited governor should keep the tighter of
    /// the two.
    pub fn node_limit(&self) -> usize {
        self.inner.node_limit
    }

    /// Steps left before [`ResourceExhausted::Steps`]; `u64::MAX` if
    /// unlimited. Does not consult ancestors.
    pub fn remaining_steps(&self) -> u64 {
        if self.inner.step_limit == u64::MAX {
            return u64::MAX;
        }
        self.inner.step_limit.saturating_sub(self.steps_used())
    }

    /// A handle that cancels every computation using this governor (or
    /// any clone/fork of it), safe to move to another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle { flag: self.inner.cancel.clone() }
    }

    /// Raises the shared cancellation flag.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the shared cancellation flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Records one unit of work and checks every limit. Budgeted
    /// operations call this once per cache-miss recursion step with the
    /// manager's current total node count.
    ///
    /// Deadline checks are amortized: the clock is read once per
    /// [`DEADLINE_CHECK_PERIOD`] steps (and on the first step), so a
    /// deadline can overshoot by at most that many steps of work.
    #[inline]
    pub fn checkpoint(&self, live_nodes: usize) -> Result<(), ResourceExhausted> {
        let inner = &*self.inner;
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(ResourceExhausted::Cancelled);
        }
        if !inner.metered {
            return Ok(());
        }
        let n = inner.charge()?;
        let mut ancestor = inner.parent.as_ref();
        while let Some(a) = ancestor {
            a.charge()?;
            ancestor = a.parent.as_ref();
        }
        if live_nodes > inner.node_limit {
            return Err(ResourceExhausted::Nodes);
        }
        if let Some(deadline) = inner.deadline {
            if (n == 1 || n % DEADLINE_CHECK_PERIOD == 0) && Instant::now() >= deadline {
                return Err(ResourceExhausted::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let gov = ResourceGovernor::unlimited();
        for _ in 0..10_000 {
            assert_eq!(gov.checkpoint(usize::MAX - 1), Ok(()));
        }
        assert_eq!(gov.steps_used(), 0, "unlimited governor skips accounting");
    }

    #[test]
    fn step_budget_trips_exactly() {
        let gov = ResourceGovernor::unlimited().with_step_limit(5);
        for _ in 0..5 {
            assert_eq!(gov.checkpoint(0), Ok(()));
        }
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Steps));
        assert_eq!(gov.remaining_steps(), 0);
    }

    #[test]
    fn node_ceiling_trips() {
        let gov = ResourceGovernor::unlimited().with_node_limit(100);
        assert_eq!(gov.checkpoint(100), Ok(()));
        assert_eq!(gov.checkpoint(101), Err(ResourceExhausted::Nodes));
    }

    #[test]
    fn deadline_in_the_past_trips_on_first_step() {
        let gov = ResourceGovernor::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Deadline));
    }

    #[test]
    fn cancel_handle_works_across_clones() {
        let gov = ResourceGovernor::unlimited().with_step_limit(1000);
        let clone = gov.clone();
        let handle = gov.cancel_handle();
        assert_eq!(clone.checkpoint(0), Ok(()));
        handle.cancel();
        assert_eq!(clone.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert!(gov.is_cancelled());
    }

    #[test]
    fn fork_charges_parent() {
        let parent = ResourceGovernor::unlimited().with_step_limit(10);
        let child = parent.fork_steps(4);
        for _ in 0..4 {
            assert_eq!(child.checkpoint(0), Ok(()));
        }
        assert_eq!(child.checkpoint(0), Err(ResourceExhausted::Steps));
        // The failed checkpoint still charged the child counter but the
        // parent keeps the 4 successful steps plus the failed attempt.
        assert_eq!(parent.steps_used(), 4);
        assert_eq!(parent.remaining_steps(), 6);
        for _ in 0..6 {
            assert_eq!(parent.checkpoint(0), Ok(()));
        }
        assert_eq!(parent.checkpoint(0), Err(ResourceExhausted::Steps));
    }

    #[test]
    fn fork_shares_cancellation() {
        let parent = ResourceGovernor::unlimited();
        let child = parent.fork_steps(100);
        parent.cancel();
        assert_eq!(child.checkpoint(0), Err(ResourceExhausted::Cancelled));
    }
}
