//! Resource governance for potentially exponential symbolic operations.
//!
//! BDD operations have no useful worst-case bound: a pathological cone
//! can make a single `ite` or image computation diverge. Production BDD
//! packages (CUDD's `*Limit` API family) and modern SAT solvers treat
//! resource-bounded execution as a first-class *result* rather than a
//! crash, and the QBF bi-decomposition line of work relies on per-check
//! timeouts with fallback between engines. [`ResourceGovernor`] is that
//! layer for this workspace: a shared bundle of
//!
//! - a **recursion-step budget** (checked at every cache-miss recursion
//!   step of the budgeted `Manager` ops),
//! - a **live-node ceiling** (total allocated nodes in the manager),
//! - a **wall-clock deadline**, and
//! - a **cooperative cancellation flag** (settable from another thread
//!   through a [`CancelHandle`]).
//!
//! Budgeted operations (`Manager::try_and`, `try_ite`, …) call
//! [`ResourceGovernor::checkpoint`] once per cache-miss step and unwind
//! with [`ResourceExhausted`] the moment any limit trips. Because the
//! budgeted twins share the computed table with their unbudgeted
//! counterparts, work done before exhaustion is not wasted: a retry (or
//! a fallback on a smaller problem) starts from the warm cache.
//!
//! # Sub-budgets
//!
//! [`ResourceGovernor::fork_steps`] creates a child governor with its
//! own (smaller) step budget whose steps *also* charge every ancestor.
//! This is what degradation ladders need: try the expensive symbolic
//! route under a fraction of the remaining budget, and on exhaustion
//! fall back to a cheaper route that still has budget left — while a
//! global cap over everything continues to count.
//!
//! # Example
//!
//! ```
//! use symbi_bdd::{Manager, ResourceGovernor, ResourceExhausted};
//!
//! let mut m = Manager::new();
//! let vars = m.new_vars(8);
//! let gov = ResourceGovernor::unlimited().with_step_limit(2);
//! let result = (1..8).try_fold(vars[0], |acc, i| m.try_xor(acc, vars[i], &gov));
//! assert_eq!(result, Err(ResourceExhausted::Steps));
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted operation stopped early.
///
/// Returned by every `try_*` operation. The variants are ordered by how
/// the caller typically reacts: step/node/deadline exhaustion usually
/// triggers a fallback to a cheaper algorithm, while cancellation
/// aborts the whole computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceExhausted {
    /// The recursion-step budget ran out.
    Steps,
    /// The manager grew past the live-node ceiling.
    Nodes,
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceExhausted::Steps => write!(f, "recursion-step budget exhausted"),
            ResourceExhausted::Nodes => write!(f, "live-node ceiling exceeded"),
            ResourceExhausted::Deadline => write!(f, "wall-clock deadline passed"),
            ResourceExhausted::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for ResourceExhausted {}

/// How often (in steps) the deadline is re-read from the system clock.
/// `Instant::now()` costs tens of nanoseconds; amortizing it keeps the
/// per-step overhead of a deadline-only governor to one atomic add.
const DEADLINE_CHECK_PERIOD: u64 = 256;

/// Upper bound on how many recursion steps a budgeted operation may run
/// past its wall-clock deadline before `checkpoint` observes it. Tests
/// (and the chaos watchdog) key their slack off this constant.
pub const MAX_DEADLINE_OVERSHOOT_STEPS: u64 = DEADLINE_CHECK_PERIOD;

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/// A named fault-injection site in the governed stack.
///
/// Every budgeted `try_*` twin and every GC/reorder safe point crosses
/// exactly one of these sites. A [`FaultPlan`] counts crossings per site
/// and can fire a fault at the Nth crossing, so a chaos sweep can
/// enumerate `(site, occurrence)` cells exhaustively and reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Cache-miss recursion step of a budgeted `Manager` operation
    /// (crossed implicitly by [`ResourceGovernor::checkpoint`]).
    BddApply,
    /// Governed garbage-collection safe point (`Manager::try_maybe_gc`).
    BddGc,
    /// Per-variable excursion boundary of governed sifting
    /// (`Manager::try_sift_in_place`).
    BddSift,
    /// One pairwise cluster-merge attempt in `ImageEngine`.
    ImageCluster,
    /// One per-cluster constrain attempt of the image frontier pass.
    ImageConstrain,
    /// Top of one reachability fixpoint iteration.
    ReachFixpoint,
    /// Top of the CDCL search loop (before unit propagation).
    SatPropagate,
    /// Immediately before a learnt-clause database reduction.
    SatReduceDb,
    /// Start of one synthesis candidate's decomposition attempt.
    SynthDecompose,
    /// Start of one `parallel_map` worker task (ordinal = task index).
    ParTask,
    /// Entry of one portfolio-raced decomposability check (both arms
    /// still ahead; firing here kills the whole race).
    PortfolioRace,
    /// One governed BDD→CNF encoding pass (the Tseitin translation a
    /// governed SAT check or SEC frame performs before solving).
    SatEncode,
    /// Entry of one shared-memory concurrent kernel operation (the
    /// coordinator crosses it exactly once per dispatched apply/ITE/
    /// quantify, before any worker thread is spawned, so crossing
    /// counts stay deterministic under any worker count).
    BddSharedApply,
    /// One SAT-sweeping refinement event: crossed once per pairwise
    /// equivalence query the sweep's persistent solver attempts
    /// (before the budgeted solve), so chaos cells can kill the sweep
    /// mid-refinement and exercise the degrade-to-unswept ladder.
    NetlistSweep,
}

impl FaultSite {
    /// Number of registered sites.
    pub const COUNT: usize = 14;

    /// Every registered site, in registry order. Chaos sweeps iterate
    /// this to enumerate cells; keep it in sync with the enum. New sites
    /// are appended so existing indices (and the cell kinds a seed
    /// derives from them) stay stable across releases.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::BddApply,
        FaultSite::BddGc,
        FaultSite::BddSift,
        FaultSite::ImageCluster,
        FaultSite::ImageConstrain,
        FaultSite::ReachFixpoint,
        FaultSite::SatPropagate,
        FaultSite::SatReduceDb,
        FaultSite::SynthDecompose,
        FaultSite::ParTask,
        FaultSite::PortfolioRace,
        FaultSite::SatEncode,
        FaultSite::BddSharedApply,
        FaultSite::NetlistSweep,
    ];

    /// Stable index into per-site counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSite::BddApply => 0,
            FaultSite::BddGc => 1,
            FaultSite::BddSift => 2,
            FaultSite::ImageCluster => 3,
            FaultSite::ImageConstrain => 4,
            FaultSite::ReachFixpoint => 5,
            FaultSite::SatPropagate => 6,
            FaultSite::SatReduceDb => 7,
            FaultSite::SynthDecompose => 8,
            FaultSite::ParTask => 9,
            FaultSite::PortfolioRace => 10,
            FaultSite::SatEncode => 11,
            FaultSite::BddSharedApply => 12,
            FaultSite::NetlistSweep => 13,
        }
    }

    /// The canonical dotted name used by `--fault-plan` and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::BddApply => "bdd.apply",
            FaultSite::BddGc => "bdd.gc",
            FaultSite::BddSift => "bdd.sift",
            FaultSite::ImageCluster => "image.cluster",
            FaultSite::ImageConstrain => "image.constrain",
            FaultSite::ReachFixpoint => "reach.fixpoint",
            FaultSite::SatPropagate => "sat.propagate",
            FaultSite::SatReduceDb => "sat.reduce_db",
            FaultSite::SynthDecompose => "synth.decompose",
            FaultSite::ParTask => "par.task",
            FaultSite::PortfolioRace => "portfolio.race",
            FaultSite::SatEncode => "sat.encode",
            FaultSite::BddSharedApply => "bdd.shared_apply",
            FaultSite::NetlistSweep => "netlist.sweep",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSite::ALL
            .iter()
            .copied()
            .find(|site| site.as_str() == s)
            .ok_or_else(|| format!("unknown fault site `{s}`"))
    }
}

/// What an injected fault simulates when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Budget exhaustion: the crossing fails with
    /// [`ResourceExhausted::Steps`].
    Budget,
    /// External cancellation: raises the shared cancel flag, then fails
    /// with [`ResourceExhausted::Cancelled`] — every sibling worker
    /// observes the flag at its next checkpoint.
    Cancel,
    /// A worker crash: the crossing panics. Must be absorbed by a
    /// `catch_unwind` isolation boundary (candidate attempt, partition
    /// analysis, or `parallel_map_isolated` task).
    Panic,
    /// Allocation pressure: a refused unique-table growth, surfaced as
    /// [`ResourceExhausted::Nodes`] exactly as a live-node ceiling trip.
    AllocPressure,
}

impl FaultKind {
    /// Every kind, in the order used by seed-derived sweeps.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Budget, FaultKind::Cancel, FaultKind::Panic, FaultKind::AllocPressure];

    /// The canonical name used by `--fault-plan` and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Budget => "budget",
            FaultKind::Cancel => "cancel",
            FaultKind::Panic => "panic",
            FaultKind::AllocPressure => "alloc",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "budget" => Ok(FaultKind::Budget),
            "cancel" => Ok(FaultKind::Cancel),
            "panic" => Ok(FaultKind::Panic),
            "alloc" | "alloc-pressure" => Ok(FaultKind::AllocPressure),
            _ => Err(format!("unknown fault kind `{s}` (budget|cancel|panic|alloc)")),
        }
    }
}

/// One injection rule: fire `kind` at the `occurrence`-th crossing
/// (1-based) of `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Site the rule watches.
    pub site: FaultSite,
    /// 1-based crossing count at which the rule fires.
    pub occurrence: u64,
    /// What firing simulates.
    pub kind: FaultKind,
}

impl FromStr for FaultRule {
    type Err = String;

    /// Parses the CLI syntax `site:occurrence:kind`, e.g.
    /// `image.cluster:2:budget`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, ':');
        let site = parts.next().ok_or("empty fault rule")?.parse::<FaultSite>()?;
        let occurrence = parts
            .next()
            .ok_or_else(|| format!("fault rule `{s}` missing `:occurrence:kind`"))?
            .parse::<u64>()
            .map_err(|e| format!("bad occurrence in `{s}`: {e}"))?;
        if occurrence == 0 {
            return Err(format!("fault rule `{s}`: occurrence is 1-based"));
        }
        let kind =
            parts.next().ok_or_else(|| format!("fault rule `{s}` missing `:kind`"))?.parse()?;
        Ok(FaultRule { site, occurrence, kind })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic, seeded fault-injection plan shared by every clone
/// and fork of a [`ResourceGovernor`].
///
/// The plan keeps one atomic crossing counter per [`FaultSite`]; a
/// crossing whose (1-based) count matches a [`FaultRule`] fires that
/// rule's [`FaultKind`]. Firing is a pure function of the crossing
/// count, so a single-threaded run replays bit-identically, and the
/// `par.task` site — the one crossed concurrently — is matched on the
/// task's input ordinal instead of arrival order to stay deterministic
/// under any worker count.
///
/// A plan with no rules only counts crossings (useful for discovering
/// how many cells a sweep must cover).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    counters: [AtomicU64; FaultSite::COUNT],
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan: counts crossings, never fires.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: AtomicU64::new(0),
        }
    }

    /// Adds an injection rule (builder style, before sharing).
    pub fn with_rule(mut self, site: FaultSite, occurrence: u64, kind: FaultKind) -> Self {
        assert!(occurrence >= 1, "occurrences are 1-based");
        self.rules.push(FaultRule { site, occurrence, kind });
        self
    }

    /// Adds a parsed [`FaultRule`].
    pub fn with_parsed_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The seed this plan (and any sweep built on it) derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Deterministically derives a [`FaultKind`] for a sweep cell from
    /// `(seed, site, occurrence)`. Chaos sweeps use this so one seed
    /// fixes the kind of every cell.
    pub fn derive_kind(seed: u64, site: FaultSite, occurrence: u64) -> FaultKind {
        let h = splitmix64(
            seed ^ (site.index() as u64).wrapping_mul(0x9e37_79b9) ^ occurrence.rotate_left(32),
        );
        FaultKind::ALL[(h % FaultKind::ALL.len() as u64) as usize]
    }

    /// Total crossings of `site` so far.
    pub fn crossings(&self, site: FaultSite) -> u64 {
        self.counters[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Records one crossing of `site`; returns the kind to fire (if any
    /// rule matches the new 1-based count) and the count itself.
    fn cross(&self, site: FaultSite) -> (u64, Option<FaultKind>) {
        let n = self.counters[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        (n, self.match_rule(site, n))
    }

    /// Records a crossing of `site` identified by a caller-supplied
    /// 1-based ordinal (used for sites crossed concurrently, where
    /// arrival order is scheduler-dependent but the ordinal is not).
    fn cross_at(&self, site: FaultSite, ordinal: u64) -> Option<FaultKind> {
        self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        self.match_rule(site, ordinal)
    }

    fn match_rule(&self, site: FaultSite, n: u64) -> Option<FaultKind> {
        let kind =
            self.rules.iter().find(|r| r.site == site && r.occurrence == n).map(|r| r.kind)?;
        self.fired.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }
}

#[derive(Debug)]
struct Inner {
    /// `u64::MAX` means unlimited.
    step_limit: u64,
    steps: AtomicU64,
    /// `usize::MAX` means unlimited.
    node_limit: usize,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    /// Cancel flags of governors further up a *race* fork: a race child
    /// gets its own private flag (so the winner can cancel just the
    /// loser) but must still die when any enclosing computation is
    /// cancelled. Empty everywhere except under [`fork_race`].
    ///
    /// [`fork_race`]: ResourceGovernor::fork_race
    upstream_cancels: Vec<Arc<AtomicBool>>,
    /// Ancestor whose budget this governor's steps also consume.
    parent: Option<Arc<Inner>>,
    /// Precomputed: false iff the only possible trip is cancellation,
    /// letting `checkpoint` skip all accounting on unlimited governors.
    metered: bool,
    /// Shared fault-injection plan; `None` in production (one untaken
    /// branch per checkpoint).
    faults: Option<Arc<FaultPlan>>,
}

impl Inner {
    fn charge(&self) -> Result<u64, ResourceExhausted> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.step_limit {
            return Err(ResourceExhausted::Steps);
        }
        Ok(n)
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.upstream_cancels.iter().any(|f| f.load(Ordering::Relaxed))
    }
}

/// Cancels the computation driven by a [`ResourceGovernor`] from
/// another thread (or a signal handler). Cheap to clone.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Raises the flag; every governor sharing it fails its next
    /// checkpoint with [`ResourceExhausted::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A shared, cloneable bundle of resource limits. See the
/// [module documentation](self) for semantics.
///
/// `Clone` shares state: all clones observe the same step counter,
/// deadline, and cancellation flag, so a governor can be handed to
/// several phases of a flow and enforce one global budget.
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    inner: Arc<Inner>,
}

impl Default for ResourceGovernor {
    fn default() -> Self {
        ResourceGovernor::unlimited()
    }
}

impl ResourceGovernor {
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        step_limit: u64,
        node_limit: usize,
        deadline: Option<Instant>,
        cancel: Arc<AtomicBool>,
        upstream_cancels: Vec<Arc<AtomicBool>>,
        parent: Option<Arc<Inner>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let metered = step_limit != u64::MAX
            || node_limit != usize::MAX
            || deadline.is_some()
            || parent.is_some();
        ResourceGovernor {
            inner: Arc::new(Inner {
                step_limit,
                steps: AtomicU64::new(0),
                node_limit,
                deadline,
                cancel,
                upstream_cancels,
                parent,
                metered,
                faults,
            }),
        }
    }

    /// A governor that never trips (except through its cancel handle).
    /// `checkpoint` on an unlimited governor costs one atomic load.
    pub fn unlimited() -> Self {
        ResourceGovernor::from_parts(
            u64::MAX,
            usize::MAX,
            None,
            Arc::new(AtomicBool::new(false)),
            Vec::new(),
            None,
            None,
        )
    }

    /// Replaces the recursion-step budget. Resets the step counter;
    /// intended for configuration before the governor is shared.
    pub fn with_step_limit(self, limit: u64) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            limit,
            inner.node_limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.upstream_cancels.clone(),
            inner.parent.clone(),
            inner.faults.clone(),
        )
    }

    /// Replaces the live-node ceiling (total allocated nodes in the
    /// manager the budgeted operation runs in).
    pub fn with_node_limit(self, limit: usize) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            inner.step_limit,
            limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.upstream_cancels.clone(),
            inner.parent.clone(),
            inner.faults.clone(),
        )
    }

    /// Sets the wall-clock deadline to `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            inner.step_limit,
            inner.node_limit,
            Instant::now().checked_add(timeout),
            inner.cancel.clone(),
            inner.upstream_cancels.clone(),
            inner.parent.clone(),
            inner.faults.clone(),
        )
    }

    /// Attaches a shared fault-injection plan. Every clone and fork of
    /// this governor crosses the plan's sites; a governor without a
    /// plan (the default) never fires injected faults.
    pub fn with_fault_plan(self, plan: Arc<FaultPlan>) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            inner.step_limit,
            inner.node_limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.upstream_cancels.clone(),
            inner.parent.clone(),
            Some(plan),
        )
    }

    /// The attached fault plan, if any. Sub-engines that build private
    /// governors (worker forks, retry sub-budgets) inherit it through
    /// [`fork_steps`](Self::fork_steps) automatically.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.inner.faults.as_ref()
    }

    /// Creates a child governor with a fresh step budget of `limit`.
    ///
    /// The child shares the cancellation flag, deadline, node ceiling,
    /// and fault plan, and every step it charges is *also* charged to
    /// this governor (and its ancestors). A degradation ladder gives
    /// its expensive first attempt `fork_steps(remaining / 2)`: if the
    /// attempt exhausts the fork, at least half the parent budget is
    /// still available for the cheaper fallback.
    pub fn fork_steps(&self, limit: u64) -> Self {
        let inner = &self.inner;
        ResourceGovernor::from_parts(
            limit,
            inner.node_limit,
            inner.deadline,
            inner.cancel.clone(),
            inner.upstream_cancels.clone(),
            Some(self.inner.clone()),
            inner.faults.clone(),
        )
    }

    /// Creates a child governor for one arm of a portfolio race:
    /// `limit` steps are charged to this governor (and its ancestors)
    /// *up front*, and the child never charges upstream again.
    ///
    /// Racing under plain [`fork_steps`](Self::fork_steps) would leak
    /// nondeterminism: the cancelled loser consumes a scheduler-dependent
    /// number of steps, so any later budget verdict that shares an
    /// ancestor would flip between runs. Prepaying makes the parent-side
    /// cost of a race a pure function of the requested limits, whatever
    /// the arms actually do.
    ///
    /// The child has a *private* cancellation flag — the race winner
    /// cancels only its sibling — but still observes the parent's flag
    /// (and any flags the parent itself was racing under) through an
    /// upstream-cancel list, so an enclosing cancellation drains racers
    /// too. Deadline, node ceiling, and fault plan are inherited.
    ///
    /// Callers should size `limit` from [`remaining_steps`]
    /// (e.g. `remaining / 2` per arm) so the prepay cannot exceed what
    /// is actually left; a prepay beyond the remaining budget simply
    /// exhausts the parent at its next checkpoint.
    ///
    /// [`remaining_steps`]: Self::remaining_steps
    pub fn fork_race(&self, limit: u64) -> Self {
        let inner = &self.inner;
        if inner.metered && limit != u64::MAX {
            inner.steps.fetch_add(limit, Ordering::Relaxed);
            let mut ancestor = inner.parent.as_ref();
            while let Some(a) = ancestor {
                a.steps.fetch_add(limit, Ordering::Relaxed);
                ancestor = a.parent.as_ref();
            }
        }
        let mut upstream = inner.upstream_cancels.clone();
        upstream.push(inner.cancel.clone());
        ResourceGovernor::from_parts(
            limit,
            inner.node_limit,
            inner.deadline,
            Arc::new(AtomicBool::new(false)),
            upstream,
            None,
            inner.faults.clone(),
        )
    }

    /// Steps consumed through this governor so far (including steps
    /// charged by forked children).
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// The live-node ceiling; `usize::MAX` if unlimited. Callers layering
    /// their own cap on an inherited governor should keep the tighter of
    /// the two.
    pub fn node_limit(&self) -> usize {
        self.inner.node_limit
    }

    /// Steps left before [`ResourceExhausted::Steps`]; `u64::MAX` if
    /// unlimited. Does not consult ancestors.
    pub fn remaining_steps(&self) -> u64 {
        if self.inner.step_limit == u64::MAX {
            return u64::MAX;
        }
        self.inner.step_limit.saturating_sub(self.steps_used())
    }

    /// A handle that cancels every computation using this governor (or
    /// any clone/fork of it), safe to move to another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle { flag: self.inner.cancel.clone() }
    }

    /// Raises the shared cancellation flag.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the shared cancellation flag has been raised (for a race
    /// fork: its own flag or any enclosing computation's).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled()
    }

    /// Records one unit of work and checks every limit. Budgeted
    /// operations call this once per cache-miss recursion step with the
    /// manager's current total node count.
    ///
    /// Deadline checks are amortized: the clock is read once per
    /// [`DEADLINE_CHECK_PERIOD`] steps (and on the first step), so a
    /// deadline can overshoot by at most that many steps of work.
    #[inline]
    pub fn checkpoint(&self, live_nodes: usize) -> Result<(), ResourceExhausted> {
        let inner = &*self.inner;
        if inner.cancelled() {
            return Err(ResourceExhausted::Cancelled);
        }
        if inner.faults.is_some() {
            // Every checkpoint is a cache-miss recursion step of a
            // budgeted operation: the `bdd.apply` injection site.
            self.fault_site(FaultSite::BddApply)?;
        }
        if !inner.metered {
            return Ok(());
        }
        let n = inner.charge()?;
        let mut ancestor = inner.parent.as_ref();
        while let Some(a) = ancestor {
            a.charge()?;
            ancestor = a.parent.as_ref();
        }
        if live_nodes > inner.node_limit {
            return Err(ResourceExhausted::Nodes);
        }
        if let Some(deadline) = inner.deadline {
            if (n == 1 || n % DEADLINE_CHECK_PERIOD == 0) && Instant::now() >= deadline {
                return Err(ResourceExhausted::Deadline);
            }
        }
        Ok(())
    }

    /// Checks cancellation and the wall-clock deadline *without*
    /// charging a recursion step.
    ///
    /// Loop-shaped safe points (a reachability fixpoint iteration, a
    /// sifting excursion, the CDCL search loop) call this so that a
    /// deadline or cancellation is observed at every boundary even when
    /// the body runs entirely out of warm caches and never reaches an
    /// amortized step check.
    #[inline]
    pub fn poll_interrupt(&self) -> Result<(), ResourceExhausted> {
        let inner = &*self.inner;
        if inner.cancelled() {
            return Err(ResourceExhausted::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(ResourceExhausted::Deadline);
            }
        }
        Ok(())
    }

    /// Registers one crossing of a fault-injection `site`.
    ///
    /// Without an attached [`FaultPlan`] this is a no-op returning
    /// `Ok(())`. With one, the crossing is counted and — if a rule
    /// matches the new count — the fault fires: `Budget` and
    /// `AllocPressure` return the corresponding [`ResourceExhausted`],
    /// `Cancel` raises the shared flag first, and `Panic` panics (to be
    /// absorbed by the nearest isolation boundary).
    #[inline]
    pub fn fault_site(&self, site: FaultSite) -> Result<(), ResourceExhausted> {
        if let Some(plan) = &self.inner.faults {
            let (n, kind) = plan.cross(site);
            if let Some(kind) = kind {
                return Err(self.fire_fault(site, n, kind));
            }
        }
        Ok(())
    }

    /// Registers a crossing of `site` identified by a deterministic
    /// 0-based `ordinal` supplied by the caller (e.g. a parallel task's
    /// input index). Rules match `ordinal + 1` as the occurrence, so
    /// firing does not depend on scheduler arrival order.
    #[inline]
    pub fn fault_site_at(&self, site: FaultSite, ordinal: u64) -> Result<(), ResourceExhausted> {
        if let Some(plan) = &self.inner.faults {
            if let Some(kind) = plan.cross_at(site, ordinal + 1) {
                return Err(self.fire_fault(site, ordinal + 1, kind));
            }
        }
        Ok(())
    }

    #[cold]
    fn fire_fault(&self, site: FaultSite, n: u64, kind: FaultKind) -> ResourceExhausted {
        match kind {
            FaultKind::Budget => ResourceExhausted::Steps,
            FaultKind::AllocPressure => ResourceExhausted::Nodes,
            FaultKind::Cancel => {
                self.inner.cancel.store(true, Ordering::Relaxed);
                ResourceExhausted::Cancelled
            }
            FaultKind::Panic => {
                panic!("injected fault: simulated worker panic at {site} (crossing {n})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let gov = ResourceGovernor::unlimited();
        for _ in 0..10_000 {
            assert_eq!(gov.checkpoint(usize::MAX - 1), Ok(()));
        }
        assert_eq!(gov.steps_used(), 0, "unlimited governor skips accounting");
    }

    #[test]
    fn step_budget_trips_exactly() {
        let gov = ResourceGovernor::unlimited().with_step_limit(5);
        for _ in 0..5 {
            assert_eq!(gov.checkpoint(0), Ok(()));
        }
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Steps));
        assert_eq!(gov.remaining_steps(), 0);
    }

    #[test]
    fn node_ceiling_trips() {
        let gov = ResourceGovernor::unlimited().with_node_limit(100);
        assert_eq!(gov.checkpoint(100), Ok(()));
        assert_eq!(gov.checkpoint(101), Err(ResourceExhausted::Nodes));
    }

    #[test]
    fn deadline_in_the_past_trips_on_first_step() {
        let gov = ResourceGovernor::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Deadline));
    }

    #[test]
    fn cancel_handle_works_across_clones() {
        let gov = ResourceGovernor::unlimited().with_step_limit(1000);
        let clone = gov.clone();
        let handle = gov.cancel_handle();
        assert_eq!(clone.checkpoint(0), Ok(()));
        handle.cancel();
        assert_eq!(clone.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert!(gov.is_cancelled());
    }

    #[test]
    fn fork_charges_parent() {
        let parent = ResourceGovernor::unlimited().with_step_limit(10);
        let child = parent.fork_steps(4);
        for _ in 0..4 {
            assert_eq!(child.checkpoint(0), Ok(()));
        }
        assert_eq!(child.checkpoint(0), Err(ResourceExhausted::Steps));
        // The failed checkpoint still charged the child counter but the
        // parent keeps the 4 successful steps plus the failed attempt.
        assert_eq!(parent.steps_used(), 4);
        assert_eq!(parent.remaining_steps(), 6);
        for _ in 0..6 {
            assert_eq!(parent.checkpoint(0), Ok(()));
        }
        assert_eq!(parent.checkpoint(0), Err(ResourceExhausted::Steps));
    }

    #[test]
    fn fork_shares_cancellation() {
        let parent = ResourceGovernor::unlimited();
        let child = parent.fork_steps(100);
        parent.cancel();
        assert_eq!(child.checkpoint(0), Err(ResourceExhausted::Cancelled));
    }

    #[test]
    fn fault_rule_parses_cli_syntax() {
        let rule: FaultRule = "image.cluster:2:budget".parse().unwrap();
        assert_eq!(
            rule,
            FaultRule { site: FaultSite::ImageCluster, occurrence: 2, kind: FaultKind::Budget }
        );
        assert!("image.cluster:0:budget".parse::<FaultRule>().is_err(), "1-based");
        assert!("nope:1:budget".parse::<FaultRule>().is_err());
        assert!("bdd.apply:1:explode".parse::<FaultRule>().is_err());
        assert!("bdd.apply:1".parse::<FaultRule>().is_err());
        for site in FaultSite::ALL {
            assert_eq!(site.as_str().parse::<FaultSite>().unwrap(), site);
        }
    }

    #[test]
    fn fault_fires_at_exact_crossing() {
        let plan = Arc::new(FaultPlan::new(7).with_rule(FaultSite::BddGc, 3, FaultKind::Budget));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan.clone());
        assert_eq!(gov.fault_site(FaultSite::BddGc), Ok(()));
        assert_eq!(gov.fault_site(FaultSite::BddGc), Ok(()));
        assert_eq!(gov.fault_site(FaultSite::BddGc), Err(ResourceExhausted::Steps));
        assert_eq!(gov.fault_site(FaultSite::BddGc), Ok(()), "fires once, at the 3rd crossing");
        assert_eq!(plan.crossings(FaultSite::BddGc), 4);
        assert_eq!(plan.faults_fired(), 1);
    }

    #[test]
    fn cancel_fault_raises_shared_flag() {
        let plan =
            Arc::new(FaultPlan::new(0).with_rule(FaultSite::ReachFixpoint, 1, FaultKind::Cancel));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        let sibling = gov.clone();
        assert_eq!(gov.fault_site(FaultSite::ReachFixpoint), Err(ResourceExhausted::Cancelled));
        assert_eq!(sibling.checkpoint(0), Err(ResourceExhausted::Cancelled));
    }

    #[test]
    fn alloc_pressure_fault_reads_as_node_ceiling() {
        let plan =
            Arc::new(FaultPlan::new(0).with_rule(FaultSite::BddApply, 2, FaultKind::AllocPressure));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        assert_eq!(gov.checkpoint(0), Ok(()));
        assert_eq!(gov.checkpoint(0), Err(ResourceExhausted::Nodes));
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        let plan =
            Arc::new(FaultPlan::new(0).with_rule(FaultSite::SynthDecompose, 1, FaultKind::Panic));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        let _ = gov.fault_site(FaultSite::SynthDecompose);
    }

    #[test]
    fn fork_inherits_fault_plan() {
        let plan = Arc::new(FaultPlan::new(0).with_rule(FaultSite::BddApply, 2, FaultKind::Budget));
        let parent = ResourceGovernor::unlimited().with_fault_plan(plan.clone());
        let child = parent.fork_steps(1000).with_node_limit(10_000);
        assert_eq!(child.checkpoint(0), Ok(()));
        assert_eq!(child.checkpoint(0), Err(ResourceExhausted::Steps), "fault, not budget");
        assert_eq!(plan.crossings(FaultSite::BddApply), 2);
    }

    #[test]
    fn ordinal_crossings_ignore_arrival_order() {
        let plan = Arc::new(FaultPlan::new(0).with_rule(FaultSite::ParTask, 2, FaultKind::Budget));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        // Tasks arrive out of order; only ordinal 1 (occurrence 2) fires.
        assert_eq!(gov.fault_site_at(FaultSite::ParTask, 3), Ok(()));
        assert_eq!(gov.fault_site_at(FaultSite::ParTask, 0), Ok(()));
        assert_eq!(gov.fault_site_at(FaultSite::ParTask, 1), Err(ResourceExhausted::Steps));
        assert_eq!(gov.fault_site_at(FaultSite::ParTask, 2), Ok(()));
    }

    #[test]
    fn derived_kinds_are_deterministic_and_cover() {
        let mut seen = std::collections::HashSet::new();
        for site in FaultSite::ALL {
            for occ in 1..=8 {
                let a = FaultPlan::derive_kind(42, site, occ);
                let b = FaultPlan::derive_kind(42, site, occ);
                assert_eq!(a, b);
                seen.insert(a);
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "all kinds appear across the sweep");
    }

    #[test]
    fn race_fork_prepays_exactly_once() {
        let parent = ResourceGovernor::unlimited().with_step_limit(10);
        let arm = parent.fork_race(4);
        // The prepay is the whole parent-side cost: whatever the arm
        // actually does, the parent sees exactly 4 steps.
        assert_eq!(parent.steps_used(), 4);
        for _ in 0..4 {
            assert_eq!(arm.checkpoint(0), Ok(()));
        }
        assert_eq!(arm.checkpoint(0), Err(ResourceExhausted::Steps));
        assert_eq!(parent.steps_used(), 4, "arm consumption never reaches the parent");
        assert_eq!(parent.remaining_steps(), 6);
    }

    #[test]
    fn race_fork_cancel_stays_private() {
        let parent = ResourceGovernor::unlimited().with_step_limit(100);
        let loser = parent.fork_race(10);
        let winner = parent.fork_race(10);
        loser.cancel_handle().cancel();
        assert_eq!(loser.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert_eq!(winner.checkpoint(0), Ok(()), "sibling arm unaffected");
        assert_eq!(parent.checkpoint(0), Ok(()), "parent unaffected");
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn race_fork_observes_upstream_cancel() {
        let parent = ResourceGovernor::unlimited().with_step_limit(100);
        let arm = parent.fork_race(10);
        let nested = arm.fork_steps(5); // a ladder rung inside the arm
        parent.cancel();
        assert_eq!(arm.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert_eq!(arm.poll_interrupt(), Err(ResourceExhausted::Cancelled));
        assert_eq!(nested.checkpoint(0), Err(ResourceExhausted::Cancelled));
        assert!(arm.is_cancelled());
    }

    #[test]
    fn race_fork_from_unlimited_parent_skips_prepay_accounting() {
        let parent = ResourceGovernor::unlimited();
        let arm = parent.fork_race(3);
        assert_eq!(parent.steps_used(), 0, "unlimited governor skips accounting");
        for _ in 0..3 {
            assert_eq!(arm.checkpoint(0), Ok(()));
        }
        assert_eq!(arm.checkpoint(0), Err(ResourceExhausted::Steps));
    }

    #[test]
    fn race_fork_inherits_fault_plan_and_deadline() {
        let plan = Arc::new(FaultPlan::new(0).with_rule(FaultSite::BddApply, 1, FaultKind::Budget));
        let parent = ResourceGovernor::unlimited().with_fault_plan(plan.clone());
        let arm = parent.fork_race(u64::MAX);
        assert_eq!(arm.checkpoint(0), Err(ResourceExhausted::Steps), "injected, not real");
        assert_eq!(plan.crossings(FaultSite::BddApply), 1);
    }

    #[test]
    fn new_sites_parse_and_index_stably() {
        assert_eq!("portfolio.race".parse::<FaultSite>().unwrap(), FaultSite::PortfolioRace);
        assert_eq!("sat.encode".parse::<FaultSite>().unwrap(), FaultSite::SatEncode);
        assert_eq!("bdd.shared_apply".parse::<FaultSite>().unwrap(), FaultSite::BddSharedApply);
        // Appended at the end: pre-existing indices (and thus the kinds
        // seeds derive for old chaos cells) are unchanged.
        assert_eq!(FaultSite::ParTask.index(), 9);
        assert_eq!(FaultSite::PortfolioRace.index(), 10);
        assert_eq!(FaultSite::SatEncode.index(), 11);
        assert_eq!(FaultSite::BddSharedApply.index(), 12);
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }

    #[test]
    fn poll_interrupt_observes_cancel_and_deadline() {
        let gov = ResourceGovernor::unlimited();
        assert_eq!(gov.poll_interrupt(), Ok(()));
        gov.cancel();
        assert_eq!(gov.poll_interrupt(), Err(ResourceExhausted::Cancelled));

        let gov = ResourceGovernor::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(gov.poll_interrupt(), Err(ResourceExhausted::Deadline));
    }
}
