//! Structural analyses: support, sizes, evaluation, satisfying-assignment
//! counting and enumeration.

use crate::hash::FxHashMap;
use crate::{Manager, NodeId, VarId};
use std::collections::HashSet;

impl Manager {
    /// Number of internal nodes in `f` (terminals not counted).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let (lo, hi) = self.branches(n);
            stack.push(lo);
            stack.push(hi);
        }
        count
    }

    /// Total nodes in the union of several functions (shared nodes counted
    /// once) — the "BDD size" figure reported in the paper's tables.
    pub fn shared_size(&self, fs: &[NodeId]) -> usize {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = fs.to_vec();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let (lo, hi) = self.branches(n);
            stack.push(lo);
            stack.push(hi);
        }
        count
    }

    /// The set of variables `f` structurally depends on, in order.
    pub fn support(&self, f: NodeId) -> Vec<VarId> {
        let mut vars = HashSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let mut out: Vec<VarId> = vars.into_iter().map(VarId).collect();
        out.sort_unstable();
        out
    }

    /// Evaluates `f` under `assignment`, indexed by variable id.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable with id `>= assignment.len()`.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.node(cur);
            cur = if assignment[node.var as usize] { node.hi } else { node.lo };
        }
        cur.is_true()
    }

    /// Exact number of satisfying assignments of `f` over a universe of
    /// `num_vars` variables (ids `0..num_vars`).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 127` (would overflow `u128`; use
    /// [`Manager::sat_fraction`] instead) or if `f` depends on a variable
    /// outside the universe.
    pub fn sat_count(&self, f: NodeId, num_vars: usize) -> u128 {
        assert!(num_vars <= 127, "sat_count overflows above 127 variables");
        let mut memo: FxHashMap<NodeId, u128> = FxHashMap::default();
        let total_level = num_vars as u32;
        let top = self.level(f).min(total_level);
        self.sat_count_rec(f, total_level, &mut memo) << top
    }

    fn sat_count_rec(
        &self,
        f: NodeId,
        total_level: u32,
        memo: &mut FxHashMap<NodeId, u128>,
    ) -> u128 {
        // Returns count over variables strictly below f's level.
        if f.is_false() {
            return 0;
        }
        if f.is_true() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = self.node(f);
        let node_level = self.level(f);
        assert!(node_level < total_level, "variable outside the counting universe");
        let (lo, hi) = (node.lo, node.hi);
        let lo_level = self.level(lo).min(total_level);
        let hi_level = self.level(hi).min(total_level);
        let c_lo = self.sat_count_rec(lo, total_level, memo) << (lo_level - node_level - 1);
        let c_hi = self.sat_count_rec(hi, total_level, memo) << (hi_level - node_level - 1);
        let c = c_lo + c_hi;
        memo.insert(f, c);
        c
    }

    /// Fraction of the assignment space satisfying `f`, computed in `f64`.
    /// Scale by `2^n` for an (approximate) model count with any number of
    /// variables.
    pub fn sat_fraction(&self, f: NodeId) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        self.sat_fraction_rec(f, &mut memo)
    }

    fn sat_fraction_rec(&self, f: NodeId, memo: &mut FxHashMap<NodeId, f64>) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let (lo, hi) = self.branches(f);
        let p = 0.5 * (self.sat_fraction_rec(lo, memo) + self.sat_fraction_rec(hi, memo));
        memo.insert(f, p);
        p
    }

    /// One satisfying assignment of `f` as `(variable, phase)` pairs for the
    /// variables on the chosen path; variables absent from the result are
    /// unconstrained. `None` iff `f` is unsatisfiable.
    pub fn one_sat(&self, f: NodeId) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.node(cur);
            if !node.lo.is_false() {
                path.push((VarId(node.var), false));
                cur = node.lo;
            } else {
                path.push((VarId(node.var), true));
                cur = node.hi;
            }
        }
        Some(path)
    }

    /// All satisfying cubes of `f` (paths to the `1` terminal). Variables
    /// missing from a cube may take either value.
    ///
    /// The number of cubes can be exponential in the size of `f`; use only
    /// on functions known to be small (e.g. the purged solution sets of
    /// §3.5.2).
    pub fn sat_cubes(&self, f: NodeId) -> Vec<Vec<(VarId, bool)>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.sat_cubes_rec(f, &mut prefix, &mut out);
        out
    }

    fn sat_cubes_rec(
        &self,
        f: NodeId,
        prefix: &mut Vec<(VarId, bool)>,
        out: &mut Vec<Vec<(VarId, bool)>>,
    ) {
        if f.is_false() {
            return;
        }
        if f.is_true() {
            out.push(prefix.clone());
            return;
        }
        let node = self.node(f);
        prefix.push((VarId(node.var), false));
        self.sat_cubes_rec(node.lo, prefix, out);
        prefix.pop();
        prefix.push((VarId(node.var), true));
        self.sat_cubes_rec(node.hi, prefix, out);
        prefix.pop();
    }

    /// Number of satisfying assignments restricted to the given variable
    /// set, assuming `f` only depends on variables in `vars`.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable not in `vars`, or if
    /// `vars.len() > 127`.
    pub fn sat_count_over(&self, f: NodeId, vars: &[VarId]) -> u128 {
        assert!(vars.len() <= 127, "sat_count_over overflows above 127 variables");
        let mut sorted: Vec<u32> = vars.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut total: u128 = 0;
        for cube in self.sat_cubes(f) {
            for &(v, _) in &cube {
                assert!(
                    sorted.binary_search(&v.0).is_ok(),
                    "function depends on {v} outside the given variable set"
                );
            }
            let free = sorted.len() - cube.len();
            total += 1u128 << free;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_and_size() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let t = m.and(vs[0], vs[2]);
        let f = m.or(t, vs[3]);
        assert_eq!(m.support(f), vec![VarId(0), VarId(2), VarId(3)]);
        assert!(m.size(f) >= 3);
        assert_eq!(m.size(NodeId::TRUE), 0);
    }

    #[test]
    fn eval_matches_construction() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let x = m.xor(vs[0], vs[1]);
        let f = m.or(x, vs[2]);
        for bits in 0u32..8 {
            let a: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = (a[0] ^ a[1]) || a[2];
            assert_eq!(m.eval(f, &a), expect);
        }
    }

    #[test]
    fn sat_count_simple() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let f = m.or_many(vs.clone());
        assert_eq!(m.sat_count(f, 3), 7);
        let g = m.and_many(vs);
        assert_eq!(m.sat_count(g, 3), 1);
        assert_eq!(m.sat_count(NodeId::TRUE, 10), 1024);
        assert_eq!(m.sat_count(NodeId::FALSE, 10), 0);
    }

    #[test]
    fn sat_count_untouched_universe_scales() {
        let mut m = Manager::new();
        let a = m.new_var();
        let _unused = m.new_vars(4);
        assert_eq!(m.sat_count(a, 5), 16);
    }

    #[test]
    fn sat_fraction_matches_count() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let t1 = m.and(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[5]);
        let f = m.or(t1, t2);
        let frac = m.sat_fraction(f);
        let count = m.sat_count(f, 6) as f64;
        assert!((frac * 64.0 - count).abs() < 1e-9);
    }

    #[test]
    fn one_sat_and_cubes() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let nb = m.not(vs[1]);
        let f = m.and(vs[0], nb);
        let sat = m.one_sat(f).expect("satisfiable");
        let mut a = [false; 3];
        for (v, phase) in sat {
            a[v.index()] = phase;
        }
        assert!(m.eval(f, &a));
        assert!(m.one_sat(NodeId::FALSE).is_none());
        let cubes = m.sat_cubes(f);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0], vec![(VarId(0), true), (VarId(1), false)]);
    }

    #[test]
    fn sat_count_over_subset() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        // f over vars {1, 3, 5} only.
        let t = m.or(vs[1], vs[3]);
        let f = m.and(t, vs[5]);
        let n = m.sat_count_over(f, &[VarId(1), VarId(3), VarId(5)]);
        assert_eq!(n, 3);
    }
}
