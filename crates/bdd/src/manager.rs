//! The BDD manager: unique table, computed table, and Boolean connectives.

use crate::hash::FxHashMap;
use crate::node::{Node, TERMINAL_LEVEL};
use crate::{NodeId, VarId};

/// Operation tags for the computed-table cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Not,
    And,
    Or,
    Xor,
    Ite,
    Exists,
    Forall,
    Compose,
    VCompose,
    Restrict,
}

pub(crate) type CacheKey = (Op, u32, u32, u32);

/// A reduced ordered BDD manager.
///
/// All functions built through one manager share structure via hash
/// consing, so node equality ([`NodeId`] equality) is function equality.
/// Nodes are never garbage collected: the intended usage pattern — one
/// manager per symbolic computation, as in the paper's prototype — keeps
/// peak sizes modest. [`Manager::clear_cache`] drops the computed table if
/// memory pressure matters between phases.
///
/// # Example
///
/// ```
/// use symbi_bdd::Manager;
/// let mut m = Manager::new();
/// let (a, b, c) = (m.new_var(), m.new_var(), m.new_var());
/// // Majority of three variables.
/// let ab = m.and(a, b);
/// let ac = m.and(a, c);
/// let bc = m.and(b, c);
/// let maj = m.or_many([ab, ac, bc]);
/// assert_eq!(m.sat_count(maj, 3), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    pub(crate) cache: FxHashMap<CacheKey, NodeId>,
    num_vars: u32,
    var_nodes: Vec<NodeId>,
    /// Variable → level (its position in the order, 0 = top).
    var2level: Vec<u32>,
    /// Level → variable (inverse of `var2level`).
    level2var: Vec<u32>,
    pub(crate) substitutions: Vec<FxHashMap<u32, NodeId>>,
}

/// Size statistics for a [`Manager`], as returned by [`Manager::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Total allocated nodes, including the two terminals.
    pub nodes: usize,
    /// Number of declared variables.
    pub vars: usize,
    /// Entries currently held in the computed table.
    pub cache_entries: usize,
}

impl Manager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        let mut m = Manager {
            nodes: Vec::with_capacity(1 << 12),
            unique: FxHashMap::default(),
            cache: FxHashMap::default(),
            num_vars: 0,
            var_nodes: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            substitutions: Vec::new(),
        };
        // Index 0: FALSE, index 1: TRUE.
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: NodeId::FALSE, hi: NodeId::FALSE });
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: NodeId::TRUE, hi: NodeId::TRUE });
        m
    }

    /// Creates a manager with `n` variables already declared.
    pub fn with_vars(n: usize) -> Self {
        let mut m = Manager::new();
        for _ in 0..n {
            m.new_var();
        }
        m
    }

    /// Declares a fresh variable at the bottom of the order and returns its
    /// positive literal.
    pub fn new_var(&mut self) -> NodeId {
        let v = self.num_vars;
        self.num_vars += 1;
        self.var2level.push(v);
        self.level2var.push(v);
        let node = self.mk(v, NodeId::FALSE, NodeId::TRUE);
        self.var_nodes.push(node);
        node
    }

    /// Creates a manager whose variable *order* is the given permutation:
    /// `order[i]` is the variable sitting at level `i` (level 0 = top).
    /// All `order.len()` variables are declared; [`VarId`]s keep their
    /// identity independent of placement.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_var_order(order: &[VarId]) -> Self {
        let n = order.len();
        let mut m = Manager::with_vars(n);
        let mut var2level = vec![u32::MAX; n];
        for (lvl, v) in order.iter().enumerate() {
            assert!(v.index() < n, "order mentions undeclared variable {v}");
            assert_eq!(var2level[v.index()], u32::MAX, "duplicate variable {v} in order");
            var2level[v.index()] = lvl as u32;
        }
        m.var2level = var2level;
        m.level2var = order.iter().map(|v| v.0).collect();
        m
    }

    /// The level (order position, 0 = top) of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is undeclared.
    pub fn level_of(&self, v: VarId) -> usize {
        self.var2level[v.index()] as usize
    }

    /// The variables in order, top to bottom.
    pub fn variable_order(&self) -> Vec<VarId> {
        self.level2var.iter().map(|&v| VarId(v)).collect()
    }

    /// Rebuilds `roots` in a fresh manager whose variable order is the
    /// given permutation, returning the manager and the mapped roots.
    /// Variable identities are preserved (only levels change), so
    /// evaluation semantics are identical.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of this manager's variables.
    pub fn reordered(&self, roots: &[NodeId], order: &[VarId]) -> (Manager, Vec<NodeId>) {
        assert_eq!(order.len(), self.num_vars(), "order must cover every variable");
        let mut dst = Manager::with_var_order(order);
        let identity: crate::hash::FxHashMap<VarId, VarId> =
            (0..self.num_vars() as u32).map(|i| (VarId(i), VarId(i))).collect();
        let mapped = roots.iter().map(|&r| dst.transfer_from(self, r, &identity)).collect();
        (dst, mapped)
    }

    /// Greedy sifting by rebuild: moves each variable (most populous
    /// first) to the level that minimizes the shared size of `roots`,
    /// one variable at a time, and returns the best manager found with
    /// the mapped roots.
    ///
    /// Each trial rebuilds the diagrams, so the cost is
    /// `O(vars² · size)` — intended for diagrams up to a few dozen
    /// variables; larger managers should pick a static order
    /// (e.g. `symbi_netlist::cone::dfs_leaf_order`) instead.
    pub fn sifted(&self, roots: &[NodeId]) -> (Manager, Vec<NodeId>) {
        let n = self.num_vars();
        let mut best_order = self.variable_order();
        let (mut best_mgr, mut best_roots) = self.reordered(roots, &best_order);
        let mut best_size = best_mgr.shared_size(&best_roots);
        // Most-populous-first variable agenda, computed on the input.
        let mut population = vec![0usize; n];
        for node in &self.nodes[2..] {
            population[node.var as usize] += 1;
        }
        let mut agenda: Vec<VarId> = (0..n as u32).map(VarId).collect();
        agenda.sort_by_key(|v| std::cmp::Reverse(population[v.index()]));
        for v in agenda {
            let from = best_order.iter().position(|&x| x == v).expect("present");
            for to in 0..n {
                if to == from {
                    continue;
                }
                let mut candidate = best_order.clone();
                let moved = candidate.remove(from);
                candidate.insert(to, moved);
                let (mgr, mapped) = self.reordered(roots, &candidate);
                let size = mgr.shared_size(&mapped);
                if size < best_size {
                    best_size = size;
                    best_order = candidate;
                    best_mgr = mgr;
                    best_roots = mapped;
                }
            }
        }
        (best_mgr, best_roots)
    }

    /// Declares `n` fresh variables, returning their positive literals.
    pub fn new_vars(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of declared variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The positive literal of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has not been declared.
    #[inline]
    pub fn var(&self, v: VarId) -> NodeId {
        self.var_nodes[v.index()]
    }

    /// The literal of variable `v` with the given phase.
    pub fn literal(&mut self, v: VarId, positive: bool) -> NodeId {
        let node = self.var(v);
        if positive {
            node
        } else {
            self.not(node)
        }
    }

    /// Top variable (level) of `f`; `None` for terminals.
    #[inline]
    pub fn top_var(&self, f: NodeId) -> Option<VarId> {
        let v = self.nodes[f.index()].var;
        (v != TERMINAL_LEVEL).then_some(VarId(v))
    }

    #[inline]
    pub(crate) fn level(&self, f: NodeId) -> u32 {
        let v = self.nodes[f.index()].var;
        if v == TERMINAL_LEVEL {
            TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    #[inline]
    pub(crate) fn var_at_level(&self, level: u32) -> u32 {
        self.level2var[level as usize]
    }

    #[inline]
    pub(crate) fn node(&self, f: NodeId) -> Node {
        self.nodes[f.index()]
    }

    /// Cofactors of `f` with respect to its own top variable.
    /// For terminals returns `(f, f)`.
    #[inline]
    pub fn branches(&self, f: NodeId) -> (NodeId, NodeId) {
        let n = self.nodes[f.index()];
        (n.lo, n.hi)
    }

    /// Hash-consed node constructor (the `MK` of the literature).
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.var2level[var as usize] < self.level(lo)
                && self.var2level[var as usize] < self.level(hi),
            "ordering violated: node variable must precede both children"
        );
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            NodeId::FALSE => return NodeId::TRUE,
            NodeId::TRUE => return NodeId::FALSE,
            _ => {}
        }
        let key = (Op::Not, f.0, 0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return NodeId::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::And, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = self.binary_step(Op::And, a, b);
        self.cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return NodeId::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Or, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = self.binary_step(Op::Or, a, b);
        self.cache.insert(key, r);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return NodeId::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Xor, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = self.binary_step(Op::Xor, a, b);
        self.cache.insert(key, r);
        r
    }

    fn binary_step(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if lg == top { self.branches(g) } else { (g, g) };
        let (lo, hi) = match op {
            Op::And => (self.and(f0, g0), self.and(f1, g1)),
            Op::Or => (self.or(f0, g0), self.or(f1, g1)),
            Op::Xor => (self.xor(f0, g0), self.xor(f1, g1)),
            _ => unreachable!("binary_step only handles AND/OR/XOR"),
        };
        let var = self.var_at_level(top);
        self.mk(var, lo, hi)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Difference `f · ¬g`.
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// If-then-else: `f·g + ¬f·h`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        let key = (Op::Ite, f.0, g.0, h.0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = if self.level(f) == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if self.level(g) == top { self.branches(g) } else { (g, g) };
        let (h0, h1) = if self.level(h) == top { self.branches(h) } else { (h, h) };
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let var = self.var_at_level(top);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// `true` iff `f ≤ g` in the "less-than-or-equal" partial order of the
    /// paper (§3.2.1), i.e. `f → g` is a tautology.
    pub fn leq(&mut self, f: NodeId, g: NodeId) -> bool {
        self.diff(f, g).is_false()
    }

    /// Balanced conjunction of many operands.
    pub fn and_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::And)
    }

    /// Balanced disjunction of many operands.
    pub fn or_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::Or)
    }

    /// Balanced exclusive-or of many operands.
    pub fn xor_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::Xor)
    }

    fn reduce_many(&mut self, mut fs: Vec<NodeId>, op: Op) -> NodeId {
        if fs.is_empty() {
            return match op {
                Op::And => NodeId::TRUE,
                _ => NodeId::FALSE,
            };
        }
        while fs.len() > 1 {
            let mut next = Vec::with_capacity(fs.len().div_ceil(2));
            for pair in fs.chunks(2) {
                let r = if pair.len() == 2 {
                    match op {
                        Op::And => self.and(pair[0], pair[1]),
                        Op::Or => self.or(pair[0], pair[1]),
                        Op::Xor => self.xor(pair[0], pair[1]),
                        _ => unreachable!(),
                    }
                } else {
                    pair[0]
                };
                next.push(r);
            }
            fs = next;
        }
        fs[0]
    }

    /// Positive cofactor of `f` with respect to variable `v`.
    pub fn cofactor(&mut self, f: NodeId, v: VarId, value: bool) -> NodeId {
        let constant = if value { NodeId::TRUE } else { NodeId::FALSE };
        self.compose(f, v, constant)
    }

    /// Conjunction of the positive literals of `vars` (a positive cube).
    pub fn cube(&mut self, vars: &[VarId]) -> NodeId {
        let mut sorted: Vec<VarId> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.sort_by_key(|&v| self.level_of(v));
        let mut acc = NodeId::TRUE;
        for &v in sorted.iter().rev() {
            acc = self.mk(v.0, NodeId::FALSE, acc);
        }
        acc
    }

    /// The minterm (full cube) selecting exactly `assignment` over `vars`,
    /// pairing each variable with its phase.
    pub fn minterm(&mut self, assignment: &[(VarId, bool)]) -> NodeId {
        let mut sorted: Vec<(VarId, bool)> = assignment.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| self.level_of(v));
        let mut acc = NodeId::TRUE;
        for &(v, phase) in sorted.iter().rev() {
            acc = if phase {
                self.mk(v.0, NodeId::FALSE, acc)
            } else {
                self.mk(v.0, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// Drops the computed table (node storage is retained).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Current size statistics.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            nodes: self.nodes.len(),
            vars: self.num_vars as usize,
            cache_entries: self.cache.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three(m: &mut Manager) -> (NodeId, NodeId, NodeId) {
        (m.new_var(), m.new_var(), m.new_var())
    }

    #[test]
    fn constants_are_canonical() {
        let m = Manager::new();
        assert_eq!(m.stats().nodes, 2);
        assert!(NodeId::FALSE.is_false());
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2);
        let before = m.stats().nodes;
        let _ = m.and(a, b);
        assert_eq!(m.stats().nodes, before);
    }

    #[test]
    fn involution_of_not() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let f = m.xor(a, b);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let ab = m.and(a, b);
        let abc = m.and(ab, c);
        let lhs = m.not(abc);
        let (na, nb, nc) = (m.not(a), m.not(b), m.not(c));
        let rhs = m.or_many([na, nb, nc]);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_is_mux() {
        let mut m = Manager::new();
        let (s, a, b) = three(&mut m);
        let f = m.ite(s, a, b);
        let sa = m.and(s, a);
        let ns = m.not(s);
        let nsb = m.and(ns, b);
        let g = m.or(sa, nsb);
        assert_eq!(f, g);
    }

    #[test]
    fn xor_via_ite() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let nb = m.not(b);
        let f = m.ite(a, nb, b);
        let g = m.xor(a, b);
        assert_eq!(f, g);
    }

    #[test]
    fn leq_partial_order() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        // ab ≤ a ≤ a+b, and the order is not total.
        assert!(m.leq(ab, a));
        assert!(m.leq(a, aorb));
        assert!(m.leq(ab, aorb));
        assert!(!m.leq(aorb, ab));
        assert!(!m.leq(a, b));
        assert!(!m.leq(b, a));
    }

    #[test]
    fn cube_and_minterm() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let cube = m.cube(&[VarId(0), VarId(2)]);
        let ac = m.and(a, c);
        assert_eq!(cube, ac);
        let mt = m.minterm(&[(VarId(0), true), (VarId(1), false), (VarId(2), true)]);
        let nb = m.not(b);
        let expect = m.and_many([a, nb, c]);
        assert_eq!(mt, expect);
    }

    #[test]
    fn many_op_identities() {
        let mut m = Manager::new();
        assert_eq!(m.and_many([]), NodeId::TRUE);
        assert_eq!(m.or_many([]), NodeId::FALSE);
        assert_eq!(m.xor_many([]), NodeId::FALSE);
        let a = m.new_var();
        assert_eq!(m.and_many([a]), a);
        assert_eq!(m.xor_many([a, a]), NodeId::FALSE);
    }

    #[test]
    fn implies_and_diff() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let ab = m.and(a, b);
        let imp = m.implies(ab, a);
        assert!(imp.is_true());
        let d = m.diff(a, ab);
        let nb = m.not(b);
        let anb = m.and(a, nb);
        assert_eq!(d, anb);
    }

    #[test]
    fn cofactor_shannon() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let bc = m.or(b, c);
        let f = m.and(a, bc); // a(b+c)
        let f1 = m.cofactor(f, VarId(0), true);
        let f0 = m.cofactor(f, VarId(0), false);
        assert_eq!(f1, bc);
        assert!(f0.is_false());
        // Shannon expansion rebuilds f.
        let re = m.ite(a, f1, f0);
        assert_eq!(re, f);
    }
}
