//! The BDD manager: unique table, computed table, and Boolean connectives.
//!
//! The kernel underneath the public API is engineered like a classic
//! BDD package (CUDD lineage):
//!
//! * the unique table is an open-addressed, power-of-two hash table of
//!   node indices probed linearly — one cache line of candidate slots
//!   per `mk` instead of a `HashMap` bucket walk;
//! * the computed table is a bounded, lossy, direct-mapped cache that
//!   overwrites on collision and therefore never grows past
//!   [`KernelConfig::cache_bits`];
//! * nodes are reclaimed by mark-and-sweep garbage collection driven by
//!   an explicit root set ([`Manager::protect`] / [`Ref`] guards) plus
//!   the always-live variable nodes and registered substitutions, with
//!   a dead-ratio auto-trigger at caller-declared safe points
//!   ([`Manager::maybe_gc`]);
//! * variable reordering is true in-place Rudell sifting via
//!   adjacent-level swaps with a growth-abort bound
//!   ([`Manager::sift_in_place`]).

use crate::governor::{FaultSite, ResourceExhausted, ResourceGovernor};
use crate::hash::FxHashMap;
use crate::node::{Node, TERMINAL_LEVEL};
use crate::{NodeId, VarId};

/// Operation tags for the computed-table cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Not,
    And,
    Or,
    Xor,
    Ite,
    Exists,
    Forall,
    Compose,
    VCompose,
    Restrict,
    Constrain,
}

pub(crate) type CacheKey = (Op, u32, u32, u32);

/// `var` tag of a node slot sitting on the free list. Distinct from
/// [`TERMINAL_LEVEL`] (`u32::MAX`), which tags the two terminals.
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;

/// Tuning knobs of the BDD kernel, set per manager.
///
/// The defaults match the synthesis flow: a computed cache bounded at
/// `2^18` slots, garbage collection armed with an 8k-node floor, and
/// automatic reordering off (reordering changes node counts, which the
/// deterministic parallel flow relies on being schedule-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Upper bound on the computed cache: at most `2^cache_bits` slots.
    /// The cache starts small and doubles under miss pressure, so tiny
    /// scratch managers never pay for a big allocation.
    pub cache_bits: u32,
    /// Whether [`Manager::maybe_gc`] is allowed to collect at all.
    pub auto_gc: bool,
    /// Auto-GC never fires below this many live nodes.
    pub gc_min_nodes: usize,
    /// Whether [`Manager::maybe_gc`] may also trigger in-place sifting.
    pub auto_reorder: bool,
    /// Live-node count at which auto-reordering first triggers.
    pub reorder_threshold: usize,
    /// Worker threads for the shared-memory concurrent kernel.
    ///
    /// `0` (the default) and `1` keep every operation on the calling
    /// thread — the classic single-threaded path, byte-identical to
    /// pre-concurrency builds. At `2+`, large budgeted apply/ITE/
    /// quantify calls are executed by a work-stealing team of this many
    /// threads sharing the unique table (CAS publish) and a sharded
    /// lossy cache; results are the same canonical nodes either way.
    /// GC, sifting, and compaction stay stop-the-world safe points.
    pub shared_workers: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cache_bits: 18,
            auto_gc: true,
            gc_min_nodes: 8192,
            auto_reorder: false,
            reorder_threshold: 1 << 16,
            shared_workers: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Open-addressed unique table
// ---------------------------------------------------------------------

pub(crate) const SLOT_EMPTY: u32 = u32::MAX;
pub(crate) const SLOT_TOMB: u32 = u32::MAX - 1;
const UNIQUE_MIN_SLOTS: usize = 1 << 10;

/// Fx-style mix of a node key with a final avalanche so the low bits —
/// the only ones a power-of-two mask keeps — depend on every input bit.
#[inline]
pub(crate) fn key_hash(var: u32, lo: NodeId, hi: NodeId) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = (var as u64).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ lo.0 as u64).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ hi.0 as u64).wrapping_mul(SEED);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^ (h >> 32)
}

/// Open-addressed, power-of-two table mapping `(var, lo, hi)` keys to
/// node indices. Keys live in the node array itself; a slot holds only
/// the index. Linear probing, tombstones on removal, wholesale rehash
/// (dropping tombstones) when load reaches 3/4.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    pub(crate) slots: Vec<u32>,
    pub(crate) occupied: usize,
    pub(crate) tombstones: usize,
}

impl UniqueTable {
    fn new() -> Self {
        UniqueTable { slots: vec![SLOT_EMPTY; UNIQUE_MIN_SLOTS], occupied: 0, tombstones: 0 }
    }

    #[inline]
    fn find(&self, nodes: &[Node], var: u32, lo: NodeId, hi: NodeId) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = key_hash(var, lo, hi) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == SLOT_EMPTY {
                return None;
            }
            if s != SLOT_TOMB {
                let n = &nodes[s as usize];
                if n.var == var && n.lo == lo && n.hi == hi {
                    return Some(s);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a key known to be absent (callers `find` first), filling
    /// the first tombstone on the probe path if one exists.
    #[inline]
    fn insert(&mut self, var: u32, lo: NodeId, hi: NodeId, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = key_hash(var, lo, hi) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == SLOT_EMPTY {
                self.slots[i] = id;
                self.occupied += 1;
                return;
            }
            if s == SLOT_TOMB {
                self.slots[i] = id;
                self.occupied += 1;
                self.tombstones -= 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes the entry holding exactly `id` (probed via its key).
    fn remove(&mut self, var: u32, lo: NodeId, hi: NodeId, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = key_hash(var, lo, hi) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == SLOT_EMPTY {
                return; // not present — nothing to do
            }
            if s == id {
                self.slots[i] = SLOT_TOMB;
                self.occupied -= 1;
                self.tombstones += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Grows (or just rehashes away tombstones) when the table is 3/4
    /// full counting tombstones. Call before `insert`.
    #[inline]
    fn maybe_grow(&mut self, nodes: &[Node]) {
        if (self.occupied + self.tombstones + 1) * 4 < self.slots.len() * 3 {
            return;
        }
        // Double only when genuinely full of live entries; a table
        // clogged by tombstones rehashes at the same size.
        let target = if (self.occupied + 1) * 2 >= self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        self.rehash(nodes, target);
    }

    pub(crate) fn rehash(&mut self, nodes: &[Node], target: usize) {
        let old = std::mem::replace(&mut self.slots, vec![SLOT_EMPTY; target]);
        self.occupied = 0;
        self.tombstones = 0;
        let mask = target - 1;
        for s in old {
            if s == SLOT_EMPTY || s == SLOT_TOMB {
                continue;
            }
            let n = &nodes[s as usize];
            let mut i = key_hash(n.var, n.lo, n.hi) as usize & mask;
            while self.slots[i] != SLOT_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
            self.occupied += 1;
        }
    }

    /// Rebuilds the table from scratch over the live (non-free,
    /// non-terminal) nodes — used after a sweep or compaction.
    fn rebuild(&mut self, nodes: &[Node]) {
        let live = nodes
            .iter()
            .filter(|n| n.var != TERMINAL_LEVEL && n.var != FREE_LEVEL)
            .count();
        let mut target = UNIQUE_MIN_SLOTS;
        while live * 2 >= target {
            target *= 2;
        }
        self.slots = vec![SLOT_EMPTY; target];
        self.occupied = 0;
        self.tombstones = 0;
        let mask = target - 1;
        for (idx, n) in nodes.iter().enumerate() {
            if n.var == TERMINAL_LEVEL || n.var == FREE_LEVEL {
                continue;
            }
            let mut i = key_hash(n.var, n.lo, n.hi) as usize & mask;
            while self.slots[i] != SLOT_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
            self.occupied += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Bounded lossy computed cache
// ---------------------------------------------------------------------

const CACHE_MIN_BITS: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    k0: u64,
    k1: u64,
    r: u32,
}

const CACHE_SLOT_EMPTY: CacheSlot = CacheSlot { k0: 0, k1: 0, r: u32::MAX };

/// Direct-mapped computed table: a fixed power-of-two slot array that
/// overwrites on collision. Bounded by construction, so the memory
/// ceiling is a config knob rather than a function of the workload.
/// Starts at `2^8` slots and doubles under miss pressure up to
/// `2^max_bits`, so small scratch managers stay cheap.
///
/// The hit/miss counters are relaxed atomics: they are pure statistics
/// (never used for control flow), and keeping them tear-free lets
/// [`Manager::stats`] report exact totals even when concurrent-mode
/// rows are being aggregated by the bench harness.
#[derive(Debug)]
pub(crate) struct ComputedCache {
    slots: Vec<CacheSlot>,
    entries: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    misses_since_resize: u64,
    max_bits: u32,
}

impl Clone for ComputedCache {
    fn clone(&self) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        ComputedCache {
            slots: self.slots.clone(),
            entries: self.entries,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            misses_since_resize: self.misses_since_resize,
            max_bits: self.max_bits,
        }
    }
}

#[inline]
pub(crate) fn cache_pack(key: CacheKey) -> (u64, u64) {
    let (op, a, b, c) = key;
    (((op as u64) << 32) | a as u64, ((b as u64) << 32) | c as u64)
}

#[inline]
fn cache_index(k0: u64, k1: u64, mask: usize) -> usize {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = k0.wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ k1).wrapping_mul(SEED);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    (h ^ (h >> 32)) as usize & mask
}

impl ComputedCache {
    fn new(max_bits: u32) -> Self {
        use std::sync::atomic::AtomicU64;
        let bits = CACHE_MIN_BITS.min(max_bits.max(1));
        ComputedCache {
            slots: vec![CACHE_SLOT_EMPTY; 1 << bits],
            entries: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            misses_since_resize: 0,
            max_bits: max_bits.max(1),
        }
    }

    #[inline]
    pub(crate) fn get(&mut self, key: CacheKey) -> Option<NodeId> {
        use std::sync::atomic::Ordering;
        let (k0, k1) = cache_pack(key);
        let slot = self.slots[cache_index(k0, k1, self.slots.len() - 1)];
        if slot.r != u32::MAX && slot.k0 == k0 && slot.k1 == k1 {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(NodeId(slot.r))
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.misses_since_resize += 1;
            None
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, key: CacheKey, r: NodeId) {
        if self.misses_since_resize > (self.slots.len() as u64) * 2
            && self.slots.len() < (1usize << self.max_bits)
        {
            self.grow();
        }
        let (k0, k1) = cache_pack(key);
        let i = cache_index(k0, k1, self.slots.len() - 1);
        let slot = &mut self.slots[i];
        if slot.r == u32::MAX {
            self.entries += 1;
        }
        *slot = CacheSlot { k0, k1, r: r.0 };
    }

    /// Doubles the slot array, re-placing surviving entries.
    fn grow(&mut self) {
        let target = (self.slots.len() * 2).min(1 << self.max_bits);
        let old = std::mem::replace(&mut self.slots, vec![CACHE_SLOT_EMPTY; target]);
        self.entries = 0;
        self.misses_since_resize = 0;
        let mask = self.slots.len() - 1;
        for s in old {
            if s.r == u32::MAX {
                continue;
            }
            let slot = &mut self.slots[cache_index(s.k0, s.k1, mask)];
            if slot.r == u32::MAX {
                self.entries += 1;
            }
            *slot = s;
        }
    }

    /// Wipes every entry but keeps the current slot array — used after
    /// reordering and compaction, when cached results name moved or
    /// re-purposed ids.
    fn invalidate(&mut self) {
        self.slots.fill(CACHE_SLOT_EMPTY);
        self.entries = 0;
        self.misses_since_resize = 0;
    }

    /// Purges only the entries that mention a freed node, keeping the
    /// rest warm — the sweep does not move survivors, so their cached
    /// results stay valid. Must run right after the sweep, before any
    /// allocation can recycle a freed slot. Fields that encode
    /// variables or substitution ids rather than nodes are checked
    /// conservatively (a dead-looking alias purges a valid entry, which
    /// only costs a recomputation, never correctness).
    fn retain_live(&mut self, nodes: &[Node]) {
        let live = |x: u32| {
            let i = x as usize;
            i >= nodes.len() || nodes[i].var != FREE_LEVEL
        };
        for slot in &mut self.slots {
            if slot.r == u32::MAX {
                continue;
            }
            let a = slot.k0 as u32;
            let b = (slot.k1 >> 32) as u32;
            let c = slot.k1 as u32;
            if !(live(slot.r) && live(a) && live(b) && live(c)) {
                *slot = CACHE_SLOT_EMPTY;
                self.entries -= 1;
            }
        }
    }

    /// Drops the entries *and* the memory, shrinking back to the
    /// initial size.
    fn shrink(&mut self) {
        *self = ComputedCache::new(self.max_bits);
    }

    fn set_max_bits(&mut self, max_bits: u32) {
        self.max_bits = max_bits.max(1);
        if self.slots.len() > (1 << self.max_bits) {
            self.shrink();
        }
    }
}

// ---------------------------------------------------------------------
// Root handles
// ---------------------------------------------------------------------

/// A counted guard naming a node the garbage collector must keep.
///
/// Obtained from [`Manager::protect`]; hand it back to
/// [`Manager::release`] when the function may die. The guard is a plain
/// token (no `Drop` magic — the manager is not behind shared ownership),
/// so it is `#[must_use]`: losing one leaks a root until the manager is
/// dropped, which is safe but defeats collection.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a Ref pins its node until released — hold it or release it"]
pub struct Ref {
    id: NodeId,
}

impl Ref {
    /// The protected node.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.id
    }
}

/// The explicit root set: a multiset of node ids the collector treats
/// as live. Managed through [`Manager::protect`] / [`Manager::release`].
#[derive(Debug, Clone, Default)]
pub struct RootSet {
    counts: FxHashMap<u32, u32>,
}

impl RootSet {
    #[inline]
    fn add(&mut self, id: NodeId) {
        *self.counts.entry(id.0).or_insert(0) += 1;
    }

    #[inline]
    fn remove(&mut self, id: NodeId) {
        match self.counts.get_mut(&id.0) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&id.0);
            }
            None => panic!("release of an unprotected node {id}"),
        }
    }

    fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.counts.keys().map(|&k| NodeId(k))
    }

    /// Number of distinct protected nodes.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no node is protected.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// A reduced ordered BDD manager.
///
/// All functions built through one manager share structure via hash
/// consing, so node equality ([`NodeId`] equality) is function equality.
/// Dead nodes are reclaimed by mark-and-sweep collection: callers pin
/// long-lived functions with [`Manager::protect`] (or pass them as
/// explicit roots to [`Manager::gc_with_roots`] / [`Manager::maybe_gc`])
/// and everything unreachable from the root set, the variable nodes and
/// the registered substitutions is swept. Collection only happens at
/// those explicit calls — never in the middle of an operation — so ids
/// held across a sequence of operations without an intervening GC call
/// remain valid.
///
/// # Example
///
/// ```
/// use symbi_bdd::Manager;
/// let mut m = Manager::new();
/// let (a, b, c) = (m.new_var(), m.new_var(), m.new_var());
/// // Majority of three variables.
/// let ab = m.and(a, b);
/// let ac = m.and(a, c);
/// let bc = m.and(b, c);
/// let maj = m.or_many([ab, ac, bc]);
/// assert_eq!(m.sat_count(maj, 3), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTable,
    pub(crate) cache: ComputedCache,
    num_vars: u32,
    var_nodes: Vec<NodeId>,
    /// Variable → level (its position in the order, 0 = top).
    pub(crate) var2level: Vec<u32>,
    /// Level → variable (inverse of `var2level`).
    pub(crate) level2var: Vec<u32>,
    pub(crate) substitutions: Vec<FxHashMap<u32, NodeId>>,
    root_set: RootSet,
    config: KernelConfig,
    /// Head of the intrusive free list threaded through dead slots
    /// (`lo` of a free slot is the next free index); `u32::MAX` = empty.
    free_head: u32,
    free_count: usize,
    pub(crate) peak_live: usize,
    /// Live-node count at which the next auto-GC fires.
    gc_threshold: usize,
    gc_runs: u64,
    gc_freed: u64,
    reorder_runs: u64,
    /// Live-node count at which the next auto-reorder fires.
    reorder_at: usize,
    /// Shared-kernel state (concurrent computed cache and its drained
    /// hit/miss totals). Only materialized when `shared_workers >= 2`.
    pub(crate) shared: crate::shared::SharedHooks,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

/// Size statistics for a [`Manager`], as returned by [`Manager::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Live nodes, including the two terminals.
    pub nodes: usize,
    /// Allocated node slots (live + free-listed), including terminals.
    pub allocated: usize,
    /// High-water mark of the live-node count.
    pub peak_live: usize,
    /// Number of declared variables.
    pub vars: usize,
    /// Entries currently held in the computed table.
    pub cache_entries: usize,
    /// Computed-table lookups that hit.
    pub cache_hits: u64,
    /// Computed-table lookups that missed.
    pub cache_misses: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Total nodes reclaimed across all collections.
    pub gc_freed: u64,
    /// In-place reorderings performed.
    pub reorder_runs: u64,
}

impl Manager {
    /// Creates an empty manager with no variables and default
    /// [`KernelConfig`].
    pub fn new() -> Self {
        Manager::with_kernel_config(KernelConfig::default())
    }

    /// Creates an empty manager with the given kernel configuration.
    pub fn with_kernel_config(config: KernelConfig) -> Self {
        let mut m = Manager {
            nodes: Vec::with_capacity(1 << 12),
            unique: UniqueTable::new(),
            cache: ComputedCache::new(config.cache_bits),
            num_vars: 0,
            var_nodes: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            substitutions: Vec::new(),
            root_set: RootSet::default(),
            config,
            free_head: u32::MAX,
            free_count: 0,
            peak_live: 2,
            gc_threshold: config.gc_min_nodes.max(2),
            gc_runs: 0,
            gc_freed: 0,
            reorder_runs: 0,
            reorder_at: config.reorder_threshold.max(2),
            shared: crate::shared::SharedHooks::new(),
        };
        // Index 0: FALSE, index 1: TRUE.
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: NodeId::FALSE, hi: NodeId::FALSE });
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: NodeId::TRUE, hi: NodeId::TRUE });
        m
    }

    /// Creates a manager with `n` variables already declared.
    pub fn with_vars(n: usize) -> Self {
        let mut m = Manager::new();
        for _ in 0..n {
            m.new_var();
        }
        m
    }

    /// The kernel configuration in effect.
    pub fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    /// Replaces the kernel configuration. A smaller cache bound takes
    /// effect immediately; GC/reorder thresholds re-arm from the new
    /// floors.
    pub fn set_kernel_config(&mut self, config: KernelConfig) {
        self.config = config;
        self.cache.set_max_bits(config.cache_bits);
        self.gc_threshold = self.gc_threshold.max(config.gc_min_nodes.max(2));
        self.reorder_at = self.reorder_at.max(config.reorder_threshold.max(2));
    }

    /// Declares a fresh variable at the bottom of the order and returns its
    /// positive literal.
    pub fn new_var(&mut self) -> NodeId {
        let v = self.num_vars;
        self.num_vars += 1;
        self.var2level.push(v);
        self.level2var.push(v);
        let node = self.mk(v, NodeId::FALSE, NodeId::TRUE);
        self.var_nodes.push(node);
        node
    }

    /// Creates a manager whose variable *order* is the given permutation:
    /// `order[i]` is the variable sitting at level `i` (level 0 = top).
    /// All `order.len()` variables are declared; [`VarId`]s keep their
    /// identity independent of placement.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_var_order(order: &[VarId]) -> Self {
        let n = order.len();
        let mut m = Manager::with_vars(n);
        let mut var2level = vec![u32::MAX; n];
        for (lvl, v) in order.iter().enumerate() {
            assert!(v.index() < n, "order mentions undeclared variable {v}");
            assert_eq!(var2level[v.index()], u32::MAX, "duplicate variable {v} in order");
            var2level[v.index()] = lvl as u32;
        }
        m.var2level = var2level;
        m.level2var = order.iter().map(|v| v.0).collect();
        m
    }

    /// The level (order position, 0 = top) of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is undeclared.
    pub fn level_of(&self, v: VarId) -> usize {
        self.var2level[v.index()] as usize
    }

    /// The variables in order, top to bottom.
    pub fn variable_order(&self) -> Vec<VarId> {
        self.level2var.iter().map(|&v| VarId(v)).collect()
    }

    /// Rebuilds `roots` in a fresh manager whose variable order is the
    /// given permutation, returning the manager and the mapped roots.
    /// Variable identities are preserved (only levels change), so
    /// evaluation semantics are identical.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of this manager's variables.
    pub fn reordered(&self, roots: &[NodeId], order: &[VarId]) -> (Manager, Vec<NodeId>) {
        assert_eq!(order.len(), self.num_vars(), "order must cover every variable");
        let mut dst = Manager::with_var_order(order);
        let identity: crate::hash::FxHashMap<VarId, VarId> =
            (0..self.num_vars() as u32).map(|i| (VarId(i), VarId(i))).collect();
        let mapped = roots.iter().map(|&r| dst.transfer_from(self, r, &identity)).collect();
        (dst, mapped)
    }

    /// Declares `n` fresh variables, returning their positive literals.
    pub fn new_vars(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of declared variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The positive literal of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has not been declared.
    #[inline]
    pub fn var(&self, v: VarId) -> NodeId {
        self.var_nodes[v.index()]
    }

    /// The literal of variable `v` with the given phase.
    pub fn literal(&mut self, v: VarId, positive: bool) -> NodeId {
        let node = self.var(v);
        if positive {
            node
        } else {
            self.not(node)
        }
    }

    /// Top variable (level) of `f`; `None` for terminals.
    #[inline]
    pub fn top_var(&self, f: NodeId) -> Option<VarId> {
        let v = self.nodes[f.index()].var;
        (v != TERMINAL_LEVEL).then_some(VarId(v))
    }

    #[inline]
    pub(crate) fn level(&self, f: NodeId) -> u32 {
        let v = self.nodes[f.index()].var;
        if v == TERMINAL_LEVEL {
            TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    #[inline]
    pub(crate) fn var_at_level(&self, level: u32) -> u32 {
        self.level2var[level as usize]
    }

    #[inline]
    pub(crate) fn node(&self, f: NodeId) -> Node {
        self.nodes[f.index()]
    }

    /// Cofactors of `f` with respect to its own top variable.
    /// For terminals returns `(f, f)`.
    #[inline]
    pub fn branches(&self, f: NodeId) -> (NodeId, NodeId) {
        let n = self.nodes[f.index()];
        (n.lo, n.hi)
    }

    /// Live nodes (allocated minus free-listed), including terminals.
    #[inline]
    pub fn live_node_count(&self) -> usize {
        self.nodes.len() - self.free_count
    }

    /// Allocates a node slot, preferring the free list.
    #[inline]
    fn alloc(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        let id = if self.free_head != u32::MAX {
            let i = self.free_head;
            self.free_head = self.nodes[i as usize].lo.0;
            self.free_count -= 1;
            self.nodes[i as usize] = Node { var, lo, hi };
            NodeId(i)
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(Node { var, lo, hi });
            NodeId(i)
        };
        let live = self.live_node_count();
        if live > self.peak_live {
            self.peak_live = live;
        }
        id
    }

    /// Hash-consed node constructor (the `MK` of the literature).
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.var2level[var as usize] < self.level(lo)
                && self.var2level[var as usize] < self.level(hi),
            "ordering violated: node variable must precede both children"
        );
        if let Some(id) = self.unique.find(&self.nodes, var, lo, hi) {
            return NodeId(id);
        }
        let id = self.alloc(var, lo, hi);
        self.unique.maybe_grow(&self.nodes);
        self.unique.insert(var, lo, hi, id.0);
        id
    }

    /// Pins `f` against garbage collection, returning the guard.
    pub fn protect(&mut self, f: NodeId) -> Ref {
        if !f.is_terminal() {
            self.root_set.add(f);
        }
        Ref { id: f }
    }

    /// Releases a guard obtained from [`Manager::protect`].
    ///
    /// # Panics
    ///
    /// Panics if the guard's node is not currently protected (double
    /// release, or a guard from another manager).
    pub fn release(&mut self, r: Ref) {
        if !r.id.is_terminal() {
            self.root_set.remove(r.id);
        }
    }

    /// The current explicit root set.
    pub fn root_set(&self) -> &RootSet {
        &self.root_set
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            NodeId::FALSE => return NodeId::TRUE,
            NodeId::TRUE => return NodeId::FALSE,
            _ => {}
        }
        let key = (Op::Not, f.0, 0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return NodeId::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::And, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let r = self.binary_step(Op::And, a, b);
        self.cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return NodeId::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Or, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let r = self.binary_step(Op::Or, a, b);
        self.cache.insert(key, r);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return NodeId::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Xor, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let r = self.binary_step(Op::Xor, a, b);
        self.cache.insert(key, r);
        r
    }

    fn binary_step(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if lg == top { self.branches(g) } else { (g, g) };
        let (lo, hi) = match op {
            Op::And => (self.and(f0, g0), self.and(f1, g1)),
            Op::Or => (self.or(f0, g0), self.or(f1, g1)),
            Op::Xor => (self.xor(f0, g0), self.xor(f1, g1)),
            _ => unreachable!("binary_step only handles AND/OR/XOR"),
        };
        let var = self.var_at_level(top);
        self.mk(var, lo, hi)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Difference `f · ¬g`.
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// If-then-else: `f·g + ¬f·h`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        let key = (Op::Ite, f.0, g.0, h.0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = if self.level(f) == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if self.level(g) == top { self.branches(g) } else { (g, g) };
        let (h0, h1) = if self.level(h) == top { self.branches(h) } else { (h, h) };
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let var = self.var_at_level(top);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// `true` iff `f ≤ g` in the "less-than-or-equal" partial order of the
    /// paper (§3.2.1), i.e. `f → g` is a tautology.
    pub fn leq(&mut self, f: NodeId, g: NodeId) -> bool {
        self.diff(f, g).is_false()
    }

    /// Balanced conjunction of many operands.
    pub fn and_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::And)
    }

    /// Balanced disjunction of many operands.
    pub fn or_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::Or)
    }

    /// Balanced exclusive-or of many operands.
    pub fn xor_many<I: IntoIterator<Item = NodeId>>(&mut self, fs: I) -> NodeId {
        self.reduce_many(fs.into_iter().collect(), Op::Xor)
    }

    fn reduce_many(&mut self, mut fs: Vec<NodeId>, op: Op) -> NodeId {
        if fs.is_empty() {
            return match op {
                Op::And => NodeId::TRUE,
                _ => NodeId::FALSE,
            };
        }
        while fs.len() > 1 {
            let mut next = Vec::with_capacity(fs.len().div_ceil(2));
            for pair in fs.chunks(2) {
                let r = if pair.len() == 2 {
                    match op {
                        Op::And => self.and(pair[0], pair[1]),
                        Op::Or => self.or(pair[0], pair[1]),
                        Op::Xor => self.xor(pair[0], pair[1]),
                        _ => unreachable!(),
                    }
                } else {
                    pair[0]
                };
                next.push(r);
            }
            fs = next;
        }
        fs[0]
    }

    /// Positive cofactor of `f` with respect to variable `v`.
    pub fn cofactor(&mut self, f: NodeId, v: VarId, value: bool) -> NodeId {
        let constant = if value { NodeId::TRUE } else { NodeId::FALSE };
        self.compose(f, v, constant)
    }

    /// Conjunction of the positive literals of `vars` (a positive cube).
    pub fn cube(&mut self, vars: &[VarId]) -> NodeId {
        let mut sorted: Vec<VarId> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.sort_by_key(|&v| self.level_of(v));
        let mut acc = NodeId::TRUE;
        for &v in sorted.iter().rev() {
            acc = self.mk(v.0, NodeId::FALSE, acc);
        }
        acc
    }

    /// The minterm (full cube) selecting exactly `assignment` over `vars`,
    /// pairing each variable with its phase.
    pub fn minterm(&mut self, assignment: &[(VarId, bool)]) -> NodeId {
        let mut sorted: Vec<(VarId, bool)> = assignment.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| self.level_of(v));
        let mut acc = NodeId::TRUE;
        for &(v, phase) in sorted.iter().rev() {
            acc = if phase {
                self.mk(v.0, NodeId::FALSE, acc)
            } else {
                self.mk(v.0, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// Drops the computed table, returning its memory (the slot array
    /// shrinks back to its initial size). Node storage is retained.
    pub fn clear_cache(&mut self) {
        self.cache.shrink();
        self.shared.invalidate();
    }

    /// Current size statistics.
    pub fn stats(&self) -> ManagerStats {
        use std::sync::atomic::Ordering;
        ManagerStats {
            nodes: self.live_node_count(),
            allocated: self.nodes.len(),
            peak_live: self.peak_live,
            vars: self.num_vars as usize,
            cache_entries: self.cache.entries,
            cache_hits: self.cache.hits.load(Ordering::Relaxed) + self.shared.hits,
            cache_misses: self.cache.misses.load(Ordering::Relaxed) + self.shared.misses,
            gc_runs: self.gc_runs,
            gc_freed: self.gc_freed,
            reorder_runs: self.reorder_runs,
        }
    }
}

// ---------------------------------------------------------------------
// Garbage collection, compaction, in-place sifting
// ---------------------------------------------------------------------

impl Manager {
    /// All implicit roots: the explicit root set, the variable nodes,
    /// and every registered substitution's values.
    fn push_implicit_roots(&self, out: &mut Vec<NodeId>) {
        out.extend(self.root_set.ids());
        out.extend(self.var_nodes.iter().copied());
        for subst in &self.substitutions {
            out.extend(subst.values().copied());
        }
    }

    /// Marks everything reachable from `roots` into `marked` (a bitset
    /// indexed by node slot).
    fn mark(&self, roots: &[NodeId], marked: &mut [bool]) {
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if !r.is_terminal() && !marked[r.index()] {
                marked[r.index()] = true;
                stack.push(r.0);
            }
        }
        while let Some(i) = stack.pop() {
            let n = self.nodes[i as usize];
            debug_assert_ne!(n.var, FREE_LEVEL, "marked a free slot — stale root?");
            for c in [n.lo, n.hi] {
                if !c.is_terminal() && !marked[c.index()] {
                    marked[c.index()] = true;
                    stack.push(c.0);
                }
            }
        }
    }

    /// Mark-and-sweep collection keeping `extra_roots`, the explicit
    /// root set, the variable nodes and registered substitutions.
    /// Returns the number of nodes reclaimed. Every id not reachable
    /// from those roots is invalid afterwards (its slot goes on the
    /// free list); computed-table entries naming a freed node are
    /// purged, the rest stay warm since survivors do not move.
    pub fn gc_with_roots(&mut self, extra_roots: &[NodeId]) -> usize {
        let mut roots = extra_roots.to_vec();
        self.push_implicit_roots(&mut roots);
        let mut marked = vec![false; self.nodes.len()];
        self.mark(&roots, &mut marked);
        let mut freed = 0usize;
        // Sweep high-to-low so the free list hands out low indices
        // first — allocation order (hence node ids) stays deterministic.
        for i in (2..self.nodes.len()).rev() {
            if marked[i] || self.nodes[i].var == FREE_LEVEL {
                continue;
            }
            self.nodes[i] = Node { var: FREE_LEVEL, lo: NodeId(self.free_head), hi: NodeId::FALSE };
            self.free_head = i as u32;
            self.free_count += 1;
            freed += 1;
        }
        if freed > 0 {
            self.unique.rebuild(&self.nodes);
            // Survivors did not move, so only entries naming a freed
            // node go; the rest of the computed table stays warm. The
            // shared cache has no per-entry liveness walk, so it is
            // dropped wholesale at this safe point.
            self.cache.retain_live(&self.nodes);
            self.shared.invalidate();
        }
        self.gc_runs += 1;
        self.gc_freed += freed as u64;
        freed
    }

    /// [`Manager::gc_with_roots`] with only the implicit roots (the
    /// explicit root set, variable nodes, substitutions).
    pub fn gc(&mut self) -> usize {
        self.gc_with_roots(&[])
    }

    /// The auto-GC safe point: collects (keeping `extra_roots` plus the
    /// implicit roots) when the kernel's dead-ratio policy says it is
    /// worth it, and — when [`KernelConfig::auto_reorder`] is on — may
    /// also run in-place sifting. Call this between operations, never
    /// while holding ids outside `extra_roots`/the root set.
    ///
    /// Returns the number of nodes reclaimed (0 when the policy held
    /// fire). The trigger is a pure function of the operation history,
    /// so identical op sequences collect at identical points.
    pub fn maybe_gc(&mut self, extra_roots: &[NodeId]) -> usize {
        if !self.config.auto_gc || self.live_node_count() < self.gc_threshold {
            return 0;
        }
        let freed = self.gc_with_roots(extra_roots);
        let live = self.live_node_count();
        let floor = self.config.gc_min_nodes.max(2);
        // Mostly-live managers back off harder so we don't thrash.
        self.gc_threshold = if freed * 4 < live { (live * 4).max(floor) } else { (live * 2).max(floor) };
        if self.config.auto_reorder && live >= self.reorder_at {
            self.sift_in_place(extra_roots);
            self.reorder_runs += 1;
            let live = self.live_node_count();
            self.reorder_at = (live * 2).max(self.config.reorder_threshold.max(2));
        }
        freed
    }

    /// The governed twin of [`Manager::maybe_gc`]: the `bdd.gc`
    /// fault-injection site and an interrupt poll guard the safe point
    /// *before* any mutation, so on `Err` the manager is untouched
    /// (every previously valid id stays valid) and the caller can
    /// degrade or unwind with all roots intact.
    pub fn try_maybe_gc(
        &mut self,
        extra_roots: &[NodeId],
        gov: &ResourceGovernor,
    ) -> Result<usize, ResourceExhausted> {
        gov.fault_site(FaultSite::BddGc)?;
        gov.poll_interrupt()?;
        Ok(self.maybe_gc(extra_roots))
    }

    /// Collects and *compacts*: live nodes slide down to a contiguous
    /// prefix (preserving their relative order, so operand-normalized
    /// results stay deterministic), the node array is truncated and
    /// shrunk, and the remapped `roots` are returned. Keeps the same
    /// roots as [`Manager::gc_with_roots`]. All prior ids are invalid
    /// afterwards — including previously protected ones, whose root-set
    /// entries are remapped in place.
    pub fn compact(&mut self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut all = roots.to_vec();
        self.push_implicit_roots(&mut all);
        let mut marked = vec![false; self.nodes.len()];
        self.mark(&all, &mut marked);
        // Order-preserving remap: terminals stay put, live nodes pack
        // ascending.
        let mut remap = vec![u32::MAX; self.nodes.len()];
        remap[0] = 0;
        remap[1] = 1;
        let mut next = 2u32;
        for i in 2..self.nodes.len() {
            if marked[i] {
                remap[i] = next;
                next += 1;
            }
        }
        // Slide: for ascending i, the target t = remap[i] satisfies
        // t <= i, and slot t's old occupant (if any) was already moved,
        // so the write never clobbers an unread live node.
        for i in 2..self.nodes.len() {
            if !marked[i] {
                continue;
            }
            let n = self.nodes[i];
            self.nodes[remap[i] as usize] = Node {
                var: n.var,
                lo: NodeId(remap[n.lo.index()]),
                hi: NodeId(remap[n.hi.index()]),
            };
        }
        self.nodes.truncate(next as usize);
        self.nodes.shrink_to_fit();
        self.free_head = u32::MAX;
        self.free_count = 0;
        self.var_nodes = self.var_nodes.iter().map(|v| NodeId(remap[v.index()])).collect();
        for subst in &mut self.substitutions {
            for v in subst.values_mut() {
                *v = NodeId(remap[v.index()]);
            }
        }
        let old_roots = std::mem::take(&mut self.root_set);
        for (id, count) in old_roots.counts {
            let new = remap[id as usize];
            *self.root_set.counts.entry(new).or_insert(0) += count;
        }
        self.unique.rebuild(&self.nodes);
        self.cache.shrink();
        self.shared.invalidate();
        self.gc_runs += 1;
        self.gc_freed += (marked.len() - next as usize) as u64;
        roots.iter().map(|r| NodeId(remap[r.index()])).collect()
    }

    /// In-place Rudell sifting: moves each variable (most populous
    /// first) through the order by adjacent-level swaps, keeps the best
    /// level seen, and aborts a variable's excursion when the diagram
    /// grows past 120% of its best size. Ids reachable from `roots`,
    /// the root set, the variable nodes and registered substitutions
    /// remain valid (nodes are rewritten in place, never moved);
    /// everything else is collected first.
    pub fn sift_in_place(&mut self, roots: &[NodeId]) {
        let gov = ResourceGovernor::unlimited();
        self.sift_in_place_governed(roots, &gov).expect("unlimited governor cannot trip");
    }

    /// The governed twin of [`Manager::sift_in_place`]: crosses the
    /// `bdd.sift` fault-injection site and polls for interruption
    /// before each variable's excursion. On `Err` the sift stops at a
    /// whole-variable boundary — the diagram is canonical there, all
    /// ids reachable from `roots` plus the implicit roots stay valid,
    /// and the (order-dependent) computed table has been invalidated —
    /// so a cancelled reorder degrades to "partially improved order",
    /// never to a corrupt manager.
    pub fn try_sift_in_place(
        &mut self,
        roots: &[NodeId],
        gov: &ResourceGovernor,
    ) -> Result<(), ResourceExhausted> {
        self.sift_in_place_governed(roots, gov)
    }

    fn sift_in_place_governed(
        &mut self,
        roots: &[NodeId],
        gov: &ResourceGovernor,
    ) -> Result<(), ResourceExhausted> {
        let n = self.num_vars as usize;
        if n < 2 {
            return Ok(());
        }
        self.gc_with_roots(roots);
        // External + structural reference counts; a node is freed the
        // moment its count returns to zero during a swap.
        let mut refs = vec![0u32; self.nodes.len()];
        for i in 2..self.nodes.len() {
            let nd = self.nodes[i];
            if nd.var == FREE_LEVEL {
                continue;
            }
            for c in [nd.lo, nd.hi] {
                if !c.is_terminal() {
                    refs[c.index()] += 1;
                }
            }
        }
        let mut ext = roots.to_vec();
        self.push_implicit_roots(&mut ext);
        for r in ext {
            if !r.is_terminal() {
                refs[r.index()] += 1;
            }
        }
        let mut by_var: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 2..self.nodes.len() {
            let v = self.nodes[i].var;
            if v != FREE_LEVEL {
                by_var[v as usize].push(i as u32);
            }
        }
        // Most-populous-first agenda, ties by variable index.
        let mut agenda: Vec<u32> = (0..n as u32).collect();
        agenda.sort_by_key(|&v| (std::cmp::Reverse(by_var[v as usize].len()), v));
        let mut verdict = Ok(());
        for v in agenda {
            if let Err(e) = gov.fault_site(FaultSite::BddSift).and_then(|_| gov.poll_interrupt()) {
                verdict = Err(e);
                break;
            }
            self.sift_one(v, &mut refs, &mut by_var);
        }
        // Levels may have changed even on the early-out path; the
        // order-dependent computed tables must go either way.
        self.cache.invalidate();
        self.shared.invalidate();
        self.reorder_runs += 1;
        verdict
    }

    /// Sifts one variable: down to the bottom, back up to the top,
    /// then to the best level seen, aborting an excursion direction
    /// when size exceeds the growth bound.
    fn sift_one(&mut self, v: u32, refs: &mut Vec<u32>, by_var: &mut [Vec<u32>]) {
        let n = self.num_vars as usize;
        let start = self.var2level[v as usize] as usize;
        let mut best_size = self.live_node_count();
        let bound = best_size + best_size / 5;
        let mut best_level = start;
        let mut cur = start;
        while cur + 1 < n {
            self.swap_adjacent(cur, refs, by_var);
            cur += 1;
            let s = self.live_node_count();
            if s < best_size {
                best_size = s;
                best_level = cur;
            }
            if s > bound {
                break;
            }
        }
        while cur > 0 {
            self.swap_adjacent(cur - 1, refs, by_var);
            cur -= 1;
            let s = self.live_node_count();
            if s < best_size {
                best_size = s;
                best_level = cur;
            }
            if s > bound {
                break;
            }
        }
        while cur < best_level {
            self.swap_adjacent(cur, refs, by_var);
            cur += 1;
        }
        while cur > best_level {
            self.swap_adjacent(cur - 1, refs, by_var);
            cur -= 1;
        }
    }

    /// Hash-consed constructor used inside a swap, where the level
    /// invariant is transiently violated (so `mk`'s debug assertion
    /// cannot be used). Maintains `refs` and `by_var`.
    fn mk_sift(
        &mut self,
        var: u32,
        lo: NodeId,
        hi: NodeId,
        refs: &mut Vec<u32>,
        by_var: &mut [Vec<u32>],
    ) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(id) = self.unique.find(&self.nodes, var, lo, hi) {
            return NodeId(id);
        }
        let id = self.alloc(var, lo, hi);
        if id.index() >= refs.len() {
            refs.resize(id.index() + 1, 0);
        }
        for c in [lo, hi] {
            if !c.is_terminal() {
                refs[c.index()] += 1;
            }
        }
        self.unique.maybe_grow(&self.nodes);
        self.unique.insert(var, lo, hi, id.0);
        by_var[var as usize].push(id.0);
        id
    }

    /// Drops one structural reference to `f`, freeing it (and
    /// cascading) when the count reaches zero.
    fn dec_ref(&mut self, f: NodeId, refs: &mut [u32]) {
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() {
                continue;
            }
            refs[g.index()] -= 1;
            if refs[g.index()] == 0 {
                let nd = self.nodes[g.index()];
                self.unique.remove(nd.var, nd.lo, nd.hi, g.0);
                self.nodes[g.index()] =
                    Node { var: FREE_LEVEL, lo: NodeId(self.free_head), hi: NodeId::FALSE };
                self.free_head = g.0;
                self.free_count += 1;
                stack.push(nd.lo);
                stack.push(nd.hi);
            }
        }
    }

    /// Swaps levels `l` and `l + 1`. Only nodes of the upper variable
    /// that depend on the lower one are rewritten (in place, keeping
    /// their ids — external references survive); independent upper
    /// nodes just change level implicitly via the level maps.
    fn swap_adjacent(&mut self, l: usize, refs: &mut Vec<u32>, by_var: &mut [Vec<u32>]) {
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        // Snapshot the upper variable's nodes; the list may hold stale
        // or duplicate ids from earlier swaps (freed slots, reuse), so
        // filter to slots still tagged `x` and dedup.
        let snapshot = std::mem::take(&mut by_var[x as usize]);
        let mut list: Vec<u32> =
            snapshot.into_iter().filter(|&i| self.nodes[i as usize].var == x).collect();
        list.sort_unstable();
        list.dedup();
        let mut keep: Vec<u32> = Vec::new();
        for &i in &list {
            let nd = self.nodes[i as usize];
            let lo_y = !nd.lo.is_terminal() && self.nodes[nd.lo.index()].var == y;
            let hi_y = !nd.hi.is_terminal() && self.nodes[nd.hi.index()].var == y;
            if !lo_y && !hi_y {
                // Independent of y: stays an x-node, one level lower.
                keep.push(i);
                continue;
            }
            let (f00, f01) = if lo_y {
                let c = self.nodes[nd.lo.index()];
                (c.lo, c.hi)
            } else {
                (nd.lo, nd.lo)
            };
            let (f10, f11) = if hi_y {
                let c = self.nodes[nd.hi.index()];
                (c.lo, c.hi)
            } else {
                (nd.hi, nd.hi)
            };
            self.unique.remove(x, nd.lo, nd.hi, i);
            // The new cofactor keys (x, f00, f10) have both children
            // strictly below level l + 1, so they can only collide with
            // y-independent x-nodes — which is exactly the sharing we
            // want — never with an unprocessed entry of `list`.
            let new_lo = self.mk_sift(x, f00, f10, refs, by_var);
            let new_hi = self.mk_sift(x, f01, f11, refs, by_var);
            for c in [new_lo, new_hi] {
                if !c.is_terminal() {
                    refs[c.index()] += 1;
                }
            }
            self.nodes[i as usize] = Node { var: y, lo: new_lo, hi: new_hi };
            self.unique.maybe_grow(&self.nodes);
            self.unique.insert(y, new_lo, new_hi, i);
            by_var[y as usize].push(i);
            self.dec_ref(nd.lo, refs);
            self.dec_ref(nd.hi, refs);
        }
        // mk_sift has been pushing fresh x-nodes into by_var[x].
        by_var[x as usize].extend(keep);
        self.level2var.swap(l, l + 1);
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
    }

    /// In-place sifting on a clone: returns the sifted manager and the
    /// mapped roots (ids are preserved by in-place sifting, so the
    /// mapping is the identity).
    ///
    /// Complexity is the classic Rudell bound — each variable makes one
    /// excursion through the order via adjacent swaps that touch only
    /// the two levels involved — rather than the `O(vars² · size)`
    /// rebuild-per-trial of the previous implementation.
    pub fn sifted(&self, roots: &[NodeId]) -> (Manager, Vec<NodeId>) {
        let mut m = self.clone();
        m.sift_in_place(roots);
        (m, roots.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three(m: &mut Manager) -> (NodeId, NodeId, NodeId) {
        (m.new_var(), m.new_var(), m.new_var())
    }

    #[test]
    fn constants_are_canonical() {
        let m = Manager::new();
        assert_eq!(m.stats().nodes, 2);
        assert!(NodeId::FALSE.is_false());
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2);
        let before = m.stats().nodes;
        let _ = m.and(a, b);
        assert_eq!(m.stats().nodes, before);
    }

    #[test]
    fn involution_of_not() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let f = m.xor(a, b);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let ab = m.and(a, b);
        let abc = m.and(ab, c);
        let lhs = m.not(abc);
        let (na, nb, nc) = (m.not(a), m.not(b), m.not(c));
        let rhs = m.or_many([na, nb, nc]);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_is_mux() {
        let mut m = Manager::new();
        let (s, a, b) = three(&mut m);
        let f = m.ite(s, a, b);
        let sa = m.and(s, a);
        let ns = m.not(s);
        let nsb = m.and(ns, b);
        let g = m.or(sa, nsb);
        assert_eq!(f, g);
    }

    #[test]
    fn xor_via_ite() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let nb = m.not(b);
        let f = m.ite(a, nb, b);
        let g = m.xor(a, b);
        assert_eq!(f, g);
    }

    #[test]
    fn leq_partial_order() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        // ab ≤ a ≤ a+b, and the order is not total.
        assert!(m.leq(ab, a));
        assert!(m.leq(a, aorb));
        assert!(m.leq(ab, aorb));
        assert!(!m.leq(aorb, ab));
        assert!(!m.leq(a, b));
        assert!(!m.leq(b, a));
    }

    #[test]
    fn cube_and_minterm() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let cube = m.cube(&[VarId(0), VarId(2)]);
        let ac = m.and(a, c);
        assert_eq!(cube, ac);
        let mt = m.minterm(&[(VarId(0), true), (VarId(1), false), (VarId(2), true)]);
        let nb = m.not(b);
        let expect = m.and_many([a, nb, c]);
        assert_eq!(mt, expect);
    }

    #[test]
    fn many_op_identities() {
        let mut m = Manager::new();
        assert_eq!(m.and_many([]), NodeId::TRUE);
        assert_eq!(m.or_many([]), NodeId::FALSE);
        assert_eq!(m.xor_many([]), NodeId::FALSE);
        let a = m.new_var();
        assert_eq!(m.and_many([a]), a);
        assert_eq!(m.xor_many([a, a]), NodeId::FALSE);
    }

    #[test]
    fn implies_and_diff() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let ab = m.and(a, b);
        let imp = m.implies(ab, a);
        assert!(imp.is_true());
        let d = m.diff(a, ab);
        let nb = m.not(b);
        let anb = m.and(a, nb);
        assert_eq!(d, anb);
    }

    #[test]
    fn cofactor_shannon() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let bc = m.or(b, c);
        let f = m.and(a, bc); // a(b+c)
        let f1 = m.cofactor(f, VarId(0), true);
        let f0 = m.cofactor(f, VarId(0), false);
        assert_eq!(f1, bc);
        assert!(f0.is_false());
        // Shannon expansion rebuilds f.
        let re = m.ite(a, f1, f0);
        assert_eq!(re, f);
    }

    // --- kernel: GC, rooting, compaction, caching ---

    #[test]
    fn gc_reclaims_unrooted_nodes_and_keeps_rooted_ones() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let ab = m.and(a, b);
        let keep = m.or(ab, c);
        let guard = m.protect(keep);
        // Dead weight: a function nothing roots.
        let x = m.xor(a, c);
        let _dead = m.and(x, b);
        let live_before = m.live_node_count();
        let freed = m.gc();
        assert!(freed > 0, "the xor cone is unrooted and must be swept");
        assert!(m.live_node_count() < live_before);
        // The kept function still evaluates correctly.
        assert!(m.eval(keep, &[true, true, false]));
        assert!(!m.eval(keep, &[false, true, false]));
        // Rebuilding the dead function re-derives nodes without issue.
        let x2 = m.xor(a, c);
        let _ = m.and(x2, b);
        m.release(guard);
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut m = Manager::new();
        let (a, b, c) = three(&mut m);
        let t = m.and(a, b);
        let _dead = m.or(t, c);
        let allocated = m.stats().allocated;
        let freed = m.gc();
        assert!(freed > 0);
        // Rebuilding an equal-sized cone fits entirely in freed slots.
        let t2 = m.and(a, b);
        let _f2 = m.or(t2, c);
        assert_eq!(m.stats().allocated, allocated, "free slots must be reused");
    }

    #[test]
    fn compact_preserves_semantics_and_shrinks() {
        let mut m = Manager::with_vars(4);
        let vs: Vec<NodeId> = (0..4).map(|i| m.var(VarId(i))).collect();
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        // Garbage to make compaction non-trivial.
        let g = m.xor(vs[0], vs[3]);
        let _dead = m.and(g, vs[1]);
        let mapped = m.compact(&[f]);
        let f2 = mapped[0];
        assert!(m.free_count == 0 && m.stats().allocated == m.stats().nodes);
        for bits in 0..16u32 {
            let env: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expect = (env[0] && env[1]) || (env[2] && env[3]);
            assert_eq!(m.eval(f2, &env), expect, "assignment {env:?}");
        }
        // The manager remains fully operational after compaction.
        let h = m.and(f2, vs[0].min(f2)); // arbitrary follow-up op
        let _ = m.or(h, f2);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let mut m = Manager::new();
        let (a, b, _) = three(&mut m);
        let _ = m.and(a, b);
        let misses = m.stats().cache_misses;
        assert!(misses > 0);
        let _ = m.and(a, b);
        assert!(m.stats().cache_hits > 0, "repeat op must hit the computed table");
    }

    #[test]
    fn cache_is_bounded_by_config() {
        let cfg = KernelConfig { cache_bits: 9, ..KernelConfig::default() };
        let mut m = Manager::with_kernel_config(cfg);
        let vs = m.new_vars(14);
        // A workload far larger than 2^9 distinct subproblems.
        let mut acc = NodeId::FALSE;
        for w in vs.windows(2) {
            let t = m.and(w[0], w[1]);
            acc = m.xor(acc, t);
        }
        let parity = m.xor_many(vs.clone());
        let _ = m.and(acc, parity);
        assert!(m.stats().cache_entries <= 1 << 9, "cache must stay bounded");
    }

    #[test]
    fn clear_cache_returns_memory() {
        let mut m = Manager::new();
        let vs = m.new_vars(12);
        let _ = m.xor_many(vs);
        m.clear_cache();
        assert_eq!(m.stats().cache_entries, 0);
        assert_eq!(m.cache.slots.len(), 1 << CACHE_MIN_BITS, "slot array must shrink");
    }

    #[test]
    fn maybe_gc_respects_auto_gc_flag_and_floor() {
        let cfg = KernelConfig { auto_gc: false, ..KernelConfig::default() };
        let mut m = Manager::with_kernel_config(cfg);
        let vs = m.new_vars(8);
        let _ = m.xor_many(vs);
        assert_eq!(m.maybe_gc(&[]), 0, "auto-GC disabled");
        let cfg = KernelConfig { auto_gc: true, gc_min_nodes: 1 << 20, ..KernelConfig::default() };
        m.set_kernel_config(cfg);
        assert_eq!(m.maybe_gc(&[]), 0, "below the floor");
    }

    #[test]
    fn sift_in_place_preserves_external_ids() {
        // Blocked order a0 a1 a2 b0 b1 b2 for f = Σ ai·bi — sifting
        // interleaves it, shrinking the diagram, without moving `f`.
        let mut m = Manager::with_vars(6);
        let mut terms = Vec::new();
        for i in 0..3u32 {
            let ai = m.var(VarId(i));
            let bi = m.var(VarId(i + 3));
            terms.push(m.and(ai, bi));
        }
        let f = m.or_many(terms);
        let before = m.shared_size(&[f]);
        m.sift_in_place(&[f]);
        let after = m.shared_size(&[f]);
        assert!(after <= before, "sifting must not grow the kept roots: {before} -> {after}");
        for bits in 0..64u32 {
            let env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let expect = (0..3).any(|i| env[i] && env[i + 3]);
            assert_eq!(m.eval(f, &env), expect, "assignment {env:?}");
        }
        // The manager still hash-conses correctly post-sift.
        let t0 = m.var(VarId(0));
        let t3 = m.var(VarId(3));
        let x = m.and(t0, t3);
        let y = m.and(t3, t0);
        assert_eq!(x, y);
    }

    #[test]
    fn cancelled_sift_stops_at_a_variable_boundary_and_stays_canonical() {
        use crate::governor::{FaultKind, FaultPlan, FaultSite};
        use std::sync::Arc;
        let mut m = Manager::with_vars(6);
        let mut terms = Vec::new();
        for i in 0..3u32 {
            let ai = m.var(VarId(i));
            let bi = m.var(VarId(i + 3));
            terms.push(m.and(ai, bi));
        }
        let f = m.or_many(terms);
        let runs_before = m.stats().reorder_runs;
        // Cancellation observed at the *second* excursion boundary: one
        // variable has already moved when the sift unwinds.
        let plan =
            Arc::new(FaultPlan::new(9).with_rule(FaultSite::BddSift, 2, FaultKind::Cancel));
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        assert_eq!(m.try_sift_in_place(&[f], &gov), Err(ResourceExhausted::Cancelled));
        // The early-out still counts as a reorder and still invalidated
        // the order-dependent cache.
        assert_eq!(m.stats().reorder_runs, runs_before + 1);
        // The diagram is canonical at the boundary: `f` is untouched
        // semantically, …
        for bits in 0..64u32 {
            let env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let expect = (0..3).any(|i| env[i] && env[i + 3]);
            assert_eq!(m.eval(f, &env), expect, "assignment {env:?}");
        }
        // …a post-cancel rebuild of the same function lands on the same
        // node (hash-consing under the *current* order), …
        let mut terms2 = Vec::new();
        for i in 0..3u32 {
            let ai = m.var(VarId(i));
            let bi = m.var(VarId(i + 3));
            terms2.push(m.and(ai, bi));
        }
        assert_eq!(m.or_many(terms2), f);
        // …and a GC with `f` as root keeps it alive and consistent.
        m.gc_with_roots(&[f]);
        assert!(m.eval(f, &[true, false, false, true, false, false]));
    }

    #[test]
    fn interrupted_gc_safe_point_leaves_the_manager_untouched() {
        let mut m = Manager::with_vars(4);
        let a = m.var(VarId(0));
        let b = m.var(VarId(1));
        let f = m.and(a, b);
        // Create garbage so a GC would actually do something.
        let c = m.var(VarId(2));
        let _dead = m.xor(f, c);
        let before = m.stats();
        let gov = ResourceGovernor::unlimited();
        gov.cancel_handle().cancel();
        // The safe point checks *before* mutating: an interrupted GC
        // request must not half-collect.
        assert_eq!(m.try_maybe_gc(&[f], &gov), Err(ResourceExhausted::Cancelled));
        assert_eq!(m.stats(), before, "manager state must be untouched");
    }
}
