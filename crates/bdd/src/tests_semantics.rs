//! Cross-cutting semantic tests: BDD operations against a brute-force
//! truth-table oracle on randomly generated expression trees.

use crate::{Manager, NodeId, VarId};

/// A tiny expression AST evaluated both ways.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::Var(i) => a[*i],
            Expr::Not(e) => !e.eval(a),
            Expr::And(l, r) => l.eval(a) && r.eval(a),
            Expr::Or(l, r) => l.eval(a) || r.eval(a),
            Expr::Xor(l, r) => l.eval(a) ^ r.eval(a),
            Expr::Ite(c, t, e) => {
                if c.eval(a) {
                    t.eval(a)
                } else {
                    e.eval(a)
                }
            }
        }
    }

    fn build(&self, m: &mut Manager) -> NodeId {
        match self {
            Expr::Var(i) => m.var(VarId(*i as u32)),
            Expr::Not(e) => {
                let x = e.build(m);
                m.not(x)
            }
            Expr::And(l, r) => {
                let (a, b) = (l.build(m), r.build(m));
                m.and(a, b)
            }
            Expr::Or(l, r) => {
                let (a, b) = (l.build(m), r.build(m));
                m.or(a, b)
            }
            Expr::Xor(l, r) => {
                let (a, b) = (l.build(m), r.build(m));
                m.xor(a, b)
            }
            Expr::Ite(c, t, e) => {
                let (f, g, h) = (c.build(m), t.build(m), e.build(m));
                m.ite(f, g, h)
            }
        }
    }
}

/// Deterministic pseudo-random expression generator (xorshift, so the test
/// corpus is stable across runs).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_expr(rng: &mut Rng, nvars: usize, depth: usize) -> Expr {
    if depth == 0 || rng.below(8) == 0 {
        return Expr::Var(rng.below(nvars as u64) as usize);
    }
    match rng.below(5) {
        0 => Expr::Not(Box::new(random_expr(rng, nvars, depth - 1))),
        1 => Expr::And(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        3 => Expr::Xor(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        _ => Expr::Ite(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
    }
}

fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0u32..1 << n).map(move |bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
}

#[test]
fn random_expressions_match_truth_tables() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for trial in 0..60 {
        let nvars = 2 + (trial % 6);
        let expr = random_expr(&mut rng, nvars, 5);
        let mut m = Manager::new();
        m.new_vars(nvars);
        let f = expr.build(&mut m);
        for a in assignments(nvars) {
            assert_eq!(m.eval(f, &a), expr.eval(&a), "trial {trial}, expr {expr:?}");
        }
    }
}

#[test]
fn quantification_matches_truth_tables() {
    let mut rng = Rng(0xdeadbeefcafe1234);
    for trial in 0..40 {
        let nvars = 3 + (trial % 4);
        let expr = random_expr(&mut rng, nvars, 4);
        let qvar = (rng.below(nvars as u64)) as usize;
        let mut m = Manager::new();
        m.new_vars(nvars);
        let f = expr.build(&mut m);
        let ex = m.exists_var(f, VarId(qvar as u32));
        let fa = m.forall_var(f, VarId(qvar as u32));
        for a in assignments(nvars) {
            let mut a1 = a.clone();
            a1[qvar] = false;
            let v0 = expr.eval(&a1);
            a1[qvar] = true;
            let v1 = expr.eval(&a1);
            assert_eq!(m.eval(ex, &a), v0 || v1);
            assert_eq!(m.eval(fa, &a), v0 && v1);
        }
    }
}

#[test]
fn compose_matches_truth_tables() {
    let mut rng = Rng(0x0123456789abcdef);
    for trial in 0..40 {
        let nvars = 3 + (trial % 4);
        let fe = random_expr(&mut rng, nvars, 4);
        let ge = random_expr(&mut rng, nvars, 3);
        let v = (rng.below(nvars as u64)) as usize;
        let mut m = Manager::new();
        m.new_vars(nvars);
        let f = fe.build(&mut m);
        let g = ge.build(&mut m);
        let composed = m.compose(f, VarId(v as u32), g);
        for a in assignments(nvars) {
            let mut a1 = a.clone();
            a1[v] = ge.eval(&a);
            assert_eq!(m.eval(composed, &a), fe.eval(&a1), "trial {trial}");
        }
    }
}

#[test]
fn canonicity_equal_functions_equal_nodes() {
    // Build semantically equal functions through different syntax and
    // verify NodeId equality (the canonical-form property of ROBDDs).
    let mut m = Manager::new();
    let vs = m.new_vars(4);
    // (a⊕b)⊕(c⊕d) vs ((a⊕c)⊕b)⊕d
    let ab = m.xor(vs[0], vs[1]);
    let cd = m.xor(vs[2], vs[3]);
    let left = m.xor(ab, cd);
    let ac = m.xor(vs[0], vs[2]);
    let acb = m.xor(ac, vs[1]);
    let right = m.xor(acb, vs[3]);
    assert_eq!(left, right);
}
