//! Budgeted twins of the recursive `Manager` operations.
//!
//! Each `try_*` operation computes exactly the same function as its
//! unbudgeted counterpart but consults a [`ResourceGovernor`] at every
//! *cache-miss* recursion step — the points where new work (and new
//! nodes) can be created — and unwinds with [`ResourceExhausted`] the
//! moment a limit trips. Cache hits and terminal shortcuts are free:
//! an operation whose result still sits in the computed table succeeds
//! even under a zero budget, which is exactly the CUDD `*Limit`
//! contract. The computed table is lossy (direct-mapped, bounded), so
//! "still sits" means "not yet overwritten by a colliding entry" — the
//! most recent top-level result for a key always survives, older ones
//! may have to be recomputed under budget.
//!
//! The twins share the computed table (and its keys) with the
//! unbudgeted operations, so:
//!
//! - by BDD canonicity, a successful `try_*` returns the *identical*
//!   [`NodeId`] the unbudgeted operation would return, and
//! - work done before an exhaustion is kept — a retry or fallback
//!   starts from the warm cache rather than from scratch.
//!
//! Partial results of an exhausted operation are ordinary nodes and
//! cache entries; they are sound (every cached entry is a fully
//! computed sub-result) and simply become reusable warm-up.

use crate::compose::SubstitutionId;
use crate::governor::{ResourceExhausted, ResourceGovernor};
use crate::manager::Op;
use crate::shared::{self, SharedOp};
use crate::{Manager, NodeId, VarId};

impl Manager {
    /// Whether the concurrent kernel is enabled for this manager. Only
    /// the public entry points consult it — inner recursion stays on
    /// the `_seq` twins, so a dispatched operation never re-probes the
    /// size gate at every cache-miss step.
    #[inline]
    fn shared_enabled(&self) -> bool {
        self.kernel_config().shared_workers >= 2
    }
    /// Budgeted [`Manager::not`].
    pub fn try_not(
        &mut self,
        f: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Not(f), gov)? {
                return Ok(r);
            }
        }
        self.try_not_seq(f, gov)
    }

    pub(crate) fn try_not_seq(
        &mut self,
        f: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        match f {
            NodeId::FALSE => return Ok(NodeId::TRUE),
            NodeId::TRUE => return Ok(NodeId::FALSE),
            _ => {}
        }
        let key = (Op::Not, f.0, 0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let n = self.node(f);
        let lo = self.try_not_seq(n.lo, gov)?;
        let hi = self.try_not_seq(n.hi, gov)?;
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::and`]. With [`crate::KernelConfig::shared_workers`]
    /// at `2+`, large calls run on the work-stealing concurrent kernel;
    /// the result is the same canonical node either way.
    pub fn try_and(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::And(f, g), gov)? {
                return Ok(r);
            }
        }
        self.try_and_seq(f, g, gov)
    }

    pub(crate) fn try_and_seq(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f == g {
            return Ok(f);
        }
        if f.is_false() || g.is_false() {
            return Ok(NodeId::FALSE);
        }
        if f.is_true() {
            return Ok(g);
        }
        if g.is_true() {
            return Ok(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::And, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let r = self.try_binary_step(Op::And, a, b, gov)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::or`]; concurrent at `shared_workers >= 2`
    /// like [`Manager::try_and`].
    pub fn try_or(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Or(f, g), gov)? {
                return Ok(r);
            }
        }
        self.try_or_seq(f, g, gov)
    }

    pub(crate) fn try_or_seq(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f == g {
            return Ok(f);
        }
        if f.is_true() || g.is_true() {
            return Ok(NodeId::TRUE);
        }
        if f.is_false() {
            return Ok(g);
        }
        if g.is_false() {
            return Ok(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Or, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let r = self.try_binary_step(Op::Or, a, b, gov)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::xor`]; concurrent at `shared_workers >= 2`
    /// like [`Manager::try_and`].
    pub fn try_xor(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Xor(f, g), gov)? {
                return Ok(r);
            }
        }
        self.try_xor_seq(f, g, gov)
    }

    pub(crate) fn try_xor_seq(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f == g {
            return Ok(NodeId::FALSE);
        }
        if f.is_false() {
            return Ok(g);
        }
        if g.is_false() {
            return Ok(f);
        }
        if f.is_true() {
            return self.try_not_seq(g, gov);
        }
        if g.is_true() {
            return self.try_not_seq(f, gov);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Xor, a.0, b.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let r = self.try_binary_step(Op::Xor, a, b, gov)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    fn try_binary_step(
        &mut self,
        op: Op,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if lg == top { self.branches(g) } else { (g, g) };
        let (lo, hi) = match op {
            Op::And => (self.try_and_seq(f0, g0, gov)?, self.try_and_seq(f1, g1, gov)?),
            Op::Or => (self.try_or_seq(f0, g0, gov)?, self.try_or_seq(f1, g1, gov)?),
            Op::Xor => (self.try_xor_seq(f0, g0, gov)?, self.try_xor_seq(f1, g1, gov)?),
            _ => unreachable!("try_binary_step only handles AND/OR/XOR"),
        };
        let var = self.var_at_level(top);
        Ok(self.mk(var, lo, hi))
    }

    /// Budgeted [`Manager::ite`]; concurrent at `shared_workers >= 2`
    /// like [`Manager::try_and`].
    pub fn try_ite(
        &mut self,
        f: NodeId,
        g: NodeId,
        h: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Ite(f, g, h), gov)? {
                return Ok(r);
            }
        }
        self.try_ite_seq(f, g, h, gov)
    }

    pub(crate) fn try_ite_seq(
        &mut self,
        f: NodeId,
        g: NodeId,
        h: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return self.try_not_seq(f, gov);
        }
        let key = (Op::Ite, f.0, g.0, h.0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = if self.level(f) == top { self.branches(f) } else { (f, f) };
        let (g0, g1) = if self.level(g) == top { self.branches(g) } else { (g, g) };
        let (h0, h1) = if self.level(h) == top { self.branches(h) } else { (h, h) };
        let lo = self.try_ite_seq(f0, g0, h0, gov)?;
        let hi = self.try_ite_seq(f1, g1, h1, gov)?;
        let var = self.var_at_level(top);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::xnor`].
    pub fn try_xnor(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let x = self.try_xor(f, g, gov)?;
        self.try_not(x, gov)
    }

    /// Budgeted [`Manager::implies`].
    pub fn try_implies(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let nf = self.try_not(f, gov)?;
        self.try_or(nf, g, gov)
    }

    /// Budgeted [`Manager::diff`].
    pub fn try_diff(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let ng = self.try_not(g, gov)?;
        self.try_and(f, ng, gov)
    }

    /// Budgeted [`Manager::leq`].
    pub fn try_leq(
        &mut self,
        f: NodeId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<bool, ResourceExhausted> {
        Ok(self.try_diff(f, g, gov)?.is_false())
    }

    /// Budgeted [`Manager::and_many`].
    pub fn try_and_many<I: IntoIterator<Item = NodeId>>(
        &mut self,
        fs: I,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        self.try_reduce_many(fs.into_iter().collect(), NodeId::TRUE, gov, Self::try_and)
    }

    /// Budgeted [`Manager::or_many`].
    pub fn try_or_many<I: IntoIterator<Item = NodeId>>(
        &mut self,
        fs: I,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        self.try_reduce_many(fs.into_iter().collect(), NodeId::FALSE, gov, Self::try_or)
    }

    /// Budgeted [`Manager::xor_many`].
    pub fn try_xor_many<I: IntoIterator<Item = NodeId>>(
        &mut self,
        fs: I,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        self.try_reduce_many(fs.into_iter().collect(), NodeId::FALSE, gov, Self::try_xor)
    }

    /// Balanced reduction, mirroring the unbudgeted `reduce_many`.
    fn try_reduce_many(
        &mut self,
        mut ops: Vec<NodeId>,
        empty: NodeId,
        gov: &ResourceGovernor,
        mut op: impl FnMut(
            &mut Self,
            NodeId,
            NodeId,
            &ResourceGovernor,
        ) -> Result<NodeId, ResourceExhausted>,
    ) -> Result<NodeId, ResourceExhausted> {
        if ops.is_empty() {
            return Ok(empty);
        }
        while ops.len() > 1 {
            let mut next = Vec::with_capacity(ops.len().div_ceil(2));
            for pair in ops.chunks(2) {
                next.push(if pair.len() == 2 {
                    op(self, pair[0], pair[1], gov)?
                } else {
                    pair[0]
                });
            }
            ops = next;
        }
        Ok(ops[0])
    }

    /// Budgeted [`Manager::exists`].
    pub fn try_exists(
        &mut self,
        f: NodeId,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let cube = self.cube(vars);
        self.try_exists_cube(f, cube, gov)
    }

    /// Budgeted [`Manager::forall`].
    pub fn try_forall(
        &mut self,
        f: NodeId,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let cube = self.cube(vars);
        self.try_forall_cube(f, cube, gov)
    }

    /// Budgeted [`Manager::exists_cube`]; concurrent at
    /// `shared_workers >= 2` like [`Manager::try_and`].
    pub fn try_exists_cube(
        &mut self,
        f: NodeId,
        cube: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Exists(f, cube), gov)? {
                return Ok(r);
            }
        }
        self.try_quant_rec(f, cube, Op::Exists, gov)
    }

    /// Budgeted [`Manager::forall_cube`]; concurrent at
    /// `shared_workers >= 2` like [`Manager::try_and`].
    pub fn try_forall_cube(
        &mut self,
        f: NodeId,
        cube: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::Forall(f, cube), gov)? {
                return Ok(r);
            }
        }
        self.try_quant_rec(f, cube, Op::Forall, gov)
    }

    fn try_quant_rec(
        &mut self,
        f: NodeId,
        cube: NodeId,
        op: Op,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_terminal() || cube.is_true() {
            return Ok(f);
        }
        debug_assert!(!cube.is_false(), "quantification cube must be a positive cube");
        let mut cube = cube;
        let f_level = self.level(f);
        while !cube.is_true() && self.level(cube) < f_level {
            cube = self.branches(cube).1;
        }
        if cube.is_true() {
            return Ok(f);
        }
        let key = (op, f.0, cube.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let (f0, f1) = self.branches(f);
        let fvar = self.node(f).var;
        let r = if self.level(cube) == f_level {
            let rest = self.branches(cube).1;
            let lo = self.try_quant_rec(f0, rest, op, gov)?;
            let hi = self.try_quant_rec(f1, rest, op, gov)?;
            match op {
                Op::Exists => self.try_or_seq(lo, hi, gov)?,
                Op::Forall => self.try_and_seq(lo, hi, gov)?,
                _ => unreachable!(),
            }
        } else {
            let lo = self.try_quant_rec(f0, cube, op, gov)?;
            let hi = self.try_quant_rec(f1, cube, op, gov)?;
            self.mk(fvar, lo, hi)
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::and_exists`] — the relational product at the
    /// heart of image computation, where mid-operation blow-up is most
    /// dangerous. Concurrent at `shared_workers >= 2` like
    /// [`Manager::try_and`].
    pub fn try_and_exists(
        &mut self,
        f: NodeId,
        g: NodeId,
        cube: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if self.shared_enabled() {
            if let Some(r) = shared::dispatch(self, SharedOp::AndExists(f, g, cube), gov)? {
                return Ok(r);
            }
        }
        self.try_and_exists_seq(f, g, cube, gov)
    }

    pub(crate) fn try_and_exists_seq(
        &mut self,
        f: NodeId,
        g: NodeId,
        cube: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_false() || g.is_false() {
            return Ok(NodeId::FALSE);
        }
        if f.is_true() && g.is_true() {
            return Ok(NodeId::TRUE);
        }
        if cube.is_true() {
            return self.try_and_seq(f, g, gov);
        }
        if f.is_true() {
            return self.try_quant_rec(g, cube, Op::Exists, gov);
        }
        if g.is_true() {
            return self.try_quant_rec(f, cube, Op::Exists, gov);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Exists, a.0, b.0, cube.0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let top = self.level(a).min(self.level(b));
        let mut cube_here = cube;
        while !cube_here.is_true() && self.level(cube_here) < top {
            cube_here = self.branches(cube_here).1;
        }
        let (a0, a1) = if self.level(a) == top { self.branches(a) } else { (a, a) };
        let (b0, b1) = if self.level(b) == top { self.branches(b) } else { (b, b) };
        let r = if !cube_here.is_true() && self.level(cube_here) == top {
            let rest = self.branches(cube_here).1;
            let lo = self.try_and_exists_seq(a0, b0, rest, gov)?;
            if lo.is_true() {
                NodeId::TRUE
            } else {
                let hi = self.try_and_exists_seq(a1, b1, rest, gov)?;
                self.try_or_seq(lo, hi, gov)?
            }
        } else {
            let lo = self.try_and_exists_seq(a0, b0, cube_here, gov)?;
            let hi = self.try_and_exists_seq(a1, b1, cube_here, gov)?;
            let var = self.var_at_level(top);
            self.mk(var, lo, hi)
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::compose`].
    pub fn try_compose(
        &mut self,
        f: NodeId,
        v: VarId,
        g: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_terminal() || self.level(f) > self.level_of(v) as u32 {
            return Ok(f);
        }
        let key = (Op::Compose, f.0, v.0, g.0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let node = self.node(f);
        let r = if node.var == v.0 {
            self.try_ite(g, node.hi, node.lo, gov)?
        } else {
            let lo = self.try_compose(node.lo, v, g, gov)?;
            let hi = self.try_compose(node.hi, v, g, gov)?;
            let top = self.var(VarId(node.var));
            self.try_ite(top, hi, lo, gov)?
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::cofactor`].
    pub fn try_cofactor(
        &mut self,
        f: NodeId,
        v: VarId,
        value: bool,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let constant = if value { NodeId::TRUE } else { NodeId::FALSE };
        self.try_compose(f, v, constant, gov)
    }

    /// Budgeted [`Manager::vector_compose`].
    pub fn try_vector_compose(
        &mut self,
        f: NodeId,
        subst: SubstitutionId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_terminal() {
            return Ok(f);
        }
        let key = (Op::VCompose, f.0, subst.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let node = self.node(f);
        let lo = self.try_vector_compose(node.lo, subst, gov)?;
        let hi = self.try_vector_compose(node.hi, subst, gov)?;
        let replacement = match self.substitutions[subst.0 as usize].get(&node.var) {
            Some(&g) => g,
            None => self.var(VarId(node.var)),
        };
        let r = self.try_ite(replacement, hi, lo, gov)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::restrict`].
    pub fn try_restrict(
        &mut self,
        f: NodeId,
        care: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if care.is_false() {
            return Ok(f);
        }
        self.try_restrict_rec(f, care, gov)
    }

    fn try_restrict_rec(
        &mut self,
        f: NodeId,
        care: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_terminal() || care.is_true() {
            return Ok(f);
        }
        debug_assert!(!care.is_false(), "inner care set cannot be empty");
        let key = (Op::Restrict, f.0, care.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let lf = self.level(f);
        let lc = self.level(care);
        let r = if lc < lf {
            let (c0, c1) = self.branches(care);
            let merged = self.try_or(c0, c1, gov)?;
            self.try_restrict_rec(f, merged, gov)?
        } else {
            let (f0, f1) = self.branches(f);
            let fvar = self.node(f).var;
            let (c0, c1) = if lc == lf { self.branches(care) } else { (care, care) };
            if c0.is_false() {
                self.try_restrict_rec(f1, c1, gov)?
            } else if c1.is_false() {
                self.try_restrict_rec(f0, c0, gov)?
            } else {
                let lo = self.try_restrict_rec(f0, c0, gov)?;
                let hi = self.try_restrict_rec(f1, c1, gov)?;
                self.mk(fvar, lo, hi)
            }
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::constrain`].
    pub fn try_constrain(
        &mut self,
        f: NodeId,
        care: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if care.is_false() {
            return Ok(f);
        }
        self.try_constrain_rec(f, care, gov)
    }

    fn try_constrain_rec(
        &mut self,
        f: NodeId,
        care: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if f.is_terminal() || care.is_true() {
            return Ok(f);
        }
        debug_assert!(!care.is_false(), "inner care set cannot be empty");
        if f == care {
            return Ok(NodeId::TRUE);
        }
        let key = (Op::Constrain, f.0, care.0, 0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        gov.checkpoint(self.live_node_count())?;
        let lf = self.level(f);
        let lc = self.level(care);
        let top = lf.min(lc);
        let (c0, c1) = if lc == top { self.branches(care) } else { (care, care) };
        let (f0, f1) = if lf == top { self.branches(f) } else { (f, f) };
        let r = if c0.is_false() {
            self.try_constrain_rec(f1, c1, gov)?
        } else if c1.is_false() {
            self.try_constrain_rec(f0, c0, gov)?
        } else {
            let lo = self.try_constrain_rec(f0, c0, gov)?;
            let hi = self.try_constrain_rec(f1, c1, gov)?;
            let var = self.var_at_level(top);
            self.mk(var, lo, hi)
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Budgeted [`Manager::rename`].
    pub fn try_rename(
        &mut self,
        f: NodeId,
        pairs: &[(VarId, VarId)],
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let subst: Vec<(VarId, NodeId)> =
            pairs.iter().map(|&(v, w)| (v, self.var(w))).collect();
        let id = self.register_substitution(&subst);
        self.try_vector_compose(f, id, gov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ResourceGovernor;

    fn ripple_xor_and(m: &mut Manager, vars: &[NodeId]) -> NodeId {
        let mut f = vars[0];
        for w in vars.windows(2) {
            let t = m.and(w[0], w[1]);
            f = m.xor(f, t);
        }
        f
    }

    #[test]
    fn budgeted_matches_unbudgeted_when_unlimited() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let vars = m.new_vars(10);
        let f = ripple_xor_and(&mut m, &vars[..5]);
        let g = ripple_xor_and(&mut m, &vars[5..]);
        let budgeted = m.try_and(f, g, &gov).unwrap();
        assert_eq!(budgeted, m.and(f, g));
        let budgeted = m.try_ite(f, g, vars[0], &gov).unwrap();
        assert_eq!(budgeted, m.ite(f, g, vars[0]));
        let qs = [VarId(0), VarId(3), VarId(7)];
        let budgeted = m.try_exists(f, &qs, &gov).unwrap();
        assert_eq!(budgeted, m.exists(f, &qs));
        let cube = m.cube(&qs);
        let budgeted = m.try_and_exists(f, g, cube, &gov).unwrap();
        assert_eq!(budgeted, m.and_exists(f, g, cube));
    }

    #[test]
    fn zero_budget_fails_on_cache_miss_but_not_on_hit() {
        let starved = ResourceGovernor::unlimited().with_step_limit(0);
        let mut m = Manager::new();
        let vars = m.new_vars(8);
        let f = ripple_xor_and(&mut m, &vars[..4]);
        let g = ripple_xor_and(&mut m, &vars[4..]);
        assert_eq!(m.try_and(f, g, &starved), Err(ResourceExhausted::Steps));
        // Compute unbudgeted, then the warm cache answers for free.
        let expect = m.and(f, g);
        assert_eq!(m.try_and(f, g, &starved), Ok(expect));
    }

    #[test]
    fn partial_work_is_kept_and_retry_completes() {
        let mut m = Manager::new();
        let vars = m.new_vars(12);
        let f = ripple_xor_and(&mut m, &vars[..6]);
        let g = ripple_xor_and(&mut m, &vars[6..]);
        let expect = {
            let mut fresh = Manager::new();
            let vars2 = fresh.new_vars(12);
            let f2 = ripple_xor_and(&mut fresh, &vars2[..6]);
            let g2 = ripple_xor_and(&mut fresh, &vars2[6..]);
            let r = fresh.xor(f2, g2);
            fresh.size(r)
        };
        // Grow the budget until the op completes; every failure leaves
        // only sound cache entries behind.
        let mut budget = 1u64;
        let r = loop {
            let gov = ResourceGovernor::unlimited().with_step_limit(budget);
            match m.try_xor(f, g, &gov) {
                Ok(r) => break r,
                Err(ResourceExhausted::Steps) => budget += 1,
                Err(other) => panic!("unexpected exhaustion: {other}"),
            }
        };
        assert_eq!(m.xor(f, g), r);
        assert_eq!(m.size(r), expect);
    }

    #[test]
    fn node_ceiling_trips_mid_operation() {
        let mut m = Manager::new();
        let vars = m.new_vars(20);
        let f = ripple_xor_and(&mut m, &vars[..10]);
        let g = ripple_xor_and(&mut m, &vars[10..]);
        let ceiling = m.stats().nodes; // already at the ceiling: any growth trips
        let gov = ResourceGovernor::unlimited().with_node_limit(ceiling);
        assert_eq!(m.try_xor(f, g, &gov), Err(ResourceExhausted::Nodes));
    }

    #[test]
    fn restrict_and_constrain_twins_agree() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let vars = m.new_vars(8);
        let f = ripple_xor_and(&mut m, &vars[..5]);
        let care = ripple_xor_and(&mut m, &vars[3..]);
        let budgeted = m.try_restrict(f, care, &gov).unwrap();
        assert_eq!(budgeted, m.restrict(f, care));
        let budgeted = m.try_constrain(f, care, &gov).unwrap();
        assert_eq!(budgeted, m.constrain(f, care));
    }

    #[test]
    fn starved_constrain_fails_then_warm_cache_answers() {
        let starved = ResourceGovernor::unlimited().with_step_limit(0);
        let mut m = Manager::new();
        let vars = m.new_vars(8);
        let f = ripple_xor_and(&mut m, &vars[..5]);
        let care = ripple_xor_and(&mut m, &vars[3..]);
        assert_eq!(m.try_constrain(f, care, &starved), Err(ResourceExhausted::Steps));
        let expect = m.constrain(f, care);
        assert_eq!(m.try_constrain(f, care, &starved), Ok(expect));
    }

    #[test]
    fn expired_deadline_observed_within_bounded_expansions() {
        use crate::governor::MAX_DEADLINE_OVERSHOOT_STEPS;
        use std::time::Duration;
        // A deep recursive apply whose deadline has already passed must
        // unwind within the amortization window: the deadline is re-read
        // every DEADLINE_CHECK_PERIOD steps, so no more than
        // MAX_DEADLINE_OVERSHOOT_STEPS cache-miss expansions may happen
        // after expiry. This pins the degradation ladder's worst-case
        // reaction latency for warm-cache-free workloads.
        let mut m = Manager::new();
        let vars = m.new_vars(24);
        let f = ripple_xor_and(&mut m, &vars[..12]);
        let g = ripple_xor_and(&mut m, &vars[12..]);
        let gov = ResourceGovernor::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(m.try_xor(f, g, &gov), Err(ResourceExhausted::Deadline));
        assert!(
            gov.steps_used() <= MAX_DEADLINE_OVERSHOOT_STEPS,
            "deadline observed after {} steps, bound is {}",
            gov.steps_used(),
            MAX_DEADLINE_OVERSHOOT_STEPS
        );
        // Same workload, same governor shape, deep ITE recursion.
        let ite_gov = ResourceGovernor::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(m.try_ite(f, g, vars[0], &ite_gov), Err(ResourceExhausted::Deadline));
        assert!(ite_gov.steps_used() <= MAX_DEADLINE_OVERSHOOT_STEPS);
    }

    #[test]
    fn pre_raised_cancel_trips_on_the_first_checkpoint() {
        let mut m = Manager::new();
        let vars = m.new_vars(24);
        let f = ripple_xor_and(&mut m, &vars[..12]);
        let g = ripple_xor_and(&mut m, &vars[12..]);
        let gov = ResourceGovernor::unlimited();
        gov.cancel_handle().cancel();
        let before = m.live_node_count();
        assert_eq!(m.try_xor(f, g, &gov), Err(ResourceExhausted::Cancelled));
        // Cancellation is checked before any charge or expansion: the
        // very first cache-miss checkpoint unwinds with zero new work.
        assert_eq!(gov.steps_used(), 0, "cancel must precede step charging");
        assert_eq!(m.live_node_count(), before, "no nodes created after cancel");
    }

    #[test]
    fn compose_and_rename_twins_agree() {
        let gov = ResourceGovernor::unlimited();
        let mut m = Manager::new();
        let vars = m.new_vars(8);
        let f = ripple_xor_and(&mut m, &vars[..4]);
        let g = m.or(vars[5], vars[6]);
        let budgeted = m.try_compose(f, VarId(2), g, &gov).unwrap();
        assert_eq!(budgeted, m.compose(f, VarId(2), g));
        let pairs = [(VarId(0), VarId(4)), (VarId(1), VarId(5))];
        let budgeted = m.try_rename(f, &pairs, &gov).unwrap();
        assert_eq!(budgeted, m.rename(f, &pairs));
    }
}
