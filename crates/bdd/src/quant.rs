//! Existential and universal quantification over variable cubes.

use crate::manager::Op;
use crate::{Manager, NodeId, VarId};

impl Manager {
    /// Existential quantification `∃vars f`.
    pub fn exists(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let cube = self.cube(vars);
        self.exists_cube(f, cube)
    }

    /// Universal quantification `∀vars f`.
    pub fn forall(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let cube = self.cube(vars);
        self.forall_cube(f, cube)
    }

    /// Existential quantification of a single variable.
    pub fn exists_var(&mut self, f: NodeId, v: VarId) -> NodeId {
        self.exists(f, &[v])
    }

    /// Universal quantification of a single variable.
    pub fn forall_var(&mut self, f: NodeId, v: VarId) -> NodeId {
        self.forall(f, &[v])
    }

    /// `∃cube f` where `cube` is a positive cube built with
    /// [`Manager::cube`].
    pub fn exists_cube(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        self.quant_rec(f, cube, Op::Exists)
    }

    /// `∀cube f` where `cube` is a positive cube.
    pub fn forall_cube(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        self.quant_rec(f, cube, Op::Forall)
    }

    fn quant_rec(&mut self, f: NodeId, cube: NodeId, op: Op) -> NodeId {
        if f.is_terminal() || cube.is_true() {
            return f;
        }
        debug_assert!(!cube.is_false(), "quantification cube must be a positive cube");
        // Skip cube variables above f's top variable: they do not occur in f.
        let mut cube = cube;
        let f_level = self.level(f);
        while !cube.is_true() && self.level(cube) < f_level {
            cube = self.branches(cube).1;
        }
        if cube.is_true() {
            return f;
        }
        let key = (op, f.0, cube.0, 0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let (f0, f1) = self.branches(f);
        let fvar = self.node(f).var;
        let r = if self.level(cube) == f_level {
            let rest = self.branches(cube).1;
            let lo = self.quant_rec(f0, rest, op);
            let hi = self.quant_rec(f1, rest, op);
            match op {
                Op::Exists => self.or(lo, hi),
                Op::Forall => self.and(lo, hi),
                _ => unreachable!(),
            }
        } else {
            let lo = self.quant_rec(f0, cube, op);
            let hi = self.quant_rec(f1, cube, op);
            self.mk(fvar, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Relational product `∃cube (f · g)` computed without materializing
    /// the full conjunction — the workhorse of image computation.
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, cube: NodeId) -> NodeId {
        if f.is_false() || g.is_false() {
            return NodeId::FALSE;
        }
        if f.is_true() && g.is_true() {
            return NodeId::TRUE;
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if f.is_true() {
            return self.exists_cube(g, cube);
        }
        if g.is_true() {
            return self.exists_cube(f, cube);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Exists, a.0, b.0, cube.0);
        if let Some(r) = self.cache.get(key) {
            return r;
        }
        let top = self.level(a).min(self.level(b));
        // Skip cube variables above the top of both operands.
        let mut cube_here = cube;
        while !cube_here.is_true() && self.level(cube_here) < top {
            cube_here = self.branches(cube_here).1;
        }
        let (a0, a1) = if self.level(a) == top { self.branches(a) } else { (a, a) };
        let (b0, b1) = if self.level(b) == top { self.branches(b) } else { (b, b) };
        let r = if !cube_here.is_true() && self.level(cube_here) == top {
            let rest = self.branches(cube_here).1;
            let lo = self.and_exists(a0, b0, rest);
            if lo.is_true() {
                NodeId::TRUE
            } else {
                let hi = self.and_exists(a1, b1, rest);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists(a0, b0, cube_here);
            let hi = self.and_exists(a1, b1, cube_here);
            let var = self.var_at_level(top);
            self.mk(var, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_or_of_cofactors() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let f = m.and(a, b);
        // ∃a (a·b) = b
        assert_eq!(m.exists_var(f, VarId(0)), b);
        // ∀a (a·b) = 0
        assert!(m.forall_var(f, VarId(0)).is_false());
    }

    #[test]
    fn quantifier_duality() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let x = m.xor(vars[0], vars[2]);
        let y = m.and(vars[1], vars[3]);
        let f = m.or(x, y);
        let q = [VarId(1), VarId(2)];
        let fa = m.forall(f, &q);
        let nf = m.not(f);
        let ex = m.exists(nf, &q);
        let dual = m.not(ex);
        assert_eq!(fa, dual);
    }

    #[test]
    fn quantifying_absent_variable_is_identity() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let _c = m.new_var();
        let f = m.or(a, b);
        assert_eq!(m.exists_var(f, VarId(2)), f);
        assert_eq!(m.forall_var(f, VarId(2)), f);
    }

    #[test]
    fn multi_var_equals_iterated() {
        let mut m = Manager::new();
        let vs = m.new_vars(5);
        let t1 = m.and(vs[0], vs[3]);
        let t2 = m.xor(vs[1], vs[4]);
        let t3 = m.and(vs[2], t2);
        let f = m.or(t1, t3);
        let together = m.exists(f, &[VarId(0), VarId(2), VarId(4)]);
        let step1 = m.exists_var(f, VarId(4));
        let step2 = m.exists_var(step1, VarId(2));
        let step3 = m.exists_var(step2, VarId(0));
        assert_eq!(together, step3);
    }

    #[test]
    fn and_exists_matches_naive() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let f = {
            let t = m.xor(vs[0], vs[1]);
            m.and(t, vs[2])
        };
        let g = {
            let t = m.or(vs[3], vs[4]);
            m.xor(t, vs[5])
        };
        let cube = m.cube(&[VarId(1), VarId(3), VarId(5)]);
        let fast = m.and_exists(f, g, cube);
        let conj = m.and(f, g);
        let slow = m.exists_cube(conj, cube);
        assert_eq!(fast, slow);
    }

    #[test]
    fn example_3_2_abstraction_of_interval() {
        // Paper Example 3.2: abstracting x from [x̄y, x+y] yields [y, y];
        // abstracting y yields the empty interval [x, x̄]... i.e. ∃y(x̄y)=x̄
        // and ∀y(x+y)=x, and x̄ ≤ x fails.
        let mut m = Manager::new();
        let x = m.new_var();
        let y = m.new_var();
        let nx = m.not(x);
        let lower = m.and(nx, y);
        let upper = m.or(x, y);
        let l_abs = m.exists_var(lower, VarId(0));
        let u_abs = m.forall_var(upper, VarId(0));
        assert_eq!(l_abs, y);
        assert_eq!(u_abs, y);
        // Abstraction of y.
        let l_abs_y = m.exists_var(lower, VarId(1));
        let u_abs_y = m.forall_var(upper, VarId(1));
        assert_eq!(l_abs_y, nx);
        assert_eq!(u_abs_y, x);
        assert!(!m.leq(l_abs_y, u_abs_y));
    }
}
