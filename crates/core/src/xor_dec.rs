//! XOR bi-decomposition (§3.3.2, §3.4.2).
//!
//! With `A` the variables `g1` is vacuous in, `B` those `g2` is vacuous
//! in, and `C` the shared rest, Proposition 3.1 states that
//! `f = g1(B,C) ⊕ g2(A,C)` exists iff every minterm pair distinguished by
//! flipping the `A`-part stays distinguished for **every** value of the
//! `B`-part:
//!
//! ```text
//! f(A,B,C) ≠ f(A',B,C)  ⇒  ∀B'. f(A,B',C) ≠ f(A',B',C)
//! ```
//!
//! For an interval `[l, u]` the premise tightens to the *must-distinguish*
//! relation (both bounds flip — the two points hold disjoint sub-intervals
//! `[1,1]` vs `[0,0]`) and the conclusion relaxes to *may-distinguish*.
//! The paper prints a two-disjunct conclusion; we implement the complete
//! three-disjunct form
//!
//! ```text
//! (l' ≠ u') ∨ (l'' ≠ u'') ∨ (u' ≠ u'')
//! ```
//!
//! (a point pair can also be told apart when either point is a don't
//! care). Since the interval XOR condition is the delicate part of the
//! paper, [`witnesses`] additionally *verifies* every constructed
//! decomposition against the interval, so downstream synthesis is sound
//! regardless.
//!
//! The symbolic formulation (3.9) parameterizes the variable substitutions
//! `x_i ← ITE(c_i, x_i, y_i)` and universally quantifies `x, y`, yielding
//! all feasible supports in one BDD.

use crate::choices::ChoiceSet;
use crate::Interval;
use symbi_bdd::hash::FxHashMap;
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Scratch space holding the interval bounds copied next to a parallel
/// `y`-variable rail.
struct Scratch {
    mgr: Manager,
    xs: Vec<VarId>,
    ys: Vec<VarId>,
    lower: NodeId,
    upper: NodeId,
}

impl Scratch {
    fn new(m: &Manager, interval: &Interval, vars: &[VarId]) -> Self {
        let n = vars.len();
        let mut mgr = Manager::with_vars(2 * n);
        let xs: Vec<VarId> = (0..n).map(|i| VarId(2 * i as u32)).collect();
        let ys: Vec<VarId> = (0..n).map(|i| VarId(2 * i as u32 + 1)).collect();
        let var_map: FxHashMap<VarId, VarId> =
            vars.iter().copied().zip(xs.iter().copied()).collect();
        let lower = mgr.transfer_from(m, interval.lower, &var_map);
        let upper = mgr.transfer_from(m, interval.upper, &var_map);
        Scratch { mgr, xs, ys, lower, upper }
    }

    /// Renames `x_i → y_i` for the positions in `set`.
    fn flip(&mut self, f: NodeId, set: &[usize]) -> NodeId {
        let pairs: Vec<(VarId, VarId)> =
            set.iter().map(|&i| (self.xs[i], self.ys[i])).collect();
        self.mgr.rename(f, &pairs)
    }

    /// Budgeted [`Scratch::flip`].
    fn try_flip(
        &mut self,
        f: NodeId,
        set: &[usize],
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let pairs: Vec<(VarId, VarId)> =
            set.iter().map(|&i| (self.xs[i], self.ys[i])).collect();
        self.mgr.try_rename(f, &pairs, gov)
    }
}

fn positions(vars: &[VarId], subset: &[VarId]) -> Vec<usize> {
    subset
        .iter()
        .map(|v| {
            vars.iter()
                .position(|w| w == v)
                .unwrap_or_else(|| panic!("variable {v} is not in the declared support"))
        })
        .collect()
}

/// Existence check for `f = g1 ⊕ g2 ∈ [l, u]` with `g1` vacuous in
/// `a_vacuous` and `g2` vacuous in `b_vacuous` (Proposition 3.1 extended
/// to intervals).
///
/// For exact intervals the condition is exact; for proper intervals it is
/// the paper's bound-tightened condition (see the module docs) — pair it
/// with [`witnesses`], which verifies the construction.
///
/// # Panics
///
/// Panics if a vacuity set mentions a variable outside `vars`.
pub fn decomposable(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    let mut s = Scratch::new(m, interval, vars);
    let a = positions(vars, a_vacuous);
    let b = positions(vars, b_vacuous);
    let ab: Vec<usize> = {
        let mut t = a.clone();
        t.extend(b.iter().copied());
        t.sort_unstable();
        t.dedup();
        t
    };
    let l_a = s.flip(s.lower, &a);
    let u_a = s.flip(s.upper, &a);
    let l_b = s.flip(s.lower, &b);
    let u_b = s.flip(s.upper, &b);
    let l_ab = s.flip(s.lower, &ab);
    let u_ab = s.flip(s.upper, &ab);
    let must1 = s.mgr.xor(s.lower, l_a);
    let must2 = s.mgr.xor(s.upper, u_a);
    let premise = s.mgr.and(must1, must2);
    let dc_b = s.mgr.xor(l_b, u_b);
    let dc_ab = s.mgr.xor(l_ab, u_ab);
    let differ = s.mgr.xor(u_b, u_ab);
    let t = s.mgr.or(dc_b, dc_ab);
    let may = s.mgr.or(t, differ);
    let holds = s.mgr.implies(premise, may);
    holds.is_true()
}

/// Budgeted [`decomposable`].
pub fn try_decomposable(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<bool, ResourceExhausted> {
    let mut s = Scratch::new(m, interval, vars);
    let a = positions(vars, a_vacuous);
    let b = positions(vars, b_vacuous);
    let ab: Vec<usize> = {
        let mut t = a.clone();
        t.extend(b.iter().copied());
        t.sort_unstable();
        t.dedup();
        t
    };
    let l_a = s.try_flip(s.lower, &a, gov)?;
    let u_a = s.try_flip(s.upper, &a, gov)?;
    let l_b = s.try_flip(s.lower, &b, gov)?;
    let u_b = s.try_flip(s.upper, &b, gov)?;
    let l_ab = s.try_flip(s.lower, &ab, gov)?;
    let u_ab = s.try_flip(s.upper, &ab, gov)?;
    let must1 = s.mgr.try_xor(s.lower, l_a, gov)?;
    let must2 = s.mgr.try_xor(s.upper, u_a, gov)?;
    let premise = s.mgr.try_and(must1, must2, gov)?;
    let dc_b = s.mgr.try_xor(l_b, u_b, gov)?;
    let dc_ab = s.mgr.try_xor(l_ab, u_ab, gov)?;
    let differ = s.mgr.try_xor(u_b, u_ab, gov)?;
    let t = s.mgr.try_or(dc_b, dc_ab, gov)?;
    let may = s.mgr.try_or(t, differ, gov)?;
    let holds = s.mgr.try_implies(premise, may, gov)?;
    Ok(holds.is_true())
}

/// Constructs `(g1, g2)` with `g1 ⊕ g2` a member of the interval, `g1`
/// vacuous in `a_vacuous` and `g2` vacuous in `b_vacuous`, or `None` if no
/// construction is found.
///
/// Strategy: for each candidate completion of the interval (the reduced
/// upper bound, the lower bound, the upper bound), apply the cofactor
/// construction `g1 = f|A←0`, `g2 = f|B←0 ⊕ f|A←0,B←0` and keep the first
/// pair whose composition verifies. For exact intervals this succeeds
/// whenever [`decomposable`] holds.
pub fn witnesses(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> Option<(NodeId, NodeId)> {
    let member = interval.pick_member(m);
    let candidates = [member, interval.lower, interval.upper];
    for f in candidates {
        let g1 = cofactor_set(m, f, a_vacuous, false);
        let f_b0 = cofactor_set(m, f, b_vacuous, false);
        let f_ab0 = cofactor_set(m, f_b0, a_vacuous, false);
        let g2 = m.xor(f_b0, f_ab0);
        let composed = m.xor(g1, g2);
        if interval.contains(m, composed) {
            let _ = vars; // supports are implied by the vacuity sets
            return Some((g1, g2));
        }
    }
    None
}

/// Budgeted [`witnesses`]: same candidate order, same construction; a
/// successful call returns exactly what the unbudgeted version would.
pub fn try_witnesses(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<Option<(NodeId, NodeId)>, ResourceExhausted> {
    let member = interval.try_pick_member(m, gov)?;
    let candidates = [member, interval.lower, interval.upper];
    for f in candidates {
        let g1 = try_cofactor_set(m, f, a_vacuous, false, gov)?;
        let f_b0 = try_cofactor_set(m, f, b_vacuous, false, gov)?;
        let f_ab0 = try_cofactor_set(m, f_b0, a_vacuous, false, gov)?;
        let g2 = m.try_xor(f_b0, f_ab0, gov)?;
        let composed = m.try_xor(g1, g2, gov)?;
        if interval.try_contains(m, composed, gov)? {
            let _ = vars;
            return Ok(Some((g1, g2)));
        }
    }
    Ok(None)
}

fn cofactor_set(m: &mut Manager, f: NodeId, vars: &[VarId], value: bool) -> NodeId {
    let mut acc = f;
    for &v in vars {
        acc = m.cofactor(acc, v, value);
    }
    acc
}

fn try_cofactor_set(
    m: &mut Manager,
    f: NodeId,
    vars: &[VarId],
    value: bool,
    gov: &ResourceGovernor,
) -> Result<NodeId, ResourceExhausted> {
    let mut acc = f;
    for &v in vars {
        acc = m.try_cofactor(acc, v, value, gov)?;
    }
    Ok(acc)
}

/// The symbolic set of all feasible XOR-decomposition supports (3.9).
#[derive(Debug)]
pub struct Choices;

impl Choices {
    /// Computes the XOR `Bi(c1, c2)` for `interval` over `vars`.
    ///
    /// Runs in a private manager with the interleaved layout
    /// `(c1_i, c2_i, x_i, y_i)` per function variable. `c1_i = 1` keeps
    /// `x_i` in `supp(g1)`, likewise `c2` for `g2`; results are reported
    /// in the caller's variable ids through the returned [`ChoiceSet`].
    pub fn compute(m: &mut Manager, interval: &Interval, vars: &[VarId]) -> ChoiceSet {
        let n = vars.len();
        let mut mgr = Manager::with_vars(4 * n);
        let c1: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32)).collect();
        let c2: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 1)).collect();
        let xs: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 2)).collect();
        let ys: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 3)).collect();
        let var_map: FxHashMap<VarId, VarId> =
            vars.iter().copied().zip(xs.iter().copied()).collect();
        let lower = mgr.transfer_from(m, interval.lower, &var_map);
        let upper = mgr.transfer_from(m, interval.upper, &var_map);

        // Parameterized substitutions: x_i ← ITE(sel_i, x_i, y_i).
        let make_subst = |mgr: &mut Manager, sel: &dyn Fn(&mut Manager, usize) -> NodeId| {
            let pairs: Vec<(VarId, NodeId)> = (0..n)
                .map(|i| {
                    let s = sel(mgr, i);
                    let xv = mgr.var(xs[i]);
                    let yv = mgr.var(ys[i]);
                    let ite = mgr.ite(s, xv, yv);
                    (xs[i], ite)
                })
                .collect();
            mgr.register_substitution(&pairs)
        };
        let s1 = make_subst(&mut mgr, &|mgr, i| mgr.var(c1[i]));
        let s2 = make_subst(&mut mgr, &|mgr, i| mgr.var(c2[i]));
        let s12 = make_subst(&mut mgr, &|mgr, i| {
            let a = mgr.var(c1[i]);
            let b = mgr.var(c2[i]);
            mgr.and(a, b)
        });

        let l1 = mgr.vector_compose(lower, s1);
        let u1 = mgr.vector_compose(upper, s1);
        let l2 = mgr.vector_compose(lower, s2);
        let u2 = mgr.vector_compose(upper, s2);
        let l12 = mgr.vector_compose(lower, s12);
        let u12 = mgr.vector_compose(upper, s12);

        let must1 = mgr.xor(lower, l1);
        let must2 = mgr.xor(upper, u1);
        let premise = mgr.and(must1, must2);
        let dc2 = mgr.xor(l2, u2);
        let dc12 = mgr.xor(l12, u12);
        let differ = mgr.xor(u2, u12);
        let t = mgr.or(dc2, dc12);
        let may = mgr.or(t, differ);
        let body = mgr.implies(premise, may);
        let mut quant: Vec<VarId> = xs.clone();
        quant.extend(ys.iter().copied());
        let bi = mgr.forall(body, &quant);
        ChoiceSet { mgr, bi, c1, c2, ext_vars: vars.to_vec() }
    }

    /// Budgeted [`Choices::compute`]: the doubled variable rail makes the
    /// XOR `Bi` the largest symbolic object in the flow, so this is where
    /// a node ceiling earns its keep.
    pub fn try_compute(
        m: &mut Manager,
        interval: &Interval,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<ChoiceSet, ResourceExhausted> {
        let n = vars.len();
        let mut mgr = Manager::with_vars(4 * n);
        let c1: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32)).collect();
        let c2: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 1)).collect();
        let xs: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 2)).collect();
        let ys: Vec<VarId> = (0..n).map(|i| VarId(4 * i as u32 + 3)).collect();
        let var_map: FxHashMap<VarId, VarId> =
            vars.iter().copied().zip(xs.iter().copied()).collect();
        let lower = mgr.transfer_from(m, interval.lower, &var_map);
        let upper = mgr.transfer_from(m, interval.upper, &var_map);

        let make_subst = |mgr: &mut Manager,
                          sel: &dyn Fn(&mut Manager, usize) -> NodeId| {
            let pairs: Vec<(VarId, NodeId)> = (0..n)
                .map(|i| {
                    let s = sel(mgr, i);
                    let xv = mgr.var(xs[i]);
                    let yv = mgr.var(ys[i]);
                    let ite = mgr.ite(s, xv, yv);
                    (xs[i], ite)
                })
                .collect();
            mgr.register_substitution(&pairs)
        };
        let s1 = make_subst(&mut mgr, &|mgr, i| mgr.var(c1[i]));
        let s2 = make_subst(&mut mgr, &|mgr, i| mgr.var(c2[i]));
        let s12 = make_subst(&mut mgr, &|mgr, i| {
            let a = mgr.var(c1[i]);
            let b = mgr.var(c2[i]);
            mgr.and(a, b)
        });

        let l1 = mgr.try_vector_compose(lower, s1, gov)?;
        let u1 = mgr.try_vector_compose(upper, s1, gov)?;
        let l2 = mgr.try_vector_compose(lower, s2, gov)?;
        let u2 = mgr.try_vector_compose(upper, s2, gov)?;
        let l12 = mgr.try_vector_compose(lower, s12, gov)?;
        let u12 = mgr.try_vector_compose(upper, s12, gov)?;

        let must1 = mgr.try_xor(lower, l1, gov)?;
        let must2 = mgr.try_xor(upper, u1, gov)?;
        let premise = mgr.try_and(must1, must2, gov)?;
        let dc2 = mgr.try_xor(l2, u2, gov)?;
        let dc12 = mgr.try_xor(l12, u12, gov)?;
        let differ = mgr.try_xor(u2, u12, gov)?;
        let t = mgr.try_or(dc2, dc12, gov)?;
        let may = mgr.try_or(t, differ, gov)?;
        let body = mgr.try_implies(premise, may, gov)?;
        let mut quant: Vec<VarId> = xs.clone();
        quant.extend(ys.iter().copied());
        let bi = mgr.try_forall(body, &quant, gov)?;
        Ok(ChoiceSet { mgr, bi, c1, c2, ext_vars: vars.to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn parity_decomposes_everywhere() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let vars = vars(3);
        // g1 vacuous in {c}, g2 vacuous in {a, b}: g1 = a⊕b, g2 = c.
        assert!(decomposable(&mut m, &iv, &vars, &[VarId(2)], &[VarId(0), VarId(1)]));
        let (g1, g2) =
            witnesses(&mut m, &iv, &vars, &[VarId(2)], &[VarId(0), VarId(1)]).expect("exists");
        let composed = m.xor(g1, g2);
        assert_eq!(composed, f);
        assert_eq!(g1, t);
        assert_eq!(g2, vs[2]);
    }

    #[test]
    fn and_function_rejects_disjoint_xor() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.and(vs[0], vs[1]);
        let iv = Interval::exact(f);
        let vars = vars(2);
        assert!(!decomposable(&mut m, &iv, &vars, &[VarId(1)], &[VarId(0)]));
    }

    #[test]
    fn xor_of_ands_best_partition() {
        // f = ab ⊕ cd: best balanced partition is (2, 2).
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.xor(ab, cd);
        let iv = Interval::exact(f);
        let vars = vars(4);
        let mut ch = Choices::compute(&mut m, &iv, &vars);
        assert!(ch.is_feasible());
        assert_eq!(ch.best_balanced(), Some((2, 2)));
        let p = ch.pick_balanced_partition().expect("feasible");
        // The split must separate {a,b} from {c,d}.
        let g1_ab = p.g1_vars == vec![VarId(0), VarId(1)];
        let g1_cd = p.g1_vars == vec![VarId(2), VarId(3)];
        assert!(g1_ab || g1_cd, "got {p:?}");
        // Extract and verify.
        let a_vac: Vec<VarId> =
            (0..4u32).map(VarId).filter(|v| !p.g1_vars.contains(v)).collect();
        let b_vac: Vec<VarId> =
            (0..4u32).map(VarId).filter(|v| !p.g2_vars.contains(v)).collect();
        let (g1, g2) = witnesses(&mut m, &iv, &vars, &a_vac, &b_vac).expect("constructs");
        let composed = m.xor(g1, g2);
        assert!(iv.contains(&mut m, composed));
    }

    #[test]
    fn symbolic_bi_agrees_with_explicit_checks_exact() {
        // 3-var exhaustive agreement between Bi and decomposable().
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let f = m.xor(ab, vs[2]);
        let iv = Interval::exact(f);
        let vars = vars(3);
        let ch = Choices::compute(&mut m, &iv, &vars);
        for bits in 0u32..(1 << 6) {
            let c1_bits: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let c2_bits: Vec<bool> = (0..3).map(|i| bits >> (3 + i) & 1 == 1).collect();
            let a_vac: Vec<VarId> =
                (0..3).filter(|&i| !c1_bits[i]).map(|i| VarId(i as u32)).collect();
            let b_vac: Vec<VarId> =
                (0..3).filter(|&i| !c2_bits[i]).map(|i| VarId(i as u32)).collect();
            let explicit = decomposable(&mut m, &iv, &vars, &a_vac, &b_vac);
            let mut assignment = vec![false; ch.mgr.num_vars()];
            for i in 0..3 {
                assignment[4 * i] = c1_bits[i];
                assignment[4 * i + 1] = c2_bits[i];
            }
            let symbolic = ch.mgr.eval(ch.bi, &assignment);
            assert_eq!(symbolic, explicit, "c1={c1_bits:?} c2={c2_bits:?}");
        }
    }

    #[test]
    fn dont_cares_enable_xor_decomposition() {
        // f = majority(a,b,c) is not XOR-decomposable exactly, but with
        // the two constant-rows as don't cares the interval contains
        // a ⊕ b ⊕ c... it does not; use a targeted dc instead: make the
        // minterms {abc, āb̄c̄} don't cares so that both maj and maj⊕abc-ish
        // members exist; then check some partition becomes feasible that
        // was infeasible exactly.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.and(vs[0], vs[2]);
        let bc = m.and(vs[1], vs[2]);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        let iv_exact = Interval::exact(maj);
        let vars = vars(3);
        let a_vac = [VarId(2)];
        let b_vac = [VarId(0), VarId(1)];
        assert!(!decomposable(&mut m, &iv_exact, &vars, &a_vac, &b_vac));
        // Widen: don't care everywhere except where a = b (then maj = a).
        let axb = m.xor(vs[0], vs[1]);
        let iv = Interval::with_dontcare(&mut m, maj, axb);
        // Now f = a (vacuous in b, c) is a member: g1 = a, g2 = 0 works
        // with even the strictest vacuity sets.
        assert!(decomposable(&mut m, &iv, &vars, &[VarId(1), VarId(2)], &[VarId(0)]));
        let (g1, g2) = witnesses(&mut m, &iv, &vars, &[VarId(1), VarId(2)], &[VarId(0)])
            .expect("constructs");
        let composed = m.xor(g1, g2);
        assert!(iv.contains(&mut m, composed));
    }

    #[test]
    fn trivial_assignment_always_in_bi() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.and(vs[0], vs[1]);
        let f = m.or(t, vs[2]);
        let iv = Interval::exact(f);
        let vars = vars(3);
        let ch = Choices::compute(&mut m, &iv, &vars);
        let all_ones = vec![true; ch.mgr.num_vars()];
        assert!(ch.mgr.eval(ch.bi, &all_ones));
    }
}
