//! Intervals of Boolean functions (§3.2.1).
//!
//! `[l(x), u(x)] = { f : l(x) ≤ f(x) ≤ u(x) }` represents an incompletely
//! specified function by its lower and upper bounds. The interval is
//! *consistent* (non-empty) iff `l ≤ u`.

use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// An incompletely specified Boolean function, as the interval `[l, u]`.
///
/// # Example
///
/// ```
/// use symbi_bdd::Manager;
/// use symbi_core::Interval;
///
/// // Example 3.1 of the paper: [x̄y, x + y] holds four functions.
/// let mut m = Manager::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let nx = m.not(x);
/// let lower = m.and(nx, y);
/// let upper = m.or(x, y);
/// let iv = Interval::new(lower, upper);
/// assert!(iv.is_consistent(&mut m));
/// let dc = iv.dontcare_set(&mut m);
/// assert_eq!(m.sat_count(dc, 2), 2); // dc = x
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound: every member covers it.
    pub lower: NodeId,
    /// Upper bound: every member is contained in it.
    pub upper: NodeId,
}

impl Interval {
    /// Creates an interval from explicit bounds (not checked for
    /// consistency; see [`Interval::is_consistent`]).
    pub fn new(lower: NodeId, upper: NodeId) -> Self {
        Interval { lower, upper }
    }

    /// The degenerate interval `[f, f]` of a completely specified function.
    pub fn exact(f: NodeId) -> Self {
        Interval { lower: f, upper: f }
    }

    /// The interval `[f·¬dc, f + dc]`: function `f` with don't-care set
    /// `dc` — how unreachable states widen a signal's specification
    /// (§3.5.1).
    pub fn with_dontcare(m: &mut Manager, f: NodeId, dc: NodeId) -> Self {
        Interval { lower: m.diff(f, dc), upper: m.or(f, dc) }
    }

    /// Consistency (non-emptiness): `lower ≤ upper`.
    pub fn is_consistent(&self, m: &mut Manager) -> bool {
        m.leq(self.lower, self.upper)
    }

    /// Is the completely specified `f` a member of this interval?
    pub fn contains(&self, m: &mut Manager, f: NodeId) -> bool {
        m.leq(self.lower, f) && m.leq(f, self.upper)
    }

    /// The don't-care set `¬l · u`.
    pub fn dontcare_set(&self, m: &mut Manager) -> NodeId {
        m.diff(self.upper, self.lower)
    }

    /// Is the interval a single completely specified function?
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// The complemented interval `[ū, l̄]` (used for AND decomposition via
    /// OR duality, §3.3.1).
    pub fn complement(&self, m: &mut Manager) -> Interval {
        Interval { lower: m.not(self.upper), upper: m.not(self.lower) }
    }

    /// Abstraction `∀vars [l, u] = [∃vars l, ∀vars u]` (§3.2.1): the
    /// sub-interval of members that are vacuous in (independent of)
    /// `vars`. May be inconsistent — Example 3.2 abstracts `y` from
    /// `[x̄y, x+y]` and obtains the empty `[x̄, x]`.
    pub fn abstract_vars(&self, m: &mut Manager, vars: &[VarId]) -> Interval {
        Interval { lower: m.exists(self.lower, vars), upper: m.forall(self.upper, vars) }
    }

    /// Union of the bounds' supports.
    pub fn support(&self, m: &Manager) -> Vec<VarId> {
        let mut s = m.support(self.lower);
        s.extend(m.support(self.upper));
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Greedily abstracts every variable whose removal keeps the interval
    /// consistent, "selecting a dependence on the least number of
    /// variables" (§3.5.1). Returns the reduced interval and the variables
    /// removed.
    ///
    /// Greedy order is ascending variable id; the result is maximal (no
    /// further single abstraction applies) though not necessarily optimal
    /// across all subsets — use [`crate::param::abstraction_choices`] for
    /// the exhaustive symbolic version.
    pub fn reduce_support(&self, m: &mut Manager) -> (Interval, Vec<VarId>) {
        let mut current = *self;
        let mut removed = Vec::new();
        for v in self.support(m) {
            let candidate = current.abstract_vars(m, &[v]);
            if candidate.is_consistent(m) {
                current = candidate;
                removed.push(v);
            }
        }
        (current, removed)
    }

    /// Picks one member function, heuristically small: vacuous variables
    /// are abstracted first, then the lower bound is Coudert–Madre
    /// [`Manager::restrict`]ed to the care set `l + ū` (don't-care points
    /// float to whatever shrinks the BDD). Any member would be correct.
    pub fn pick_member(&self, m: &mut Manager) -> NodeId {
        let (reduced, _) = self.reduce_support(m);
        if reduced.is_exact() {
            return reduced.lower;
        }
        let dc = reduced.dontcare_set(m);
        let care = m.not(dc);
        let candidate = m.restrict(reduced.lower, care);
        if reduced.contains(m, candidate) {
            candidate
        } else {
            // `restrict` may leave the interval on don't-care points of
            // inconsistent polarity; clamp back into the bounds.
            let t = m.or(candidate, reduced.lower);
            m.and(t, reduced.upper)
        }
    }

    // --- Budgeted twins -------------------------------------------------
    //
    // Same computations as the methods above, with every BDD operation
    // routed through the governor. A successful call returns exactly what
    // the unbudgeted method would (BDD canonicity).

    /// Budgeted [`Interval::with_dontcare`].
    pub fn try_with_dontcare(
        m: &mut Manager,
        f: NodeId,
        dc: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<Self, ResourceExhausted> {
        Ok(Interval { lower: m.try_diff(f, dc, gov)?, upper: m.try_or(f, dc, gov)? })
    }

    /// Budgeted [`Interval::is_consistent`].
    pub fn try_is_consistent(
        &self,
        m: &mut Manager,
        gov: &ResourceGovernor,
    ) -> Result<bool, ResourceExhausted> {
        m.try_leq(self.lower, self.upper, gov)
    }

    /// Budgeted [`Interval::contains`].
    pub fn try_contains(
        &self,
        m: &mut Manager,
        f: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<bool, ResourceExhausted> {
        Ok(m.try_leq(self.lower, f, gov)? && m.try_leq(f, self.upper, gov)?)
    }

    /// Budgeted [`Interval::dontcare_set`].
    pub fn try_dontcare_set(
        &self,
        m: &mut Manager,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        m.try_diff(self.upper, self.lower, gov)
    }

    /// Budgeted [`Interval::complement`].
    pub fn try_complement(
        &self,
        m: &mut Manager,
        gov: &ResourceGovernor,
    ) -> Result<Interval, ResourceExhausted> {
        Ok(Interval { lower: m.try_not(self.upper, gov)?, upper: m.try_not(self.lower, gov)? })
    }

    /// Budgeted [`Interval::abstract_vars`].
    pub fn try_abstract_vars(
        &self,
        m: &mut Manager,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<Interval, ResourceExhausted> {
        Ok(Interval {
            lower: m.try_exists(self.lower, vars, gov)?,
            upper: m.try_forall(self.upper, vars, gov)?,
        })
    }

    /// Budgeted [`Interval::reduce_support`]: same greedy order, same
    /// result on success.
    pub fn try_reduce_support(
        &self,
        m: &mut Manager,
        gov: &ResourceGovernor,
    ) -> Result<(Interval, Vec<VarId>), ResourceExhausted> {
        let mut current = *self;
        let mut removed = Vec::new();
        for v in self.support(m) {
            let candidate = current.try_abstract_vars(m, &[v], gov)?;
            if candidate.try_is_consistent(m, gov)? {
                current = candidate;
                removed.push(v);
            }
        }
        Ok((current, removed))
    }

    /// Budgeted [`Interval::pick_member`].
    pub fn try_pick_member(
        &self,
        m: &mut Manager,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let (reduced, _) = self.try_reduce_support(m, gov)?;
        if reduced.is_exact() {
            return Ok(reduced.lower);
        }
        let dc = reduced.try_dontcare_set(m, gov)?;
        let care = m.try_not(dc, gov)?;
        let candidate = m.try_restrict(reduced.lower, care, gov)?;
        if reduced.try_contains(m, candidate, gov)? {
            Ok(candidate)
        } else {
            let t = m.try_or(candidate, reduced.lower, gov)?;
            m.try_and(t, reduced.upper, gov)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy(m: &mut Manager) -> (NodeId, NodeId) {
        (m.new_var(), m.new_var())
    }

    /// The paper's running interval `[x̄y, x+y]`.
    fn example_interval(m: &mut Manager) -> Interval {
        let (x, y) = xy(m);
        let nx = m.not(x);
        let lower = m.and(nx, y);
        let upper = m.or(x, y);
        Interval::new(lower, upper)
    }

    #[test]
    fn example_3_1_membership() {
        let mut m = Manager::new();
        let iv = example_interval(&mut m);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        assert!(iv.is_consistent(&mut m));
        // The four members: x̄y, y, x ⊕ y, x + y.
        let nx = m.not(x);
        let nxy = m.and(nx, y);
        let xor = m.xor(x, y);
        let or = m.or(x, y);
        for f in [nxy, y, xor, or] {
            assert!(iv.contains(&mut m, f));
        }
        // Non-members.
        let and = m.and(x, y);
        assert!(!iv.contains(&mut m, and));
        assert!(!iv.contains(&mut m, x));
        assert!(!iv.contains(&mut m, NodeId::TRUE));
        // Don't-care set is x.
        assert_eq!(iv.dontcare_set(&mut m), x);
    }

    #[test]
    fn example_3_2_abstractions() {
        let mut m = Manager::new();
        let iv = example_interval(&mut m);
        let y = m.var(VarId(1));
        // ∀x[x̄y, x+y] = [y, y]: unique member vacuous in x.
        let abs_x = iv.abstract_vars(&mut m, &[VarId(0)]);
        assert!(abs_x.is_consistent(&mut m));
        assert!(abs_x.is_exact());
        assert_eq!(abs_x.lower, y);
        // Abstraction of y yields the empty interval [x̄, x].
        let abs_y = iv.abstract_vars(&mut m, &[VarId(1)]);
        assert!(!abs_y.is_consistent(&mut m));
    }

    #[test]
    fn with_dontcare_bounds() {
        let mut m = Manager::new();
        let (x, y) = xy(&mut m);
        let f = m.or(x, y);
        let dc = m.and(x, y);
        let iv = Interval::with_dontcare(&mut m, f, dc);
        assert!(iv.is_consistent(&mut m));
        let xor = m.xor(x, y);
        assert_eq!(iv.lower, xor);
        assert_eq!(iv.upper, f);
        assert!(iv.contains(&mut m, f));
        assert!(iv.contains(&mut m, xor));
    }

    #[test]
    fn complement_swaps_and_negates() {
        let mut m = Manager::new();
        let iv = example_interval(&mut m);
        let comp = iv.complement(&mut m);
        assert!(comp.is_consistent(&mut m));
        // Members of the complement are complements of members.
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let xor = m.xor(x, y);
        let xnor = m.not(xor);
        assert!(iv.contains(&mut m, xor));
        assert!(comp.contains(&mut m, xnor));
        // Double complement is the identity.
        let back = comp.complement(&mut m);
        assert_eq!(back, iv);
    }

    #[test]
    fn reduce_support_removes_vacuous_vars() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        // f = v1, but specified with don't cares that make v0 and v2
        // abstractable: [v1·v0̄, v1 + v0] — v0 is abstractable, v2 unused.
        let nv0 = m.not(vs[0]);
        let lower = m.and(vs[1], nv0);
        let upper = m.or(vs[1], vs[0]);
        let iv = Interval::new(lower, upper);
        let (reduced, removed) = iv.reduce_support(&mut m);
        assert!(reduced.is_consistent(&mut m));
        assert_eq!(removed, vec![VarId(0)]);
        assert_eq!(reduced.lower, vs[1]);
        assert_eq!(reduced.upper, vs[1]);
    }

    #[test]
    fn exact_interval_has_no_freedom() {
        let mut m = Manager::new();
        let (x, y) = xy(&mut m);
        let f = m.xor(x, y);
        let iv = Interval::exact(f);
        assert!(iv.is_exact());
        assert!(iv.dontcare_set(&mut m).is_false());
        assert_eq!(iv.pick_member(&mut m), f);
        let (reduced, removed) = iv.reduce_support(&mut m);
        assert!(removed.is_empty());
        assert_eq!(reduced, iv);
    }

    #[test]
    fn pick_member_is_a_member() {
        let mut m = Manager::new();
        let iv = example_interval(&mut m);
        let f = iv.pick_member(&mut m);
        assert!(iv.contains(&mut m, f));
        // With x abstractable, the member should be y (support 1).
        assert_eq!(m.support(f), vec![VarId(1)]);
    }
}
