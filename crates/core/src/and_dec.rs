//! AND bi-decomposition through OR duality (§3.3.1).
//!
//! `f = g1 · g2 ∈ [l, u]` iff `f̄ = ḡ1 + ḡ2 ∈ [ū, l̄]`: every AND question
//! about an interval is an OR question about its complement, with the
//! witnesses complemented back.

use crate::choices::ChoiceSet;
use crate::{or_dec, Interval};
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Existence check: is `[l, u]` AND-decomposable with `g1` vacuous in
/// `a_vacuous` and `g2` vacuous in `b_vacuous`?
pub fn decomposable(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    let comp = interval.complement(m);
    or_dec::decomposable(m, &comp, a_vacuous, b_vacuous)
}

/// Witnesses `(g1, g2)` with `g1 · g2` a member of the interval, obtained
/// by complementing the OR witnesses of the complement interval.
pub fn witnesses(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (NodeId, NodeId) {
    let comp = interval.complement(m);
    let (h1, h2) = or_dec::witnesses(m, &comp, a_vacuous, b_vacuous);
    (m.not(h1), m.not(h2))
}

/// Budgeted [`decomposable`].
pub fn try_decomposable(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<bool, ResourceExhausted> {
    let comp = interval.try_complement(m, gov)?;
    or_dec::try_decomposable(m, &comp, a_vacuous, b_vacuous, gov)
}

/// Budgeted [`witnesses`].
pub fn try_witnesses(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<(NodeId, NodeId), ResourceExhausted> {
    let comp = interval.try_complement(m, gov)?;
    let (h1, h2) = or_dec::try_witnesses(m, &comp, a_vacuous, b_vacuous, gov)?;
    Ok((m.try_not(h1, gov)?, m.try_not(h2, gov)?))
}

/// The symbolic set of all feasible AND-decomposition supports.
#[derive(Debug)]
pub struct Choices;

impl Choices {
    /// Computes the AND `Bi(c1, c2)` as the OR `Bi` of the complement
    /// interval. Support semantics are identical.
    pub fn compute(m: &mut Manager, interval: &Interval, vars: &[VarId]) -> ChoiceSet {
        let comp = interval.complement(m);
        or_dec::Choices::compute(m, &comp, vars)
    }

    /// Budgeted [`Choices::compute`].
    pub fn try_compute(
        m: &mut Manager,
        interval: &Interval,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<ChoiceSet, ResourceExhausted> {
        let comp = interval.try_complement(m, gov)?;
        or_dec::Choices::try_compute(m, &comp, vars, gov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_decomposition_of_product() {
        // f = (a + b)(c + d).
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let l = m.or(vs[0], vs[1]);
        let r = m.or(vs[2], vs[3]);
        let f = m.and(l, r);
        let iv = Interval::exact(f);
        let a_vac = [VarId(2), VarId(3)];
        let b_vac = [VarId(0), VarId(1)];
        assert!(decomposable(&mut m, &iv, &a_vac, &b_vac));
        let (g1, g2) = witnesses(&mut m, &iv, &a_vac, &b_vac);
        assert_eq!(g1, l);
        assert_eq!(g2, r);
        let composed = m.and(g1, g2);
        assert!(iv.contains(&mut m, composed));
    }

    #[test]
    fn or_function_is_not_and_decomposable_disjointly() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.or(vs[0], vs[1]);
        let iv = Interval::exact(f);
        assert!(!decomposable(&mut m, &iv, &[VarId(1)], &[VarId(0)]));
    }

    #[test]
    fn choices_find_the_balanced_split() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let l = m.or(vs[0], vs[1]);
        let r = m.or(vs[2], vs[3]);
        let f = m.and(l, r);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let mut ch = Choices::compute(&mut m, &iv, &vars);
        assert_eq!(ch.best_balanced(), Some((2, 2)));
        let p = ch.pick_balanced_partition().expect("feasible");
        assert!(p.shared().is_empty());
    }

    #[test]
    fn dont_cares_help_and_too() {
        // Dual of Figure 3.1: f = (a+b)(a+c)(b+c), don't care on the
        // all-zero state.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.or(vs[0], vs[1]);
        let ac = m.or(vs[0], vs[2]);
        let bc = m.or(vs[1], vs[2]);
        let t = m.and(ab, ac);
        let f = m.and(t, bc);
        let na = m.not(vs[0]);
        let nc = m.not(vs[2]);
        let t2 = m.and(na, vs[1]);
        let zero_state = m.and(t2, nc); // ā·b·c̄, dual of Fig. 3.1's state
        let iv_exact = Interval::exact(f);
        let a_vac = [VarId(2)];
        let b_vac = [VarId(0)];
        assert!(!decomposable(&mut m, &iv_exact, &a_vac, &b_vac));
        let iv = Interval::with_dontcare(&mut m, f, zero_state);
        assert!(decomposable(&mut m, &iv, &a_vac, &b_vac));
        let (g1, g2) = witnesses(&mut m, &iv, &a_vac, &b_vac);
        let composed = m.and(g1, g2);
        assert!(iv.contains(&mut m, composed));
    }
}
