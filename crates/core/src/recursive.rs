//! Recursive decomposition of an interval into a tree of 2-input
//! primitives — the "applied recursively to decompose logic in terms of
//! simple primitives" step of the paper's synthesis loop (§3.5.3).
//!
//! Each step reduces vacuous variables, tries OR/AND/XOR bi-decomposition
//! (symbolically for small supports, greedily above a threshold), picks
//! the primitive with the most balanced partition, and recurses on the
//! derived sub-intervals. Don't-care freedom is propagated into the `g2`
//! sub-problem and the freshly re-derived `g1` interval, following the
//! standard interval-splitting rules:
//!
//! ```text
//! f = g1 + g2 ∈ [l, u], g1 vac. in A, g2 vac. in B
//!   g2 ∈ [∃B (l · ¬(∀A u)), ∀B u]       then
//!   g1 ∈ [∃A (l · ¬g2),      ∀A u]
//! ```
//!
//! (AND via complement duality, XOR via a verified member construction.)
//! When no non-trivial bi-decomposition exists the step falls back to a
//! Shannon expansion, which always removes one variable, so the recursion
//! terminates with leaves that are literals or constants.

use crate::portfolio::{self, PortfolioStats};
use crate::{and_dec, choices::SupportPair, greedy, or_dec, sat_dec, xor_dec, DecKind, Interval};
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// A tree of 2-input primitives over literal leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// Constant function.
    Const(bool),
    /// A literal: the variable, possibly complemented.
    Literal(VarId, bool),
    /// A 2-input gate.
    Op(DecKind, Box<Tree>, Box<Tree>),
}

impl Tree {
    /// Number of gates (internal nodes).
    pub fn num_gates(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(_, a, b) => 1 + a.num_gates() + b.num_gates(),
        }
    }

    /// Estimated and/inv-expansion cost: 1 AND2 per OR/AND node, 3 per
    /// XOR node (inverters are free, as in the netlist accounting).
    pub fn aig_cost(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(kind, a, b) => {
                let here = if *kind == DecKind::Xor { 3 } else { 1 };
                here + a.aig_cost() + b.aig_cost()
            }
        }
    }

    /// Depth in gate levels.
    pub fn depth(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// The complemented tree, with negation pushed to the leaves through
    /// De Morgan's laws (XOR absorbs the complement into one operand).
    pub fn negate(self) -> Tree {
        match self {
            Tree::Const(b) => Tree::Const(!b),
            Tree::Literal(v, phase) => Tree::Literal(v, !phase),
            Tree::Op(DecKind::Or, a, b) => {
                Tree::Op(DecKind::And, Box::new(a.negate()), Box::new(b.negate()))
            }
            Tree::Op(DecKind::And, a, b) => {
                Tree::Op(DecKind::Or, Box::new(a.negate()), Box::new(b.negate()))
            }
            Tree::Op(DecKind::Xor, a, b) => Tree::Op(DecKind::Xor, Box::new(a.negate()), b),
        }
    }

    /// Evaluates the tree to a BDD (for verification).
    pub fn to_bdd(&self, m: &mut Manager) -> NodeId {
        match self {
            Tree::Const(b) => {
                if *b {
                    NodeId::TRUE
                } else {
                    NodeId::FALSE
                }
            }
            Tree::Literal(v, phase) => m.literal(*v, *phase),
            Tree::Op(kind, a, b) => {
                let fa = a.to_bdd(m);
                let fb = b.to_bdd(m);
                match kind {
                    DecKind::Or => m.or(fa, fb),
                    DecKind::And => m.and(fa, fb),
                    DecKind::Xor => m.xor(fa, fb),
                }
            }
        }
    }

    /// All leaf variables, sorted and deduplicated.
    pub fn support(&self) -> Vec<VarId> {
        fn walk(t: &Tree, out: &mut Vec<VarId>) {
            match t {
                Tree::Const(_) => {}
                Tree::Literal(v, _) => out.push(*v),
                Tree::Op(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl std::fmt::Display for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tree::Const(b) => write!(f, "{}", u8::from(*b)),
            Tree::Literal(v, true) => write!(f, "{v}"),
            Tree::Literal(v, false) => write!(f, "!{v}"),
            Tree::Op(kind, a, b) => write!(f, "{kind}({a}, {b})"),
        }
    }
}

/// How partitions are searched at each recursion step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Always the exhaustive symbolic `Bi` computation.
    Symbolic,
    /// Always the greedy explicit growth.
    Greedy,
    /// Symbolic up to the given support size, greedy above.
    Auto(usize),
}

/// Which engine backs the fixed-partition decomposability checks of the
/// degradation ladder's *rescue rung* (see [`try_decompose`]).
///
/// Both alternate backends are sound and complete for the fixed
/// partitions the rescue tries, so the selected backend can change
/// *which* budget-tripped checks are saved — never the verdict of a
/// check that completes. `Sat` and `Portfolio` therefore produce
/// byte-identical trees at equal budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecBackend {
    /// BDD checks only: a budget trip degrades straight to greedy
    /// growth (the pre-portfolio behaviour).
    Bdd,
    /// Retry a budget-tripped check on the Lee–Jiang–Hung CNF encoding
    /// ([`crate::sat_dec`]); exact intervals only.
    Sat,
    /// Race the BDD check against the CNF check on two threads and take
    /// the first sound verdict ([`crate::portfolio`]).
    Portfolio,
}

impl std::fmt::Display for DecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DecBackend::Bdd => "bdd",
            DecBackend::Sat => "sat",
            DecBackend::Portfolio => "portfolio",
        })
    }
}

impl std::str::FromStr for DecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bdd" => Ok(DecBackend::Bdd),
            "sat" => Ok(DecBackend::Sat),
            "portfolio" => Ok(DecBackend::Portfolio),
            _ => Err(format!("unknown decomposability backend `{s}` (bdd|sat|portfolio)")),
        }
    }
}

/// Options for [`decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Partition search strategy (default: symbolic below 14 variables).
    pub strategy: PartitionStrategy,
    /// Consider XOR decompositions (default: true).
    pub use_xor: bool,
    /// Backend for the rescue rung of the degradation ladder
    /// (default: [`DecBackend::Bdd`], i.e. no rescue).
    pub backend: DecBackend,
    /// Conflict budget per SAT solve in the rescue rung (default: 20k).
    pub sat_conflicts: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            strategy: PartitionStrategy::Auto(14),
            use_xor: true,
            backend: DecBackend::Bdd,
            sat_conflicts: 20_000,
        }
    }
}

/// Counters describing which steps a decomposition used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// OR bi-decomposition steps taken.
    pub or_steps: usize,
    /// AND bi-decomposition steps taken.
    pub and_steps: usize,
    /// XOR bi-decomposition steps taken.
    pub xor_steps: usize,
    /// Shannon (MUX) fallback expansions.
    pub shannon_steps: usize,
    /// Variables removed by interval abstraction.
    pub vars_abstracted: usize,
    /// Governed operations that hit a resource limit (only
    /// [`try_decompose`] increments this; unbudgeted runs report 0).
    pub budget_exhausted_ops: usize,
    /// Degradation-ladder steps taken after an exhaustion: symbolic
    /// partition search → greedy growth → Shannon expansion.
    pub fallbacks_taken: usize,
    /// Budget-tripped partition searches saved by the rescue rung (a
    /// feasible fixed split proved by the SAT or portfolio backend).
    pub rescued_checks: usize,
    /// Portfolio-race counters (all zero unless the backend is
    /// [`DecBackend::Portfolio`]).
    pub portfolio: PortfolioStats,
}

/// Recursively decomposes a consistent interval into a [`Tree`] whose
/// function is a member of the interval.
///
/// # Panics
///
/// Panics if the interval is inconsistent.
pub fn decompose(m: &mut Manager, interval: &Interval, options: &Options) -> (Tree, Stats) {
    assert!(
        { interval.is_consistent(m) },
        "cannot decompose an empty interval"
    );
    let mut stats = Stats::default();
    let tree = decompose_rec(m, *interval, options, &mut stats, 0);
    (tree, stats)
}

fn decompose_rec(
    m: &mut Manager,
    interval: Interval,
    options: &Options,
    stats: &mut Stats,
    depth: usize,
) -> Tree {
    // 1. Abstract vacuous variables (§3.5.1 pre-processing).
    let (iv, removed) = interval.reduce_support(m);
    stats.vars_abstracted += removed.len();

    // 2. Constants.
    if iv.lower.is_false() {
        return Tree::Const(false);
    }
    if iv.upper.is_true() {
        return Tree::Const(true);
    }
    let support = iv.support(m);
    debug_assert!(!support.is_empty(), "non-constant interval with empty support");

    // 3. Single literal.
    if support.len() == 1 {
        let v = support[0];
        let pos = m.var(v);
        if iv.contains(m, pos) {
            return Tree::Literal(v, true);
        }
        let neg = m.not(pos);
        if iv.contains(m, neg) {
            return Tree::Literal(v, false);
        }
        unreachable!("a 1-variable non-constant interval contains a literal");
    }

    // 4. Bi-decomposition with the best balanced partition across kinds.
    // Stack depth is bounded by the support size, but guard anyway.
    if depth < 256 {
        if let Some((kind, pair)) = best_partition(m, &iv, &support, options) {
            let a_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
            let b_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
            match kind {
                DecKind::Or => {
                    stats.or_steps += 1;
                    let (t1, t2) = split_or(m, &iv, &a_vac, &b_vac, options, stats, depth);
                    return Tree::Op(DecKind::Or, Box::new(t1), Box::new(t2));
                }
                DecKind::And => {
                    stats.and_steps += 1;
                    let comp = iv.complement(m);
                    let (t1, t2) = split_or(m, &comp, &a_vac, &b_vac, options, stats, depth);
                    return Tree::Op(
                        DecKind::And,
                        Box::new(t1.negate()),
                        Box::new(t2.negate()),
                    );
                }
                DecKind::Xor => {
                    if let Some((g1, g2)) =
                        xor_dec::witnesses(m, &iv, &support, &a_vac, &b_vac)
                    {
                        stats.xor_steps += 1;
                        let t1 =
                            decompose_rec(m, Interval::exact(g1), options, stats, depth + 1);
                        let t2 =
                            decompose_rec(m, Interval::exact(g2), options, stats, depth + 1);
                        return Tree::Op(DecKind::Xor, Box::new(t1), Box::new(t2));
                    }
                    // Construction failed (interval condition was
                    // optimistic): fall through to Shannon.
                }
            }
        }
    }

    // 5. Shannon fallback: always removes one variable. The select
    // variable is chosen to balance (and ideally shrink) the cofactor
    // supports, which keeps the MUX tree shallow.
    stats.shannon_steps += 1;
    let v = *support
        .iter()
        .min_by_key(|&&v| {
            let hi_l = m.cofactor(iv.lower, v, true);
            let hi_u = m.cofactor(iv.upper, v, true);
            let lo_l = m.cofactor(iv.lower, v, false);
            let lo_u = m.cofactor(iv.upper, v, false);
            let hi_supp = Interval::new(hi_l, hi_u).support(m).len();
            let lo_supp = Interval::new(lo_l, lo_u).support(m).len();
            (hi_supp.max(lo_supp), hi_supp + lo_supp)
        })
        .expect("non-empty support");
    let hi = Interval::new(m.cofactor(iv.lower, v, true), m.cofactor(iv.upper, v, true));
    let lo = Interval::new(m.cofactor(iv.lower, v, false), m.cofactor(iv.upper, v, false));
    let t_hi = decompose_rec(m, hi, options, stats, depth + 1);
    let t_lo = decompose_rec(m, lo, options, stats, depth + 1);
    // ITE(v, hi, lo) = v·hi + v̄·lo.
    let then_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, true)),
        Box::new(t_hi),
    );
    let else_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, false)),
        Box::new(t_lo),
    );
    Tree::Op(DecKind::Or, Box::new(then_branch), Box::new(else_branch))
}

/// Derives the two OR sub-problems and recurses (shared by OR and, through
/// complementation, AND).
fn split_or(
    m: &mut Manager,
    iv: &Interval,
    a_vac: &[VarId],
    b_vac: &[VarId],
    options: &Options,
    stats: &mut Stats,
    depth: usize,
) -> (Tree, Tree) {
    let u1 = m.forall(iv.upper, a_vac);
    let u2 = m.forall(iv.upper, b_vac);
    // g2 covers what the maximal g1 cannot.
    let uncovered = m.diff(iv.lower, u1);
    let l2 = m.exists(uncovered, b_vac);
    let iv2 = Interval::new(l2, u2);
    let t2 = decompose_rec(m, iv2, options, stats, depth + 1);
    let g2 = t2.to_bdd(m);
    // Re-derive g1's obligation against the concrete g2.
    let residual = m.diff(iv.lower, g2);
    let l1 = m.exists(residual, a_vac);
    let iv1 = Interval::new(l1, u1);
    let t1 = decompose_rec(m, iv1, options, stats, depth + 1);
    (t1, t2)
}

/// Best balanced non-trivial partition across the enabled kinds.
fn best_partition(
    m: &mut Manager,
    iv: &Interval,
    support: &[VarId],
    options: &Options,
) -> Option<(DecKind, SupportPair)> {
    let n = support.len();
    let symbolic = match options.strategy {
        PartitionStrategy::Symbolic => true,
        PartitionStrategy::Greedy => false,
        PartitionStrategy::Auto(limit) => n <= limit,
    };
    let mut kinds = vec![DecKind::Or, DecKind::And];
    if options.use_xor {
        kinds.push(DecKind::Xor);
    }
    let mut best: Option<(DecKind, SupportPair)> = None;
    let mut best_key = (usize::MAX, usize::MAX, usize::MAX);
    for kind in kinds {
        let pair = if symbolic {
            let mut ch = match kind {
                DecKind::Or => or_dec::Choices::compute(m, iv, support),
                DecKind::And => and_dec::Choices::compute(m, iv, support),
                DecKind::Xor => xor_dec::Choices::compute(m, iv, support),
            };
            ch.pick_balanced_partition()
        } else {
            greedy::grow(m, kind, iv, support).map(|o| SupportPair {
                g1_vars: support
                    .iter()
                    .copied()
                    .filter(|v| !o.a_vacuous.contains(v))
                    .collect(),
                g2_vars: support
                    .iter()
                    .copied()
                    .filter(|v| !o.b_vacuous.contains(v))
                    .collect(),
            })
        };
        if let Some(p) = pair {
            let (k1, k2) = p.sizes();
            if k1.max(k2) >= n {
                continue; // trivial
            }
            let key = (k1.max(k2), k1 + k2, p.shared().len());
            if key < best_key {
                best_key = key;
                best = Some((kind, p));
            }
        }
    }
    best
}

/// Budgeted [`decompose`] with a graceful-degradation ladder.
///
/// Runs the identical algorithm with every BDD operation routed through
/// `gov`. When a *partition search* exhausts its budget the step degrades
/// instead of dying:
///
/// 1. the symbolic `Bi` computation runs under a child governor holding
///    half the remaining step budget (so a blow-up there cannot starve
///    the fallbacks),
/// 2. on exhaustion — with a non-default [`Options::backend`] — the
///    *rescue rung* retries a deterministic fixed split on the SAT or
///    portfolio backend instead of abandoning the partition,
/// 3. failing that, the step falls back to governed greedy growth,
/// 4. on exhaustion again, to the Shannon expansion.
///
/// Only the *structural* operations — deriving sub-intervals, Shannon
/// cofactors — propagate [`ResourceExhausted`], because without them no
/// correct tree can be produced at all. Callers (the synthesis flow) keep
/// the original cone in that case.
///
/// Under an unlimited governor this returns exactly what [`decompose`]
/// returns (with zeroed budget counters), by BDD canonicity.
pub fn try_decompose(
    m: &mut Manager,
    interval: &Interval,
    options: &Options,
    gov: &ResourceGovernor,
) -> Result<(Tree, Stats), ResourceExhausted> {
    assert!(
        { interval.is_consistent(m) },
        "cannot decompose an empty interval"
    );
    let mut stats = Stats::default();
    let tree = try_decompose_rec(m, *interval, options, &mut stats, 0, gov)?;
    Ok((tree, stats))
}

fn try_decompose_rec(
    m: &mut Manager,
    interval: Interval,
    options: &Options,
    stats: &mut Stats,
    depth: usize,
    gov: &ResourceGovernor,
) -> Result<Tree, ResourceExhausted> {
    let (iv, removed) = interval.try_reduce_support(m, gov)?;
    stats.vars_abstracted += removed.len();

    if iv.lower.is_false() {
        return Ok(Tree::Const(false));
    }
    if iv.upper.is_true() {
        return Ok(Tree::Const(true));
    }
    let support = iv.support(m);
    debug_assert!(!support.is_empty(), "non-constant interval with empty support");

    if support.len() == 1 {
        let v = support[0];
        let pos = m.var(v);
        if iv.try_contains(m, pos, gov)? {
            return Ok(Tree::Literal(v, true));
        }
        let neg = m.try_not(pos, gov)?;
        if iv.try_contains(m, neg, gov)? {
            return Ok(Tree::Literal(v, false));
        }
        unreachable!("a 1-variable non-constant interval contains a literal");
    }

    if depth < 256 {
        if let Some((kind, pair)) = try_best_partition(m, &iv, &support, options, stats, gov)? {
            let a_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
            let b_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
            match kind {
                DecKind::Or => {
                    stats.or_steps += 1;
                    let (t1, t2) =
                        try_split_or(m, &iv, &a_vac, &b_vac, options, stats, depth, gov)?;
                    return Ok(Tree::Op(DecKind::Or, Box::new(t1), Box::new(t2)));
                }
                DecKind::And => {
                    stats.and_steps += 1;
                    let comp = iv.try_complement(m, gov)?;
                    let (t1, t2) =
                        try_split_or(m, &comp, &a_vac, &b_vac, options, stats, depth, gov)?;
                    return Ok(Tree::Op(
                        DecKind::And,
                        Box::new(t1.negate()),
                        Box::new(t2.negate()),
                    ));
                }
                DecKind::Xor => {
                    // An exhausted witness construction degrades to
                    // Shannon like a failed one — the ladder's last rung
                    // still produces a correct tree.
                    match xor_dec::try_witnesses(m, &iv, &support, &a_vac, &b_vac, gov) {
                        Ok(Some((g1, g2))) => {
                            stats.xor_steps += 1;
                            let t1 = try_decompose_rec(
                                m,
                                Interval::exact(g1),
                                options,
                                stats,
                                depth + 1,
                                gov,
                            )?;
                            let t2 = try_decompose_rec(
                                m,
                                Interval::exact(g2),
                                options,
                                stats,
                                depth + 1,
                                gov,
                            )?;
                            return Ok(Tree::Op(DecKind::Xor, Box::new(t1), Box::new(t2)));
                        }
                        Ok(None) => {}
                        Err(_) => {
                            stats.budget_exhausted_ops += 1;
                            stats.fallbacks_taken += 1;
                        }
                    }
                }
            }
        }
    }

    stats.shannon_steps += 1;
    let mut best: Option<(usize, usize, VarId)> = None;
    for &v in &support {
        let hi_l = m.try_cofactor(iv.lower, v, true, gov)?;
        let hi_u = m.try_cofactor(iv.upper, v, true, gov)?;
        let lo_l = m.try_cofactor(iv.lower, v, false, gov)?;
        let lo_u = m.try_cofactor(iv.upper, v, false, gov)?;
        let hi_supp = Interval::new(hi_l, hi_u).support(m).len();
        let lo_supp = Interval::new(lo_l, lo_u).support(m).len();
        let key = (hi_supp.max(lo_supp), hi_supp + lo_supp);
        if best.is_none() || key < (best.unwrap().0, best.unwrap().1) {
            best = Some((key.0, key.1, v));
        }
    }
    let v = best.expect("non-empty support").2;
    let hi = Interval::new(
        m.try_cofactor(iv.lower, v, true, gov)?,
        m.try_cofactor(iv.upper, v, true, gov)?,
    );
    let lo = Interval::new(
        m.try_cofactor(iv.lower, v, false, gov)?,
        m.try_cofactor(iv.upper, v, false, gov)?,
    );
    let t_hi = try_decompose_rec(m, hi, options, stats, depth + 1, gov)?;
    let t_lo = try_decompose_rec(m, lo, options, stats, depth + 1, gov)?;
    let then_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, true)),
        Box::new(t_hi),
    );
    let else_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, false)),
        Box::new(t_lo),
    );
    Ok(Tree::Op(DecKind::Or, Box::new(then_branch), Box::new(else_branch)))
}

/// Governed [`split_or`].
#[allow(clippy::too_many_arguments)]
fn try_split_or(
    m: &mut Manager,
    iv: &Interval,
    a_vac: &[VarId],
    b_vac: &[VarId],
    options: &Options,
    stats: &mut Stats,
    depth: usize,
    gov: &ResourceGovernor,
) -> Result<(Tree, Tree), ResourceExhausted> {
    let u1 = m.try_forall(iv.upper, a_vac, gov)?;
    let u2 = m.try_forall(iv.upper, b_vac, gov)?;
    let uncovered = m.try_diff(iv.lower, u1, gov)?;
    let l2 = m.try_exists(uncovered, b_vac, gov)?;
    let iv2 = Interval::new(l2, u2);
    let t2 = try_decompose_rec(m, iv2, options, stats, depth + 1, gov)?;
    let g2 = t2.to_bdd(m);
    let residual = m.try_diff(iv.lower, g2, gov)?;
    let l1 = m.try_exists(residual, a_vac, gov)?;
    let iv1 = Interval::new(l1, u1);
    let t1 = try_decompose_rec(m, iv1, options, stats, depth + 1, gov)?;
    Ok((t1, t2))
}

/// Governed [`best_partition`] — the degradation ladder lives here.
///
/// Per kind: the symbolic search runs under a child governor holding half
/// the remaining step budget; if it exhausts, the rescue rung (SAT or
/// portfolio backend, when enabled) tries to prove a deterministic fixed
/// split; failing that, governed greedy growth takes over; if that
/// exhausts too, the kind simply reports "no partition", which steers
/// the caller into Shannon.
fn try_best_partition(
    m: &mut Manager,
    iv: &Interval,
    support: &[VarId],
    options: &Options,
    stats: &mut Stats,
    gov: &ResourceGovernor,
) -> Result<Option<(DecKind, SupportPair)>, ResourceExhausted> {
    let n = support.len();
    let symbolic = match options.strategy {
        PartitionStrategy::Symbolic => true,
        PartitionStrategy::Greedy => false,
        PartitionStrategy::Auto(limit) => n <= limit,
    };
    let mut kinds = vec![DecKind::Or, DecKind::And];
    if options.use_xor {
        kinds.push(DecKind::Xor);
    }
    let mut best: Option<(DecKind, SupportPair)> = None;
    let mut best_key = (usize::MAX, usize::MAX, usize::MAX);
    for kind in kinds {
        let pair = if symbolic {
            let sub = gov.fork_steps(gov.remaining_steps() / 2);
            let attempt = (|| {
                let mut ch = match kind {
                    DecKind::Or => or_dec::Choices::try_compute(m, iv, support, &sub)?,
                    DecKind::And => and_dec::Choices::try_compute(m, iv, support, &sub)?,
                    DecKind::Xor => xor_dec::Choices::try_compute(m, iv, support, &sub)?,
                };
                ch.try_pick_balanced_partition(&sub)
            })();
            match attempt {
                Ok(p) => p,
                Err(_) => {
                    stats.budget_exhausted_ops += 1;
                    stats.fallbacks_taken += 1;
                    // Rung 2 (sat/portfolio backends): instead of
                    // abandoning the partition search, retry a
                    // deterministic fixed split on the alternate
                    // backend — SAT often dispatches exactly the cones
                    // whose BDDs blew the budget.
                    let rescued = try_rescue_pair(m, kind, iv, support, options, stats, gov);
                    if rescued.is_some() {
                        stats.rescued_checks += 1;
                        rescued
                    } else {
                        // Rung 3: greedy growth, again under half of
                        // what is left — Shannon (rung 4) must keep a
                        // share of the budget or the ladder would die
                        // on its last step.
                        let greedy_sub = gov.fork_steps(gov.remaining_steps() / 2);
                        match try_greedy_pair(m, kind, iv, support, &greedy_sub) {
                            Ok(p) => p,
                            Err(_) => {
                                // Rung 4: no partition — Shannon
                                // handles it.
                                stats.budget_exhausted_ops += 1;
                                stats.fallbacks_taken += 1;
                                None
                            }
                        }
                    }
                }
            }
        } else {
            let greedy_sub = gov.fork_steps(gov.remaining_steps() / 2);
            match try_greedy_pair(m, kind, iv, support, &greedy_sub) {
                Ok(p) => p,
                Err(_) => {
                    stats.budget_exhausted_ops += 1;
                    stats.fallbacks_taken += 1;
                    None
                }
            }
        };
        if let Some(p) = pair {
            let (k1, k2) = p.sizes();
            if k1.max(k2) >= n {
                continue;
            }
            let key = (k1.max(k2), k1 + k2, p.shared().len());
            if key < best_key {
                best_key = key;
                best = Some((kind, p));
            }
        }
    }
    Ok(best)
}

/// The rescue rung: after a budget-tripped symbolic search, prove (or
/// refute) one deterministic candidate split — the midpoint of the
/// sorted support, the split a block-structured cone actually has — on
/// the backend selected by [`Options::backend`].
///
/// Runs under a half-budget fork of `gov` and swallows its own
/// exhaustion: `None` simply steers the ladder to the greedy rung. The
/// candidate split and both backends' verdicts are deterministic, so
/// whether a rescue succeeds is a pure function of the inputs and
/// budgets — never of thread timing.
fn try_rescue_pair(
    m: &mut Manager,
    kind: DecKind,
    iv: &Interval,
    support: &[VarId],
    options: &Options,
    stats: &mut Stats,
    gov: &ResourceGovernor,
) -> Option<SupportPair> {
    if options.backend == DecBackend::Bdd || support.len() < 2 {
        return None;
    }
    if options.backend == DecBackend::Sat && !iv.is_exact() {
        // The CNF encoding only handles completely specified functions;
        // the portfolio backend falls back to its BDD arm instead.
        return None;
    }
    let mid = support.len() / 2;
    let g1: Vec<VarId> = support[..mid].to_vec();
    let g2: Vec<VarId> = support[mid..].to_vec();
    // Vacuous sets are the complements: g1 must not read the g2 block
    // and vice versa.
    //
    // Quarter-budget fork, not the ladder's usual half: the portfolio
    // race *prepays* this fork's entire limit to the ancestors whatever
    // its arms consume, and a winning rescue still has to fund the
    // structural build of both halves afterwards. A half-size prepay
    // starves that build at exactly the budgets where the rescue fires.
    let sub = gov.fork_steps(gov.remaining_steps() / 4);
    let feasible = match options.backend {
        DecBackend::Bdd => unreachable!("handled above"),
        DecBackend::Sat => sat_dec::try_decomposable(
            m,
            kind,
            iv,
            support,
            &g2,
            &g1,
            options.sat_conflicts,
            &sub,
        )
        .map(|(dec, _)| dec),
        DecBackend::Portfolio => portfolio::try_decomposable(
            m,
            kind,
            iv,
            support,
            &g2,
            &g1,
            options.sat_conflicts,
            &sub,
        )
        .map(|(dec, race)| {
            stats.portfolio.absorb(&race);
            dec
        }),
    };
    match feasible {
        Ok(true) => Some(SupportPair { g1_vars: g1, g2_vars: g2 }),
        Ok(false) => None,
        Err(_) => {
            stats.budget_exhausted_ops += 1;
            None
        }
    }
}

fn try_greedy_pair(
    m: &mut Manager,
    kind: DecKind,
    iv: &Interval,
    support: &[VarId],
    gov: &ResourceGovernor,
) -> Result<Option<SupportPair>, ResourceExhausted> {
    Ok(greedy::grow_governed(m, kind, iv, support, gov)?.map(|o| SupportPair {
        g1_vars: support
            .iter()
            .copied()
            .filter(|v| !o.a_vacuous.contains(v))
            .collect(),
        g2_vars: support
            .iter()
            .copied()
            .filter(|v| !o.b_vacuous.contains(v))
            .collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(m: &mut Manager, iv: &Interval, tree: &Tree) {
        let f = tree.to_bdd(m);
        assert!(iv.contains(m, f), "tree {tree} is not a member of the interval");
    }

    #[test]
    fn decomposes_simple_sop() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let iv = Interval::exact(f);
        let (tree, stats) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        assert_eq!(tree.num_gates(), 3, "ab+cd needs exactly 3 two-input gates");
        assert_eq!(stats.shannon_steps, 0, "no fallback needed");
    }

    #[test]
    fn decomposes_parity_with_xor() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let t1 = m.xor(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[3]);
        let f = m.xor(t1, t2);
        let iv = Interval::exact(f);
        let (tree, stats) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        assert!(stats.xor_steps >= 1, "parity must use XOR steps, got {stats:?}");
        assert_eq!(tree.num_gates(), 3);
    }

    #[test]
    fn xor_disabled_still_correct() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let opts = Options { use_xor: false, ..Default::default() };
        let (tree, stats) = decompose(&mut m, &iv, &opts);
        verify(&mut m, &iv, &tree);
        assert_eq!(stats.xor_steps, 0);
        assert!(stats.shannon_steps > 0, "parity without XOR forces Shannon");
    }

    #[test]
    fn majority_with_dontcare_shrinks() {
        // Figure 3.1: maj(a,b,c) with abc unreachable decomposes into
        // 2-variable halves.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.and(vs[0], vs[2]);
        let bc = m.and(vs[1], vs[2]);
        let t = m.or(ab, ac);
        let f = m.or(t, bc);
        let nb = m.not(vs[1]);
        let anb = m.and(vs[0], nb);
        let dc = m.and(anb, vs[2]); // Fig. 3.1's unreachable state a·b̄·c
        let iv = Interval::with_dontcare(&mut m, f, dc);
        let (tree, _) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        // Each child of the root reads at most 2 variables.
        if let Tree::Op(_, a, b) = &tree {
            assert!(a.support().len() <= 2);
            assert!(b.support().len() <= 2);
        } else {
            panic!("expected a root gate, got {tree}");
        }
    }

    #[test]
    fn constants_and_literals() {
        let mut m = Manager::new();
        let v = m.new_var();
        let (t, _) = decompose(&mut m, &Interval::exact(NodeId::TRUE), &Options::default());
        assert_eq!(t, Tree::Const(true));
        let (t, _) = decompose(&mut m, &Interval::exact(NodeId::FALSE), &Options::default());
        assert_eq!(t, Tree::Const(false));
        let (t, _) = decompose(&mut m, &Interval::exact(v), &Options::default());
        assert_eq!(t, Tree::Literal(VarId(0), true));
        let nv = m.not(v);
        let (t, _) = decompose(&mut m, &Interval::exact(nv), &Options::default());
        assert_eq!(t, Tree::Literal(VarId(0), false));
    }

    #[test]
    fn interval_preferring_constant() {
        // [0, x]: the constant 0 is a member; the decomposer should take it.
        let mut m = Manager::new();
        let v = m.new_var();
        let iv = Interval::new(NodeId::FALSE, v);
        let (t, _) = decompose(&mut m, &iv, &Options::default());
        assert_eq!(t, Tree::Const(false));
    }

    #[test]
    fn greedy_strategy_also_verifies() {
        let mut m = Manager::new();
        let vs = m.new_vars(5);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let t = m.or(ab, cd);
        let f = m.or(t, vs[4]);
        let iv = Interval::exact(f);
        let opts = Options { strategy: PartitionStrategy::Greedy, ..Default::default() };
        let (tree, _) = decompose(&mut m, &iv, &opts);
        verify(&mut m, &iv, &tree);
    }

    #[test]
    fn governed_unlimited_matches_unbudgeted() {
        let gov = ResourceGovernor::unlimited();
        for use_xor in [true, false] {
            let mut m = Manager::new();
            let vs = m.new_vars(5);
            let ab = m.and(vs[0], vs[1]);
            let cd = m.and(vs[2], vs[3]);
            let x = m.xor(vs[3], vs[4]);
            let t = m.or(ab, cd);
            let f = m.or(t, x);
            let iv = Interval::exact(f);
            let opts = Options { use_xor, ..Default::default() };
            let (tree, stats) = decompose(&mut m, &iv, &opts);
            let (gtree, gstats) = try_decompose(&mut m, &iv, &opts, &gov).expect("unlimited");
            assert_eq!(gtree, tree, "unlimited governed run must reproduce the tree");
            assert_eq!(gstats.budget_exhausted_ops, 0);
            assert_eq!(gstats.fallbacks_taken, 0);
            assert_eq!(
                (stats.or_steps, stats.and_steps, stats.xor_steps, stats.shannon_steps),
                (gstats.or_steps, gstats.and_steps, gstats.xor_steps, gstats.shannon_steps),
            );
        }
    }

    #[test]
    fn starved_budgets_degrade_but_never_lie() {
        // Sweep step budgets from starvation upward: every Ok tree must be
        // a member of the interval; sufficiently large budgets succeed.
        let mut succeeded = false;
        let mut degraded = false;
        // Geometric sweep with ratio ≤ 1.05: the partial-degradation
        // window shifts with computed-table policy, but success-with-
        // fallback spans a >5% budget band, so this step cannot skip it.
        let mut budgets = vec![1u64];
        while *budgets.last().unwrap() < 1 << 24 {
            let b = *budgets.last().unwrap();
            budgets.push((b + b / 20).max(b + 1));
        }
        for budget in budgets {
            // Fresh manager per run: no warm cache, so small budgets bite.
            let mut fresh = Manager::new();
            let vs = fresh.new_vars(5);
            let ab = fresh.and(vs[0], vs[1]);
            let cd = fresh.and(vs[2], vs[3]);
            let t = fresh.or(ab, cd);
            let f2 = fresh.xor(t, vs[4]);
            let iv2 = Interval::exact(f2);
            let gov = ResourceGovernor::unlimited().with_step_limit(budget);
            // A starved Err is fine: no tree, but also no wrong answer.
            if let Ok((tree, stats)) = try_decompose(&mut fresh, &iv2, &Options::default(), &gov) {
                let g = tree.to_bdd(&mut fresh);
                assert!(
                    iv2.contains(&mut fresh, g),
                    "budget {budget}: tree {tree} not a member"
                );
                succeeded = true;
                if stats.budget_exhausted_ops > 0 {
                    degraded = true;
                }
            }
        }
        assert!(succeeded, "the largest budget must complete");
        assert!(degraded, "some mid-range budget must exercise the ladder");
    }

    /// Two disjoint 2-input AND blocks joined by an OR: the midpoint
    /// split of the sorted support is exactly the feasible partition,
    /// so the rescue rung's one candidate split is the right one. The
    /// function's BDD is tiny — only the symbolic `Bi` computation
    /// (a 12-variable private manager) is expensive, which is precisely
    /// the asymmetry the rescue rung exploits: the window where the
    /// symbolic search trips but the SAT check and the structural
    /// completion still fit spans a >3× budget band (measured ~1.6k to
    /// ~5.3k steps).
    fn two_block_function(m: &mut Manager) -> Interval {
        let vs = m.new_vars(4);
        let left = m.and(vs[0], vs[1]);
        let right = m.and(vs[2], vs[3]);
        let f = m.or(left, right);
        Interval::exact(f)
    }

    fn rescue_options(backend: DecBackend) -> Options {
        // XOR choices off: the XOR ladder halves the budget once more
        // per step, which narrows (but does not close) the rescue
        // window — keeping the sweep short matters more here.
        Options { backend, use_xor: false, ..Default::default() }
    }

    #[test]
    fn rescue_rung_saves_partitions_the_bdd_ladder_abandons() {
        // Sweep budgets: somewhere between starvation and plenty the
        // symbolic search trips while the SAT check still proves the
        // block split. Every Ok tree must verify on every rung.
        let mut rescued_somewhere = false;
        let mut budgets = vec![64u64];
        while *budgets.last().unwrap() < 1 << 16 {
            let b = *budgets.last().unwrap();
            budgets.push((b + b / 20).max(b + 1));
        }
        for &budget in &budgets {
            for backend in [DecBackend::Bdd, DecBackend::Sat] {
                let mut m = Manager::new();
                let iv = two_block_function(&mut m);
                let gov = ResourceGovernor::unlimited().with_step_limit(budget);
                if let Ok((tree, stats)) =
                    try_decompose(&mut m, &iv, &rescue_options(backend), &gov)
                {
                    let g = tree.to_bdd(&mut m);
                    assert!(iv.contains(&mut m, g), "budget {budget} {backend}: not a member");
                    if backend == DecBackend::Sat && stats.rescued_checks > 0 {
                        rescued_somewhere = true;
                    }
                    assert!(
                        backend != DecBackend::Bdd || stats.rescued_checks == 0,
                        "the bdd backend has no rescue rung"
                    );
                }
            }
        }
        assert!(rescued_somewhere, "some budget must exercise the SAT rescue");
    }

    #[test]
    fn portfolio_rescue_is_deterministic_across_reruns() {
        // The race prepays its budget, so step accounting — and with it
        // the produced tree — is a pure function of the limits, never of
        // which arm wins. Re-running must reproduce the tree exactly.
        let mut budgets = vec![64u64];
        while *budgets.last().unwrap() < 1 << 16 {
            let b = *budgets.last().unwrap();
            budgets.push(b + b / 4);
        }
        for &budget in &budgets {
            let opts = rescue_options(DecBackend::Portfolio);
            let run = || {
                let mut m = Manager::new();
                let iv = two_block_function(&mut m);
                let gov = ResourceGovernor::unlimited().with_step_limit(budget);
                try_decompose(&mut m, &iv, &opts, &gov)
                    .map(|(tree, stats)| (tree, stats.rescued_checks))
            };
            let first = run();
            let second = run();
            match (&first, &second) {
                (Ok((t1, r1)), Ok((t2, r2))) => {
                    assert_eq!(t1, t2, "budget {budget}: race winner leaked into the tree");
                    assert_eq!(r1, r2, "budget {budget}: rescue count must be deterministic");
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "budget {budget}"),
                _ => panic!("budget {budget}: one run succeeded, the other failed"),
            }
        }
    }

    #[test]
    fn unlimited_budgets_make_all_backends_identical() {
        let gov = ResourceGovernor::unlimited();
        let mut trees = Vec::new();
        for backend in [DecBackend::Bdd, DecBackend::Sat, DecBackend::Portfolio] {
            let mut m = Manager::new();
            let iv = two_block_function(&mut m);
            let opts = Options { backend, ..Default::default() };
            let (tree, stats) = try_decompose(&mut m, &iv, &opts, &gov).expect("unlimited");
            assert_eq!(stats.rescued_checks, 0, "{backend}: no budget trip, no rescue");
            assert_eq!(stats.portfolio, PortfolioStats::default());
            trees.push(tree);
        }
        assert_eq!(trees[0], trees[1], "sat backend is inert without budget trips");
        assert_eq!(trees[0], trees[2], "portfolio backend is inert without budget trips");
    }

    #[test]
    fn random_functions_always_verify() {
        // Deterministic pseudo-random truth tables over 5 vars; every
        // decomposition must compose back into the interval.
        let mut seed = 0xabcdef12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..10 {
            let mut m = Manager::new();
            m.new_vars(5);
            let bits: u32 = (next() & 0xffff_ffff) as u32;
            // Build f from its truth table.
            let mut f = NodeId::FALSE;
            for row in 0u32..32 {
                if bits >> (row % 32) & 1 == 1 {
                    let assignment: Vec<(VarId, bool)> =
                        (0..5).map(|i| (VarId(i), row >> i & 1 == 1)).collect();
                    let mt = m.minterm(&assignment);
                    f = m.or(f, mt);
                }
            }
            let dc_bits: u32 = (next() & 0xffff_ffff) as u32;
            let mut dc = NodeId::FALSE;
            for row in 0u32..32 {
                if dc_bits >> (row % 32) & 1 == 1 && row % 3 == 0 {
                    let assignment: Vec<(VarId, bool)> =
                        (0..5).map(|i| (VarId(i), row >> i & 1 == 1)).collect();
                    let mt = m.minterm(&assignment);
                    dc = m.or(dc, mt);
                }
            }
            let iv = Interval::with_dontcare(&mut m, f, dc);
            let (tree, _) = decompose(&mut m, &iv, &Options::default());
            let g = tree.to_bdd(&mut m);
            assert!(iv.contains(&mut m, g), "trial {trial} failed: {tree}");
        }
    }
}
