//! Recursive decomposition of an interval into a tree of 2-input
//! primitives — the "applied recursively to decompose logic in terms of
//! simple primitives" step of the paper's synthesis loop (§3.5.3).
//!
//! Each step reduces vacuous variables, tries OR/AND/XOR bi-decomposition
//! (symbolically for small supports, greedily above a threshold), picks
//! the primitive with the most balanced partition, and recurses on the
//! derived sub-intervals. Don't-care freedom is propagated into the `g2`
//! sub-problem and the freshly re-derived `g1` interval, following the
//! standard interval-splitting rules:
//!
//! ```text
//! f = g1 + g2 ∈ [l, u], g1 vac. in A, g2 vac. in B
//!   g2 ∈ [∃B (l · ¬(∀A u)), ∀B u]       then
//!   g1 ∈ [∃A (l · ¬g2),      ∀A u]
//! ```
//!
//! (AND via complement duality, XOR via a verified member construction.)
//! When no non-trivial bi-decomposition exists the step falls back to a
//! Shannon expansion, which always removes one variable, so the recursion
//! terminates with leaves that are literals or constants.

use crate::{and_dec, choices::SupportPair, greedy, or_dec, xor_dec, DecKind, Interval};
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// A tree of 2-input primitives over literal leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// Constant function.
    Const(bool),
    /// A literal: the variable, possibly complemented.
    Literal(VarId, bool),
    /// A 2-input gate.
    Op(DecKind, Box<Tree>, Box<Tree>),
}

impl Tree {
    /// Number of gates (internal nodes).
    pub fn num_gates(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(_, a, b) => 1 + a.num_gates() + b.num_gates(),
        }
    }

    /// Estimated and/inv-expansion cost: 1 AND2 per OR/AND node, 3 per
    /// XOR node (inverters are free, as in the netlist accounting).
    pub fn aig_cost(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(kind, a, b) => {
                let here = if *kind == DecKind::Xor { 3 } else { 1 };
                here + a.aig_cost() + b.aig_cost()
            }
        }
    }

    /// Depth in gate levels.
    pub fn depth(&self) -> usize {
        match self {
            Tree::Const(_) | Tree::Literal(..) => 0,
            Tree::Op(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// The complemented tree, with negation pushed to the leaves through
    /// De Morgan's laws (XOR absorbs the complement into one operand).
    pub fn negate(self) -> Tree {
        match self {
            Tree::Const(b) => Tree::Const(!b),
            Tree::Literal(v, phase) => Tree::Literal(v, !phase),
            Tree::Op(DecKind::Or, a, b) => {
                Tree::Op(DecKind::And, Box::new(a.negate()), Box::new(b.negate()))
            }
            Tree::Op(DecKind::And, a, b) => {
                Tree::Op(DecKind::Or, Box::new(a.negate()), Box::new(b.negate()))
            }
            Tree::Op(DecKind::Xor, a, b) => Tree::Op(DecKind::Xor, Box::new(a.negate()), b),
        }
    }

    /// Evaluates the tree to a BDD (for verification).
    pub fn to_bdd(&self, m: &mut Manager) -> NodeId {
        match self {
            Tree::Const(b) => {
                if *b {
                    NodeId::TRUE
                } else {
                    NodeId::FALSE
                }
            }
            Tree::Literal(v, phase) => m.literal(*v, *phase),
            Tree::Op(kind, a, b) => {
                let fa = a.to_bdd(m);
                let fb = b.to_bdd(m);
                match kind {
                    DecKind::Or => m.or(fa, fb),
                    DecKind::And => m.and(fa, fb),
                    DecKind::Xor => m.xor(fa, fb),
                }
            }
        }
    }

    /// All leaf variables, sorted and deduplicated.
    pub fn support(&self) -> Vec<VarId> {
        fn walk(t: &Tree, out: &mut Vec<VarId>) {
            match t {
                Tree::Const(_) => {}
                Tree::Literal(v, _) => out.push(*v),
                Tree::Op(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl std::fmt::Display for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tree::Const(b) => write!(f, "{}", u8::from(*b)),
            Tree::Literal(v, true) => write!(f, "{v}"),
            Tree::Literal(v, false) => write!(f, "!{v}"),
            Tree::Op(kind, a, b) => write!(f, "{kind}({a}, {b})"),
        }
    }
}

/// How partitions are searched at each recursion step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Always the exhaustive symbolic `Bi` computation.
    Symbolic,
    /// Always the greedy explicit growth.
    Greedy,
    /// Symbolic up to the given support size, greedy above.
    Auto(usize),
}

/// Options for [`decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Partition search strategy (default: symbolic below 14 variables).
    pub strategy: PartitionStrategy,
    /// Consider XOR decompositions (default: true).
    pub use_xor: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { strategy: PartitionStrategy::Auto(14), use_xor: true }
    }
}

/// Counters describing which steps a decomposition used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// OR bi-decomposition steps taken.
    pub or_steps: usize,
    /// AND bi-decomposition steps taken.
    pub and_steps: usize,
    /// XOR bi-decomposition steps taken.
    pub xor_steps: usize,
    /// Shannon (MUX) fallback expansions.
    pub shannon_steps: usize,
    /// Variables removed by interval abstraction.
    pub vars_abstracted: usize,
    /// Governed operations that hit a resource limit (only
    /// [`try_decompose`] increments this; unbudgeted runs report 0).
    pub budget_exhausted_ops: usize,
    /// Degradation-ladder steps taken after an exhaustion: symbolic
    /// partition search → greedy growth → Shannon expansion.
    pub fallbacks_taken: usize,
}

/// Recursively decomposes a consistent interval into a [`Tree`] whose
/// function is a member of the interval.
///
/// # Panics
///
/// Panics if the interval is inconsistent.
pub fn decompose(m: &mut Manager, interval: &Interval, options: &Options) -> (Tree, Stats) {
    assert!(
        { interval.is_consistent(m) },
        "cannot decompose an empty interval"
    );
    let mut stats = Stats::default();
    let tree = decompose_rec(m, *interval, options, &mut stats, 0);
    (tree, stats)
}

fn decompose_rec(
    m: &mut Manager,
    interval: Interval,
    options: &Options,
    stats: &mut Stats,
    depth: usize,
) -> Tree {
    // 1. Abstract vacuous variables (§3.5.1 pre-processing).
    let (iv, removed) = interval.reduce_support(m);
    stats.vars_abstracted += removed.len();

    // 2. Constants.
    if iv.lower.is_false() {
        return Tree::Const(false);
    }
    if iv.upper.is_true() {
        return Tree::Const(true);
    }
    let support = iv.support(m);
    debug_assert!(!support.is_empty(), "non-constant interval with empty support");

    // 3. Single literal.
    if support.len() == 1 {
        let v = support[0];
        let pos = m.var(v);
        if iv.contains(m, pos) {
            return Tree::Literal(v, true);
        }
        let neg = m.not(pos);
        if iv.contains(m, neg) {
            return Tree::Literal(v, false);
        }
        unreachable!("a 1-variable non-constant interval contains a literal");
    }

    // 4. Bi-decomposition with the best balanced partition across kinds.
    // Stack depth is bounded by the support size, but guard anyway.
    if depth < 256 {
        if let Some((kind, pair)) = best_partition(m, &iv, &support, options) {
            let a_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
            let b_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
            match kind {
                DecKind::Or => {
                    stats.or_steps += 1;
                    let (t1, t2) = split_or(m, &iv, &a_vac, &b_vac, options, stats, depth);
                    return Tree::Op(DecKind::Or, Box::new(t1), Box::new(t2));
                }
                DecKind::And => {
                    stats.and_steps += 1;
                    let comp = iv.complement(m);
                    let (t1, t2) = split_or(m, &comp, &a_vac, &b_vac, options, stats, depth);
                    return Tree::Op(
                        DecKind::And,
                        Box::new(t1.negate()),
                        Box::new(t2.negate()),
                    );
                }
                DecKind::Xor => {
                    if let Some((g1, g2)) =
                        xor_dec::witnesses(m, &iv, &support, &a_vac, &b_vac)
                    {
                        stats.xor_steps += 1;
                        let t1 =
                            decompose_rec(m, Interval::exact(g1), options, stats, depth + 1);
                        let t2 =
                            decompose_rec(m, Interval::exact(g2), options, stats, depth + 1);
                        return Tree::Op(DecKind::Xor, Box::new(t1), Box::new(t2));
                    }
                    // Construction failed (interval condition was
                    // optimistic): fall through to Shannon.
                }
            }
        }
    }

    // 5. Shannon fallback: always removes one variable. The select
    // variable is chosen to balance (and ideally shrink) the cofactor
    // supports, which keeps the MUX tree shallow.
    stats.shannon_steps += 1;
    let v = *support
        .iter()
        .min_by_key(|&&v| {
            let hi_l = m.cofactor(iv.lower, v, true);
            let hi_u = m.cofactor(iv.upper, v, true);
            let lo_l = m.cofactor(iv.lower, v, false);
            let lo_u = m.cofactor(iv.upper, v, false);
            let hi_supp = Interval::new(hi_l, hi_u).support(m).len();
            let lo_supp = Interval::new(lo_l, lo_u).support(m).len();
            (hi_supp.max(lo_supp), hi_supp + lo_supp)
        })
        .expect("non-empty support");
    let hi = Interval::new(m.cofactor(iv.lower, v, true), m.cofactor(iv.upper, v, true));
    let lo = Interval::new(m.cofactor(iv.lower, v, false), m.cofactor(iv.upper, v, false));
    let t_hi = decompose_rec(m, hi, options, stats, depth + 1);
    let t_lo = decompose_rec(m, lo, options, stats, depth + 1);
    // ITE(v, hi, lo) = v·hi + v̄·lo.
    let then_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, true)),
        Box::new(t_hi),
    );
    let else_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, false)),
        Box::new(t_lo),
    );
    Tree::Op(DecKind::Or, Box::new(then_branch), Box::new(else_branch))
}

/// Derives the two OR sub-problems and recurses (shared by OR and, through
/// complementation, AND).
fn split_or(
    m: &mut Manager,
    iv: &Interval,
    a_vac: &[VarId],
    b_vac: &[VarId],
    options: &Options,
    stats: &mut Stats,
    depth: usize,
) -> (Tree, Tree) {
    let u1 = m.forall(iv.upper, a_vac);
    let u2 = m.forall(iv.upper, b_vac);
    // g2 covers what the maximal g1 cannot.
    let uncovered = m.diff(iv.lower, u1);
    let l2 = m.exists(uncovered, b_vac);
    let iv2 = Interval::new(l2, u2);
    let t2 = decompose_rec(m, iv2, options, stats, depth + 1);
    let g2 = t2.to_bdd(m);
    // Re-derive g1's obligation against the concrete g2.
    let residual = m.diff(iv.lower, g2);
    let l1 = m.exists(residual, a_vac);
    let iv1 = Interval::new(l1, u1);
    let t1 = decompose_rec(m, iv1, options, stats, depth + 1);
    (t1, t2)
}

/// Best balanced non-trivial partition across the enabled kinds.
fn best_partition(
    m: &mut Manager,
    iv: &Interval,
    support: &[VarId],
    options: &Options,
) -> Option<(DecKind, SupportPair)> {
    let n = support.len();
    let symbolic = match options.strategy {
        PartitionStrategy::Symbolic => true,
        PartitionStrategy::Greedy => false,
        PartitionStrategy::Auto(limit) => n <= limit,
    };
    let mut kinds = vec![DecKind::Or, DecKind::And];
    if options.use_xor {
        kinds.push(DecKind::Xor);
    }
    let mut best: Option<(DecKind, SupportPair)> = None;
    let mut best_key = (usize::MAX, usize::MAX, usize::MAX);
    for kind in kinds {
        let pair = if symbolic {
            let mut ch = match kind {
                DecKind::Or => or_dec::Choices::compute(m, iv, support),
                DecKind::And => and_dec::Choices::compute(m, iv, support),
                DecKind::Xor => xor_dec::Choices::compute(m, iv, support),
            };
            ch.pick_balanced_partition()
        } else {
            greedy::grow(m, kind, iv, support).map(|o| SupportPair {
                g1_vars: support
                    .iter()
                    .copied()
                    .filter(|v| !o.a_vacuous.contains(v))
                    .collect(),
                g2_vars: support
                    .iter()
                    .copied()
                    .filter(|v| !o.b_vacuous.contains(v))
                    .collect(),
            })
        };
        if let Some(p) = pair {
            let (k1, k2) = p.sizes();
            if k1.max(k2) >= n {
                continue; // trivial
            }
            let key = (k1.max(k2), k1 + k2, p.shared().len());
            if key < best_key {
                best_key = key;
                best = Some((kind, p));
            }
        }
    }
    best
}

/// Budgeted [`decompose`] with a graceful-degradation ladder.
///
/// Runs the identical algorithm with every BDD operation routed through
/// `gov`. When a *partition search* exhausts its budget the step degrades
/// instead of dying:
///
/// 1. the symbolic `Bi` computation runs under a child governor holding
///    half the remaining step budget (so a blow-up there cannot starve
///    the fallbacks),
/// 2. on exhaustion the step falls back to governed greedy growth,
/// 3. on exhaustion again, to the Shannon expansion.
///
/// Only the *structural* operations — deriving sub-intervals, Shannon
/// cofactors — propagate [`ResourceExhausted`], because without them no
/// correct tree can be produced at all. Callers (the synthesis flow) keep
/// the original cone in that case.
///
/// Under an unlimited governor this returns exactly what [`decompose`]
/// returns (with zeroed budget counters), by BDD canonicity.
pub fn try_decompose(
    m: &mut Manager,
    interval: &Interval,
    options: &Options,
    gov: &ResourceGovernor,
) -> Result<(Tree, Stats), ResourceExhausted> {
    assert!(
        { interval.is_consistent(m) },
        "cannot decompose an empty interval"
    );
    let mut stats = Stats::default();
    let tree = try_decompose_rec(m, *interval, options, &mut stats, 0, gov)?;
    Ok((tree, stats))
}

fn try_decompose_rec(
    m: &mut Manager,
    interval: Interval,
    options: &Options,
    stats: &mut Stats,
    depth: usize,
    gov: &ResourceGovernor,
) -> Result<Tree, ResourceExhausted> {
    let (iv, removed) = interval.try_reduce_support(m, gov)?;
    stats.vars_abstracted += removed.len();

    if iv.lower.is_false() {
        return Ok(Tree::Const(false));
    }
    if iv.upper.is_true() {
        return Ok(Tree::Const(true));
    }
    let support = iv.support(m);
    debug_assert!(!support.is_empty(), "non-constant interval with empty support");

    if support.len() == 1 {
        let v = support[0];
        let pos = m.var(v);
        if iv.try_contains(m, pos, gov)? {
            return Ok(Tree::Literal(v, true));
        }
        let neg = m.try_not(pos, gov)?;
        if iv.try_contains(m, neg, gov)? {
            return Ok(Tree::Literal(v, false));
        }
        unreachable!("a 1-variable non-constant interval contains a literal");
    }

    if depth < 256 {
        if let Some((kind, pair)) = try_best_partition(m, &iv, &support, options, stats, gov)? {
            let a_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
            let b_vac: Vec<VarId> =
                support.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
            match kind {
                DecKind::Or => {
                    stats.or_steps += 1;
                    let (t1, t2) =
                        try_split_or(m, &iv, &a_vac, &b_vac, options, stats, depth, gov)?;
                    return Ok(Tree::Op(DecKind::Or, Box::new(t1), Box::new(t2)));
                }
                DecKind::And => {
                    stats.and_steps += 1;
                    let comp = iv.try_complement(m, gov)?;
                    let (t1, t2) =
                        try_split_or(m, &comp, &a_vac, &b_vac, options, stats, depth, gov)?;
                    return Ok(Tree::Op(
                        DecKind::And,
                        Box::new(t1.negate()),
                        Box::new(t2.negate()),
                    ));
                }
                DecKind::Xor => {
                    // An exhausted witness construction degrades to
                    // Shannon like a failed one — the ladder's last rung
                    // still produces a correct tree.
                    match xor_dec::try_witnesses(m, &iv, &support, &a_vac, &b_vac, gov) {
                        Ok(Some((g1, g2))) => {
                            stats.xor_steps += 1;
                            let t1 = try_decompose_rec(
                                m,
                                Interval::exact(g1),
                                options,
                                stats,
                                depth + 1,
                                gov,
                            )?;
                            let t2 = try_decompose_rec(
                                m,
                                Interval::exact(g2),
                                options,
                                stats,
                                depth + 1,
                                gov,
                            )?;
                            return Ok(Tree::Op(DecKind::Xor, Box::new(t1), Box::new(t2)));
                        }
                        Ok(None) => {}
                        Err(_) => {
                            stats.budget_exhausted_ops += 1;
                            stats.fallbacks_taken += 1;
                        }
                    }
                }
            }
        }
    }

    stats.shannon_steps += 1;
    let mut best: Option<(usize, usize, VarId)> = None;
    for &v in &support {
        let hi_l = m.try_cofactor(iv.lower, v, true, gov)?;
        let hi_u = m.try_cofactor(iv.upper, v, true, gov)?;
        let lo_l = m.try_cofactor(iv.lower, v, false, gov)?;
        let lo_u = m.try_cofactor(iv.upper, v, false, gov)?;
        let hi_supp = Interval::new(hi_l, hi_u).support(m).len();
        let lo_supp = Interval::new(lo_l, lo_u).support(m).len();
        let key = (hi_supp.max(lo_supp), hi_supp + lo_supp);
        if best.is_none() || key < (best.unwrap().0, best.unwrap().1) {
            best = Some((key.0, key.1, v));
        }
    }
    let v = best.expect("non-empty support").2;
    let hi = Interval::new(
        m.try_cofactor(iv.lower, v, true, gov)?,
        m.try_cofactor(iv.upper, v, true, gov)?,
    );
    let lo = Interval::new(
        m.try_cofactor(iv.lower, v, false, gov)?,
        m.try_cofactor(iv.upper, v, false, gov)?,
    );
    let t_hi = try_decompose_rec(m, hi, options, stats, depth + 1, gov)?;
    let t_lo = try_decompose_rec(m, lo, options, stats, depth + 1, gov)?;
    let then_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, true)),
        Box::new(t_hi),
    );
    let else_branch = Tree::Op(
        DecKind::And,
        Box::new(Tree::Literal(v, false)),
        Box::new(t_lo),
    );
    Ok(Tree::Op(DecKind::Or, Box::new(then_branch), Box::new(else_branch)))
}

/// Governed [`split_or`].
#[allow(clippy::too_many_arguments)]
fn try_split_or(
    m: &mut Manager,
    iv: &Interval,
    a_vac: &[VarId],
    b_vac: &[VarId],
    options: &Options,
    stats: &mut Stats,
    depth: usize,
    gov: &ResourceGovernor,
) -> Result<(Tree, Tree), ResourceExhausted> {
    let u1 = m.try_forall(iv.upper, a_vac, gov)?;
    let u2 = m.try_forall(iv.upper, b_vac, gov)?;
    let uncovered = m.try_diff(iv.lower, u1, gov)?;
    let l2 = m.try_exists(uncovered, b_vac, gov)?;
    let iv2 = Interval::new(l2, u2);
    let t2 = try_decompose_rec(m, iv2, options, stats, depth + 1, gov)?;
    let g2 = t2.to_bdd(m);
    let residual = m.try_diff(iv.lower, g2, gov)?;
    let l1 = m.try_exists(residual, a_vac, gov)?;
    let iv1 = Interval::new(l1, u1);
    let t1 = try_decompose_rec(m, iv1, options, stats, depth + 1, gov)?;
    Ok((t1, t2))
}

/// Governed [`best_partition`] — the degradation ladder lives here.
///
/// Per kind: the symbolic search runs under a child governor holding half
/// the remaining step budget; if it exhausts, governed greedy growth takes
/// over under the full remaining budget; if that exhausts too, the kind
/// simply reports "no partition", which steers the caller into Shannon.
fn try_best_partition(
    m: &mut Manager,
    iv: &Interval,
    support: &[VarId],
    options: &Options,
    stats: &mut Stats,
    gov: &ResourceGovernor,
) -> Result<Option<(DecKind, SupportPair)>, ResourceExhausted> {
    let n = support.len();
    let symbolic = match options.strategy {
        PartitionStrategy::Symbolic => true,
        PartitionStrategy::Greedy => false,
        PartitionStrategy::Auto(limit) => n <= limit,
    };
    let mut kinds = vec![DecKind::Or, DecKind::And];
    if options.use_xor {
        kinds.push(DecKind::Xor);
    }
    let mut best: Option<(DecKind, SupportPair)> = None;
    let mut best_key = (usize::MAX, usize::MAX, usize::MAX);
    for kind in kinds {
        let pair = if symbolic {
            let sub = gov.fork_steps(gov.remaining_steps() / 2);
            let attempt = (|| {
                let mut ch = match kind {
                    DecKind::Or => or_dec::Choices::try_compute(m, iv, support, &sub)?,
                    DecKind::And => and_dec::Choices::try_compute(m, iv, support, &sub)?,
                    DecKind::Xor => xor_dec::Choices::try_compute(m, iv, support, &sub)?,
                };
                ch.try_pick_balanced_partition(&sub)
            })();
            match attempt {
                Ok(p) => p,
                Err(_) => {
                    // Rung 2: greedy growth, again under half of what is
                    // left — Shannon (rung 3) must keep a share of the
                    // budget or the ladder would die on its last step.
                    stats.budget_exhausted_ops += 1;
                    stats.fallbacks_taken += 1;
                    let greedy_sub = gov.fork_steps(gov.remaining_steps() / 2);
                    match try_greedy_pair(m, kind, iv, support, &greedy_sub) {
                        Ok(p) => p,
                        Err(_) => {
                            // Rung 3: no partition — Shannon handles it.
                            stats.budget_exhausted_ops += 1;
                            stats.fallbacks_taken += 1;
                            None
                        }
                    }
                }
            }
        } else {
            let greedy_sub = gov.fork_steps(gov.remaining_steps() / 2);
            match try_greedy_pair(m, kind, iv, support, &greedy_sub) {
                Ok(p) => p,
                Err(_) => {
                    stats.budget_exhausted_ops += 1;
                    stats.fallbacks_taken += 1;
                    None
                }
            }
        };
        if let Some(p) = pair {
            let (k1, k2) = p.sizes();
            if k1.max(k2) >= n {
                continue;
            }
            let key = (k1.max(k2), k1 + k2, p.shared().len());
            if key < best_key {
                best_key = key;
                best = Some((kind, p));
            }
        }
    }
    Ok(best)
}

fn try_greedy_pair(
    m: &mut Manager,
    kind: DecKind,
    iv: &Interval,
    support: &[VarId],
    gov: &ResourceGovernor,
) -> Result<Option<SupportPair>, ResourceExhausted> {
    Ok(greedy::grow_governed(m, kind, iv, support, gov)?.map(|o| SupportPair {
        g1_vars: support
            .iter()
            .copied()
            .filter(|v| !o.a_vacuous.contains(v))
            .collect(),
        g2_vars: support
            .iter()
            .copied()
            .filter(|v| !o.b_vacuous.contains(v))
            .collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(m: &mut Manager, iv: &Interval, tree: &Tree) {
        let f = tree.to_bdd(m);
        assert!(iv.contains(m, f), "tree {tree} is not a member of the interval");
    }

    #[test]
    fn decomposes_simple_sop() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let iv = Interval::exact(f);
        let (tree, stats) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        assert_eq!(tree.num_gates(), 3, "ab+cd needs exactly 3 two-input gates");
        assert_eq!(stats.shannon_steps, 0, "no fallback needed");
    }

    #[test]
    fn decomposes_parity_with_xor() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let t1 = m.xor(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[3]);
        let f = m.xor(t1, t2);
        let iv = Interval::exact(f);
        let (tree, stats) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        assert!(stats.xor_steps >= 1, "parity must use XOR steps, got {stats:?}");
        assert_eq!(tree.num_gates(), 3);
    }

    #[test]
    fn xor_disabled_still_correct() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let opts = Options { use_xor: false, ..Default::default() };
        let (tree, stats) = decompose(&mut m, &iv, &opts);
        verify(&mut m, &iv, &tree);
        assert_eq!(stats.xor_steps, 0);
        assert!(stats.shannon_steps > 0, "parity without XOR forces Shannon");
    }

    #[test]
    fn majority_with_dontcare_shrinks() {
        // Figure 3.1: maj(a,b,c) with abc unreachable decomposes into
        // 2-variable halves.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.and(vs[0], vs[2]);
        let bc = m.and(vs[1], vs[2]);
        let t = m.or(ab, ac);
        let f = m.or(t, bc);
        let nb = m.not(vs[1]);
        let anb = m.and(vs[0], nb);
        let dc = m.and(anb, vs[2]); // Fig. 3.1's unreachable state a·b̄·c
        let iv = Interval::with_dontcare(&mut m, f, dc);
        let (tree, _) = decompose(&mut m, &iv, &Options::default());
        verify(&mut m, &iv, &tree);
        // Each child of the root reads at most 2 variables.
        if let Tree::Op(_, a, b) = &tree {
            assert!(a.support().len() <= 2);
            assert!(b.support().len() <= 2);
        } else {
            panic!("expected a root gate, got {tree}");
        }
    }

    #[test]
    fn constants_and_literals() {
        let mut m = Manager::new();
        let v = m.new_var();
        let (t, _) = decompose(&mut m, &Interval::exact(NodeId::TRUE), &Options::default());
        assert_eq!(t, Tree::Const(true));
        let (t, _) = decompose(&mut m, &Interval::exact(NodeId::FALSE), &Options::default());
        assert_eq!(t, Tree::Const(false));
        let (t, _) = decompose(&mut m, &Interval::exact(v), &Options::default());
        assert_eq!(t, Tree::Literal(VarId(0), true));
        let nv = m.not(v);
        let (t, _) = decompose(&mut m, &Interval::exact(nv), &Options::default());
        assert_eq!(t, Tree::Literal(VarId(0), false));
    }

    #[test]
    fn interval_preferring_constant() {
        // [0, x]: the constant 0 is a member; the decomposer should take it.
        let mut m = Manager::new();
        let v = m.new_var();
        let iv = Interval::new(NodeId::FALSE, v);
        let (t, _) = decompose(&mut m, &iv, &Options::default());
        assert_eq!(t, Tree::Const(false));
    }

    #[test]
    fn greedy_strategy_also_verifies() {
        let mut m = Manager::new();
        let vs = m.new_vars(5);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let t = m.or(ab, cd);
        let f = m.or(t, vs[4]);
        let iv = Interval::exact(f);
        let opts = Options { strategy: PartitionStrategy::Greedy, ..Default::default() };
        let (tree, _) = decompose(&mut m, &iv, &opts);
        verify(&mut m, &iv, &tree);
    }

    #[test]
    fn governed_unlimited_matches_unbudgeted() {
        let gov = ResourceGovernor::unlimited();
        for use_xor in [true, false] {
            let mut m = Manager::new();
            let vs = m.new_vars(5);
            let ab = m.and(vs[0], vs[1]);
            let cd = m.and(vs[2], vs[3]);
            let x = m.xor(vs[3], vs[4]);
            let t = m.or(ab, cd);
            let f = m.or(t, x);
            let iv = Interval::exact(f);
            let opts = Options { use_xor, ..Default::default() };
            let (tree, stats) = decompose(&mut m, &iv, &opts);
            let (gtree, gstats) = try_decompose(&mut m, &iv, &opts, &gov).expect("unlimited");
            assert_eq!(gtree, tree, "unlimited governed run must reproduce the tree");
            assert_eq!(gstats.budget_exhausted_ops, 0);
            assert_eq!(gstats.fallbacks_taken, 0);
            assert_eq!(
                (stats.or_steps, stats.and_steps, stats.xor_steps, stats.shannon_steps),
                (gstats.or_steps, gstats.and_steps, gstats.xor_steps, gstats.shannon_steps),
            );
        }
    }

    #[test]
    fn starved_budgets_degrade_but_never_lie() {
        // Sweep step budgets from starvation upward: every Ok tree must be
        // a member of the interval; sufficiently large budgets succeed.
        let mut succeeded = false;
        let mut degraded = false;
        // Geometric sweep with ratio ≤ 1.05: the partial-degradation
        // window shifts with computed-table policy, but success-with-
        // fallback spans a >5% budget band, so this step cannot skip it.
        let mut budgets = vec![1u64];
        while *budgets.last().unwrap() < 1 << 24 {
            let b = *budgets.last().unwrap();
            budgets.push((b + b / 20).max(b + 1));
        }
        for budget in budgets {
            // Fresh manager per run: no warm cache, so small budgets bite.
            let mut fresh = Manager::new();
            let vs = fresh.new_vars(5);
            let ab = fresh.and(vs[0], vs[1]);
            let cd = fresh.and(vs[2], vs[3]);
            let t = fresh.or(ab, cd);
            let f2 = fresh.xor(t, vs[4]);
            let iv2 = Interval::exact(f2);
            let gov = ResourceGovernor::unlimited().with_step_limit(budget);
            // A starved Err is fine: no tree, but also no wrong answer.
            if let Ok((tree, stats)) = try_decompose(&mut fresh, &iv2, &Options::default(), &gov) {
                let g = tree.to_bdd(&mut fresh);
                assert!(
                    iv2.contains(&mut fresh, g),
                    "budget {budget}: tree {tree} not a member"
                );
                succeeded = true;
                if stats.budget_exhausted_ops > 0 {
                    degraded = true;
                }
            }
        }
        assert!(succeeded, "the largest budget must complete");
        assert!(degraded, "some mid-range budget must exercise the ladder");
    }

    #[test]
    fn random_functions_always_verify() {
        // Deterministic pseudo-random truth tables over 5 vars; every
        // decomposition must compose back into the interval.
        let mut seed = 0xabcdef12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..10 {
            let mut m = Manager::new();
            m.new_vars(5);
            let bits: u32 = (next() & 0xffff_ffff) as u32;
            // Build f from its truth table.
            let mut f = NodeId::FALSE;
            for row in 0u32..32 {
                if bits >> (row % 32) & 1 == 1 {
                    let assignment: Vec<(VarId, bool)> =
                        (0..5).map(|i| (VarId(i), row >> i & 1 == 1)).collect();
                    let mt = m.minterm(&assignment);
                    f = m.or(f, mt);
                }
            }
            let dc_bits: u32 = (next() & 0xffff_ffff) as u32;
            let mut dc = NodeId::FALSE;
            for row in 0u32..32 {
                if dc_bits >> (row % 32) & 1 == 1 && row % 3 == 0 {
                    let assignment: Vec<(VarId, bool)> =
                        (0..5).map(|i| (VarId(i), row >> i & 1 == 1)).collect();
                    let mt = m.minterm(&assignment);
                    dc = m.or(dc, mt);
                }
            }
            let iv = Interval::with_dontcare(&mut m, f, dc);
            let (tree, _) = decompose(&mut m, &iv, &Options::default());
            let g = tree.to_bdd(&mut m);
            assert!(iv.contains(&mut m, g), "trial {trial} failed: {tree}");
        }
    }
}
