//! Greedy bi-decomposition baseline (the explicit algorithm of
//! Mishchenko–Steinbach–Perkowski, DAC'01, which the paper profiles its
//! implicit computation against in §3.4.2).
//!
//! Starting from a seed pair of variables assigned exclusively to each
//! side, the algorithm grows the two vacuity sets one variable at a time,
//! re-running the decomposability check in the inner loop. Efficient when
//! it converges quickly, but the repeated checks dominate on wide
//! functions — exactly the behaviour the paper's 16-bit-adder table
//! demonstrates.

use crate::{and_dec, or_dec, xor_dec, DecKind, Interval};
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Result of a greedy partition search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyOutcome {
    /// Variables `g1` ends up vacuous in.
    pub a_vacuous: Vec<VarId>,
    /// Variables `g2` ends up vacuous in.
    pub b_vacuous: Vec<VarId>,
    /// Number of decomposability checks performed (the profiled cost).
    pub checks: usize,
}

impl GreedyOutcome {
    /// `(|x1|, |x2|)` support sizes implied by the vacuity sets.
    pub fn sizes(&self, num_vars: usize) -> (usize, usize) {
        (num_vars - self.a_vacuous.len(), num_vars - self.b_vacuous.len())
    }
}

fn check(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    a: &[VarId],
    b: &[VarId],
) -> bool {
    match kind {
        DecKind::Or => or_dec::decomposable(m, interval, a, b),
        DecKind::And => and_dec::decomposable(m, interval, a, b),
        DecKind::Xor => xor_dec::decomposable(m, interval, vars, a, b),
    }
}

/// Result of [`grow_with_budget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreedyResult {
    /// A partition was grown.
    Found(GreedyOutcome),
    /// No seed pair admits a decomposition.
    Infeasible,
    /// The time budget expired mid-search (the fate of the paper's greedy
    /// check on the 16-bit adder's s16).
    TimedOut {
        /// Checks completed before the deadline.
        checks: usize,
    },
}

/// Greedily grows a non-trivial partition for the given primitive.
///
/// Seeds every ordered variable pair `(a, b)` until one admits a
/// decomposition with `a ∉ supp(g1)`, `b ∉ supp(g2)`, then extends both
/// vacuity sets over the remaining variables (preferring the smaller set,
/// which balances the supports). Returns `None` when no seed pair is
/// feasible — for OR/AND/XOR this means no non-trivial *disjoint-seeded*
/// decomposition exists.
pub fn grow(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
) -> Option<GreedyOutcome> {
    match grow_with_budget(m, kind, interval, vars, std::time::Duration::MAX) {
        GreedyResult::Found(o) => Some(o),
        _ => None,
    }
}

fn try_check(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    a: &[VarId],
    b: &[VarId],
    gov: &ResourceGovernor,
) -> Result<bool, ResourceExhausted> {
    match kind {
        DecKind::Or => or_dec::try_decomposable(m, interval, a, b, gov),
        DecKind::And => and_dec::try_decomposable(m, interval, a, b, gov),
        DecKind::Xor => xor_dec::try_decomposable(m, interval, vars, a, b, gov),
    }
}

/// Governed [`grow`]: the same seed-and-extend search with every inner
/// decomposability check budgeted. Unlike [`grow_with_budget`]'s
/// wall-clock-only deadline, the governor also fires *inside* a check the
/// moment a step or node limit trips, so a single pathological check
/// cannot blow past the budget. Returns `Ok(None)` when no seed pair is
/// feasible, `Err` when the budget ran out mid-search.
pub fn grow_governed(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    gov: &ResourceGovernor,
) -> Result<Option<GreedyOutcome>, ResourceExhausted> {
    let mut checks = 0usize;
    for (i, &seed_a) in vars.iter().enumerate() {
        for &seed_b in &vars[i + 1..] {
            checks += 1;
            if !try_check(m, kind, interval, vars, &[seed_a], &[seed_b], gov)? {
                continue;
            }
            let mut a = vec![seed_a];
            let mut b = vec![seed_b];
            for &x in vars {
                if x == seed_a || x == seed_b {
                    continue;
                }
                let a_first = a.len() <= b.len();
                if a_first {
                    a.push(x);
                } else {
                    b.push(x);
                }
                checks += 1;
                if !try_check(m, kind, interval, vars, &a, &b, gov)? {
                    if a_first {
                        a.pop();
                        b.push(x);
                    } else {
                        b.pop();
                        a.push(x);
                    }
                    checks += 1;
                    if !try_check(m, kind, interval, vars, &a, &b, gov)? {
                        if a_first {
                            b.pop();
                        } else {
                            a.pop();
                        }
                    }
                }
            }
            return Ok(Some(GreedyOutcome { a_vacuous: a, b_vacuous: b, checks }));
        }
    }
    Ok(None)
}

/// How the inner decomposability check is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStyle {
    /// Fully symbolic checks (this library's formulation).
    Symbolic,
    /// Explicit cofactor enumeration in the style of the DAC'01 greedy
    /// implementation the paper profiles (§3.4.2): XOR checks enumerate
    /// all `2^|A|` cofactors of the vacuity set, so cost explodes as the
    /// partition grows — the behaviour behind the paper's s16 timeout.
    /// Only the XOR check differs; OR/AND fall back to symbolic.
    ExplicitCofactor,
}

/// [`grow`] with a wall-clock budget, checked between decomposability
/// checks.
pub fn grow_with_budget(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    budget: std::time::Duration,
) -> GreedyResult {
    grow_styled(m, kind, interval, vars, budget, CheckStyle::Symbolic)
}

/// Explicit XOR decomposability check by cofactor enumeration: picks the
/// reference assignment `A = 0` and verifies that every cofactor
/// difference `f|_{A=a} ⊕ f|_{A=0}` is vacuous in `B`. Exponential in
/// `|a_vacuous|`; aborts (returning `None`) when the deadline passes.
fn explicit_xor_check(
    m: &mut Manager,
    f: NodeId,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    deadline: std::time::Instant,
) -> Option<bool> {
    let k = a_vacuous.len();
    if k >= usize::BITS as usize - 1 {
        return None; // cannot even enumerate
    }
    let mut reference = f;
    for &v in a_vacuous {
        reference = m.cofactor(reference, v, false);
    }
    for bits in 1u64..1 << k {
        if std::time::Instant::now() > deadline {
            return None;
        }
        let mut cof = f;
        for (i, &v) in a_vacuous.iter().enumerate() {
            cof = m.cofactor(cof, v, bits >> i & 1 == 1);
        }
        let diff = m.xor(cof, reference);
        let supp = m.support(diff);
        if supp.iter().any(|v| b_vacuous.contains(v)) {
            return Some(false);
        }
    }
    Some(true)
}

/// [`grow_with_budget`] with an explicit choice of check style.
pub fn grow_styled(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    budget: std::time::Duration,
    style: CheckStyle,
) -> GreedyResult {
    let start = std::time::Instant::now();
    let deadline = start.checked_add(budget).unwrap_or_else(|| {
        start + std::time::Duration::from_secs(86_400)
    });
    let styled_check = |m: &mut Manager,
                        checks: &mut usize,
                        a: &[VarId],
                        b: &[VarId]|
     -> Option<bool> {
        *checks += 1;
        match (style, kind) {
            (CheckStyle::ExplicitCofactor, DecKind::Xor) => {
                explicit_xor_check(m, interval.upper, a, b, deadline)
            }
            _ => Some(check(m, kind, interval, vars, a, b)),
        }
    };
    let mut checks = 0usize;
    for (i, &seed_a) in vars.iter().enumerate() {
        for &seed_b in &vars[i + 1..] {
            if std::time::Instant::now() > deadline {
                return GreedyResult::TimedOut { checks };
            }
            let Some(ok) = styled_check(m, &mut checks, &[seed_a], &[seed_b]) else {
                return GreedyResult::TimedOut { checks };
            };
            if !ok {
                continue;
            }
            let mut a = vec![seed_a];
            let mut b = vec![seed_b];
            for &x in vars {
                if x == seed_a || x == seed_b {
                    continue;
                }
                if std::time::Instant::now() > deadline {
                    return GreedyResult::TimedOut { checks };
                }
                // Try the smaller vacuity set first to keep supports
                // balanced (growing a vacuity set shrinks that side's
                // support).
                let a_first = a.len() <= b.len();
                if a_first {
                    a.push(x);
                } else {
                    b.push(x);
                }
                let Some(first_ok) = styled_check(m, &mut checks, &a, &b) else {
                    return GreedyResult::TimedOut { checks };
                };
                if !first_ok {
                    if a_first {
                        a.pop();
                        b.push(x);
                    } else {
                        b.pop();
                        a.push(x);
                    }
                    let Some(second_ok) = styled_check(m, &mut checks, &a, &b) else {
                        return GreedyResult::TimedOut { checks };
                    };
                    if !second_ok {
                        if a_first {
                            b.pop();
                        } else {
                            a.pop();
                        }
                    }
                }
            }
            return GreedyResult::Found(GreedyOutcome { a_vacuous: a, b_vacuous: b, checks });
        }
    }
    GreedyResult::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_or_finds_the_obvious_split() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let outcome = grow(&mut m, DecKind::Or, &iv, &vars).expect("decomposable");
        let (k1, k2) = outcome.sizes(4);
        assert_eq!((k1.min(k2), k1.max(k2)), (2, 2), "outcome {outcome:?}");
        assert!(outcome.checks >= 3);
        // The grown partition must actually be feasible.
        assert!(or_dec::decomposable(&mut m, &iv, &outcome.a_vacuous, &outcome.b_vacuous));
    }

    #[test]
    fn greedy_xor_on_parity() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let t1 = m.xor(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[3]);
        let f = m.xor(t1, t2);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let outcome = grow(&mut m, DecKind::Xor, &iv, &vars).expect("decomposable");
        // Parity splits fully: both vacuity sets non-empty, disjoint, and
        // jointly covering all variables.
        assert!(!outcome.a_vacuous.is_empty());
        assert!(!outcome.b_vacuous.is_empty());
        assert_eq!(outcome.a_vacuous.len() + outcome.b_vacuous.len(), 4);
        assert!(xor_dec::decomposable(
            &mut m,
            &iv,
            &vars,
            &outcome.a_vacuous,
            &outcome.b_vacuous
        ));
    }

    #[test]
    fn greedy_rejects_undecomposable() {
        // 2-var AND has no non-trivial OR decomposition with disjoint
        // exclusive seeds.
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.and(vs[0], vs[1]);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..2u32).map(VarId).collect();
        assert!(grow(&mut m, DecKind::Or, &iv, &vars).is_none());
        // But AND-decomposition of the same function succeeds.
        assert!(grow(&mut m, DecKind::And, &iv, &vars).is_some());
    }

    #[test]
    fn greedy_matches_symbolic_feasibility() {
        // Wherever greedy finds a partition, the symbolic Bi must contain
        // it; and greedy sizes can never beat the symbolic optimum.
        let mut m = Manager::new();
        let vs = m.new_vars(5);
        let ab = m.and(vs[0], vs[1]);
        let cde = m.and(vs[2], vs[3]);
        let cde = m.and(cde, vs[4]);
        let f = m.or(ab, cde);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..5u32).map(VarId).collect();
        let outcome = grow(&mut m, DecKind::Or, &iv, &vars).expect("decomposable");
        let (g1_size, g2_size) = outcome.sizes(5);
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        let (b1, b2) = ch.best_balanced().expect("symbolic agrees it decomposes");
        assert!(
            b1.max(b2) <= g1_size.max(g2_size),
            "symbolic optimum ({b1},{b2}) cannot be worse than greedy ({g1_size},{g2_size})"
        );
    }
}
