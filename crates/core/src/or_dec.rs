//! OR bi-decomposition of incompletely specified functions (§3.3.1, §3.4.1).
//!
//! For the interval `[l, u]` and disjoint *vacuity* sets `A` (variables
//! `g1` must not read) and `B` (for `g2`), the decomposition
//! `f = g1 + g2 ∈ [l, u]` exists iff
//!
//! ```text
//! l ≤ (∀A u) + (∀B u)                                   (3.2)
//! ```
//!
//! with canonical witnesses `g1 = ∀A u`, `g2 = ∀B u`. The symbolic form
//! parameterizes both universal abstractions with decision variables and
//! quantifies the function variables, producing the characteristic
//! function of **all** feasible supports at once:
//!
//! ```text
//! Bi(c1, c2) = ∀x [ l̄ + U1(x, c1) + U2(x, c2) ]          (3.8)
//! ```

use crate::choices::ChoiceSet;
use crate::param::{parameterize_forall, try_parameterize_forall};
use crate::Interval;
use symbi_bdd::hash::FxHashMap;
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Existence check (3.2): is `[l, u]` OR-decomposable with `g1` vacuous in
/// `a_vacuous` and `g2` vacuous in `b_vacuous`?
pub fn decomposable(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    let u1 = m.forall(interval.upper, a_vacuous);
    let u2 = m.forall(interval.upper, b_vacuous);
    let rhs = m.or(u1, u2);
    m.leq(interval.lower, rhs)
}

/// Canonical witnesses `(g1, g2) = (∀A u, ∀B u)` for a feasible pair of
/// vacuity sets. The composition `g1 + g2` is guaranteed to be a member of
/// the interval when [`decomposable`] holds.
pub fn witnesses(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (NodeId, NodeId) {
    (m.forall(interval.upper, a_vacuous), m.forall(interval.upper, b_vacuous))
}

/// Budgeted [`decomposable`].
pub fn try_decomposable(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<bool, ResourceExhausted> {
    let u1 = m.try_forall(interval.upper, a_vacuous, gov)?;
    let u2 = m.try_forall(interval.upper, b_vacuous, gov)?;
    let rhs = m.try_or(u1, u2, gov)?;
    m.try_leq(interval.lower, rhs, gov)
}

/// Budgeted [`witnesses`].
pub fn try_witnesses(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    gov: &ResourceGovernor,
) -> Result<(NodeId, NodeId), ResourceExhausted> {
    Ok((
        m.try_forall(interval.upper, a_vacuous, gov)?,
        m.try_forall(interval.upper, b_vacuous, gov)?,
    ))
}

/// *Weak* OR decomposition (Mishchenko–Steinbach–Perkowski's fallback
/// when no strong split exists): `f = g1(x∖A) + g2(x)` where only `g1`
/// drops variables and `g2` keeps full support but loses onset minterms
/// to `g1`. Returns `(g1, g2-interval)` — useful whenever the maximal
/// vacuous function `g1 = ∀A u` covers part of the lower bound, since
/// `g2` then only needs `[l·¬g1, u]`, which is a *simpler* residual
/// function to implement.
///
/// Returns `None` when `g1` would cover nothing (the weak step makes no
/// progress).
pub fn weak_witnesses(
    m: &mut Manager,
    interval: &Interval,
    a_vacuous: &[VarId],
) -> Option<(NodeId, Interval)> {
    let g1 = m.forall(interval.upper, a_vacuous);
    let covered = m.and(interval.lower, g1);
    if covered.is_false() {
        return None; // g1 contributes nothing
    }
    let residual_lower = m.diff(interval.lower, g1);
    Some((g1, Interval::new(residual_lower, interval.upper)))
}

/// The symbolic set of all feasible OR-decomposition supports.
///
/// This is a thin constructor around [`ChoiceSet`], which carries the
/// query API (balanced selection, counting, dominance purging, …).
#[derive(Debug)]
pub struct Choices;

impl Choices {
    /// Computes `Bi(c1, c2)` (3.8) for `interval` over `vars`.
    ///
    /// The computation runs in a private manager with the interleaved
    /// variable layout `(c1_i, c2_i, x_i)` per function variable, which
    /// keeps the parameterized abstraction local; `vars` lists the
    /// caller's variables, and all results are reported in those ids.
    ///
    /// # Panics
    ///
    /// Panics if the interval depends on variables outside `vars`.
    pub fn compute(m: &mut Manager, interval: &Interval, vars: &[VarId]) -> ChoiceSet {
        let n = vars.len();
        let mut mgr = Manager::with_vars(3 * n);
        let c1: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32)).collect();
        let c2: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32 + 1)).collect();
        let xs: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32 + 2)).collect();
        let var_map: FxHashMap<VarId, VarId> =
            vars.iter().copied().zip(xs.iter().copied()).collect();
        let lower = mgr.transfer_from(m, interval.lower, &var_map);
        let upper = mgr.transfer_from(m, interval.upper, &var_map);

        let pairs1: Vec<(VarId, VarId)> = xs.iter().copied().zip(c1.iter().copied()).collect();
        let pairs2: Vec<(VarId, VarId)> = xs.iter().copied().zip(c2.iter().copied()).collect();
        let u1 = parameterize_forall(&mut mgr, upper, &pairs1);
        let u2 = parameterize_forall(&mut mgr, upper, &pairs2);
        let nl = mgr.not(lower);
        let t = mgr.or(nl, u1);
        let body = mgr.or(t, u2);
        let bi = mgr.forall(body, &xs);
        ChoiceSet { mgr, bi, c1, c2, ext_vars: vars.to_vec() }
    }

    /// Budgeted [`Choices::compute`]: the `Bi` construction — the most
    /// explosion-prone step of the whole flow — unwinds with
    /// [`ResourceExhausted`] instead of running away. The node ceiling and
    /// step budget meter the *private* manager the computation runs in.
    pub fn try_compute(
        m: &mut Manager,
        interval: &Interval,
        vars: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<ChoiceSet, ResourceExhausted> {
        let n = vars.len();
        let mut mgr = Manager::with_vars(3 * n);
        let c1: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32)).collect();
        let c2: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32 + 1)).collect();
        let xs: Vec<VarId> = (0..n).map(|i| VarId(3 * i as u32 + 2)).collect();
        let var_map: FxHashMap<VarId, VarId> =
            vars.iter().copied().zip(xs.iter().copied()).collect();
        let lower = mgr.transfer_from(m, interval.lower, &var_map);
        let upper = mgr.transfer_from(m, interval.upper, &var_map);

        let pairs1: Vec<(VarId, VarId)> = xs.iter().copied().zip(c1.iter().copied()).collect();
        let pairs2: Vec<(VarId, VarId)> = xs.iter().copied().zip(c2.iter().copied()).collect();
        let u1 = try_parameterize_forall(&mut mgr, upper, &pairs1, gov)?;
        let u2 = try_parameterize_forall(&mut mgr, upper, &pairs2, gov)?;
        let nl = mgr.try_not(lower, gov)?;
        let t = mgr.try_or(nl, u1, gov)?;
        let body = mgr.try_or(t, u2, gov)?;
        let bi = mgr.try_forall(body, &xs, gov)?;
        Ok(ChoiceSet { mgr, bi, c1, c2, ext_vars: vars.to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_matches_witnesses() {
        // f = ab + c: g1 over {a,b} (vacuous in c), g2 over {c}.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let f = m.or(ab, vs[2]);
        let iv = Interval::exact(f);
        let a_vac = [VarId(2)];
        let b_vac = [VarId(0), VarId(1)];
        assert!(decomposable(&mut m, &iv, &a_vac, &b_vac));
        let (g1, g2) = witnesses(&mut m, &iv, &a_vac, &b_vac);
        assert_eq!(g1, ab);
        assert_eq!(g2, vs[2]);
        let composed = m.or(g1, g2);
        assert!(iv.contains(&mut m, composed));
    }

    #[test]
    fn infeasible_partition_rejected() {
        // f = a ⊕ b cannot be OR-decomposed with disjoint single-var parts.
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.xor(vs[0], vs[1]);
        let iv = Interval::exact(f);
        assert!(!decomposable(&mut m, &iv, &[VarId(1)], &[VarId(0)]));
    }

    #[test]
    fn dont_cares_enable_decomposition() {
        // Figure 3.1: f = ab + ac + bc with minterm abc unreachable.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.and(vs[0], vs[2]);
        let bc = m.and(vs[1], vs[2]);
        let t = m.or(ab, ac);
        let f = m.or(t, bc);
        let iv_exact = Interval::exact(f);
        // Without don't cares, dropping c from g1 and a from g2 fails…
        let a_vac = [VarId(2)];
        let b_vac = [VarId(0)];
        assert!(!decomposable(&mut m, &iv_exact, &a_vac, &b_vac));
        // …but with state a·b̄·c as a don't care it succeeds (Fig. 3.1's
        // unreachable state: the lower bound collapses to ab + bc).
        let nb = m.not(vs[1]);
        let anb = m.and(vs[0], nb);
        let dc = m.and(anb, vs[2]);
        let iv = Interval::with_dontcare(&mut m, f, dc);
        assert!(decomposable(&mut m, &iv, &a_vac, &b_vac));
        let (g1, g2) = witnesses(&mut m, &iv, &a_vac, &b_vac);
        let composed = m.or(g1, g2);
        assert!(iv.contains(&mut m, composed));
        // g1 reads only {a, b}, g2 only {b, c}.
        assert!(m.support(g1).iter().all(|v| *v != VarId(2)));
        assert!(m.support(g2).iter().all(|v| *v != VarId(0)));
    }

    #[test]
    fn symbolic_bi_agrees_with_explicit_checks() {
        // Exhaustively compare Bi against decomposable() on a 4-var
        // function for every (c1, c2) assignment.
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let ch = Choices::compute(&mut m, &iv, &vars);
        for bits in 0u32..(1 << 8) {
            let c1_bits: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let c2_bits: Vec<bool> = (0..4).map(|i| bits >> (4 + i) & 1 == 1).collect();
            // Vacuous sets are the 0-positions.
            let a_vac: Vec<VarId> =
                (0..4).filter(|&i| !c1_bits[i]).map(|i| VarId(i as u32)).collect();
            let b_vac: Vec<VarId> =
                (0..4).filter(|&i| !c2_bits[i]).map(|i| VarId(i as u32)).collect();
            let explicit = decomposable(&mut m, &iv, &a_vac, &b_vac);
            // Evaluate Bi at this assignment (internal layout: 3 vars per
            // position plus any appended query vars; assignment indexed by
            // variable id).
            let mut assignment = vec![false; ch.mgr.num_vars()];
            for i in 0..4 {
                assignment[3 * i] = c1_bits[i];
                assignment[3 * i + 1] = c2_bits[i];
            }
            let symbolic = ch.mgr.eval(ch.bi, &assignment);
            assert_eq!(symbolic, explicit, "c1={c1_bits:?} c2={c2_bits:?}");
        }
    }

    #[test]
    fn weak_decomposition_peels_covered_onset() {
        // f = ab + a⊕c has no strong OR split dropping {c} from both
        // halves, but weakly g1 = ∀c f = ab covers the ab part and leaves
        // g2 the simpler residual.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let ab = m.and(vs[0], vs[1]);
        let ac = m.xor(vs[0], vs[2]);
        let f = m.or(ab, ac);
        let iv = Interval::exact(f);
        let (g1, residual) = weak_witnesses(&mut m, &iv, &[VarId(2)]).expect("g1 covers ab");
        assert_eq!(g1, ab);
        assert!(residual.is_consistent(&mut m));
        // Any member of the residual recombines with g1 into f's interval.
        let g2 = residual.pick_member(&mut m);
        let composed = m.or(g1, g2);
        assert!(iv.contains(&mut m, composed));
        // The residual's mandatory part shrank.
        let res_count = m.sat_count(residual.lower, 3);
        let full_count = m.sat_count(f, 3);
        assert!(res_count < full_count);
    }

    #[test]
    fn weak_decomposition_reports_no_progress() {
        // Parity has no vacuous cover at all: ∀a (a⊕b) = 0.
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let f = m.xor(vs[0], vs[1]);
        let iv = Interval::exact(f);
        assert!(weak_witnesses(&mut m, &iv, &[VarId(0)]).is_none());
    }

    #[test]
    fn trivial_split_always_feasible_for_consistent_interval() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..3u32).map(VarId).collect();
        assert!(decomposable(&mut m, &iv, &[], &[]));
        let ch = Choices::compute(&mut m, &iv, &vars);
        assert!(ch.is_feasible());
    }
}
