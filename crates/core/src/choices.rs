//! Exploration of decomposition choices (§3.5.2).
//!
//! The characteristic function `Bi(c1, c2)` computed by
//! [`crate::or_dec::Choices`] / [`crate::xor_dec::Choices`] encodes *every*
//! feasible pair of supports for `g1` and `g2`: decision variable
//! `c1_i = 1` means variable `i` is in `supp(g1)`, and likewise `c2` for
//! `g2`. This module restricts that (potentially astronomically large) set
//! symbolically:
//!
//! - weight functions `w_k(c)` select supports of an exact size,
//! - the relation `K(c, e)` ties assignments to integer-encoded sizes, so
//!   `Bi_k(e1, e2) = ∃c1 c2 [Bi · K(c1,e1) · K(c2,e2)]` lists all feasible
//!   size pairs,
//! - a symbolic dominance purge drops pairs improved upon component-wise,
//! - balanced selection minimizes `max(k1, k2)` (then the total, then the
//!   imbalance), "favoring their disjoint selection".

use symbi_bdd::combin;
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// A chosen variable partition, in the caller's variable ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportPair {
    /// Support of `g1`.
    pub g1_vars: Vec<VarId>,
    /// Support of `g2`.
    pub g2_vars: Vec<VarId>,
}

impl SupportPair {
    /// Variables shared by both supports.
    pub fn shared(&self) -> Vec<VarId> {
        self.g1_vars.iter().copied().filter(|v| self.g2_vars.contains(v)).collect()
    }

    /// `(|x1|, |x2|)`.
    pub fn sizes(&self) -> (usize, usize) {
        (self.g1_vars.len(), self.g2_vars.len())
    }
}

/// The symbolic set of feasible decompositions, owned together with the
/// internal manager the `Bi` BDD lives in.
///
/// Constructed by [`crate::or_dec::Choices::compute`] and
/// [`crate::xor_dec::Choices::compute`]; this type provides the common
/// queries.
#[derive(Debug)]
pub struct ChoiceSet {
    pub(crate) mgr: Manager,
    pub(crate) bi: NodeId,
    pub(crate) c1: Vec<VarId>,
    pub(crate) c2: Vec<VarId>,
    /// Caller variable ids; position `i` corresponds to `c1[i]`/`c2[i]`.
    pub(crate) ext_vars: Vec<VarId>,
}

impl ChoiceSet {
    /// Number of function variables.
    pub fn num_vars(&self) -> usize {
        self.ext_vars.len()
    }

    /// Is any decomposition (including the trivial full-support ones)
    /// feasible?
    pub fn is_feasible(&self) -> bool {
        !self.bi.is_false()
    }

    /// Size (internal nodes) of the `Bi` BDD — the "BDD size" column of
    /// the paper's multiplexer profile.
    pub fn bi_size(&self) -> usize {
        self.mgr.size(self.bi)
    }

    /// Is some *non-trivial* decomposition feasible, i.e. one where both
    /// supports are strictly smaller than the full support?
    pub fn has_nontrivial(&mut self) -> bool {
        let n = self.num_vars();
        if n == 0 {
            return false;
        }
        let w1 = combin::weight_at_most(&mut self.mgr, &self.c1, n - 1);
        let w2 = combin::weight_at_most(&mut self.mgr, &self.c2, n - 1);
        let t = self.mgr.and(self.bi, w1);
        let t = self.mgr.and(t, w2);
        !t.is_false()
    }

    /// All feasible support-size pairs `(k1, k2)`, computed through the
    /// symbolic `Bi_k` construction, with dominated pairs purged when
    /// `purge_dominated` is set. Sorted ascending.
    pub fn feasible_pairs(&mut self, purge_dominated: bool) -> Vec<(usize, usize)> {
        let n = self.num_vars();
        if !self.is_feasible() {
            return Vec::new();
        }
        if n == 0 {
            return vec![(0, 0)];
        }
        let width = combin::bits_for(n);
        let e1 = self.fresh_vars(width);
        let e2 = self.fresh_vars(width);
        // Bi_k(e1, e2) = ∃c1 c2 [Bi · K(c1,e1) · K(c2,e2)].
        let k1 = combin::weight_relation(&mut self.mgr, &self.c1, &e1);
        let k2 = combin::weight_relation(&mut self.mgr, &self.c2, &e2);
        let mut cs: Vec<VarId> = self.c1.clone();
        cs.extend(self.c2.iter().copied());
        let cube = self.mgr.cube(&cs);
        let t = self.mgr.and(self.bi, k1);
        let t2 = self.mgr.and(t, k2);
        let mut bik = self.mgr.exists_cube(t2, cube);

        if purge_dominated {
            bik = self.purge_dominated(bik, &e1, &e2);
        }

        // Enumerate by membership test per (k1, k2): n² cheap cofactor
        // probes, robust against don't-care bits in cube enumeration.
        let mut out = Vec::new();
        for s1 in 0..=n {
            let enc1 = combin::encode_int(&mut self.mgr, &e1, s1);
            let with1 = self.mgr.and(bik, enc1);
            if with1.is_false() {
                continue;
            }
            for s2 in 0..=n {
                let enc2 = combin::encode_int(&mut self.mgr, &e2, s2);
                let both = self.mgr.and(with1, enc2);
                if !both.is_false() {
                    out.push((s1, s2));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Subtracts pairs dominated by a component-wise smaller feasible pair
    /// (the `dom(ε, ε′)` purge of §3.5.2).
    fn purge_dominated(&mut self, bik: NodeId, e1: &[VarId], e2: &[VarId]) -> NodeId {
        let width = e1.len();
        let p1 = self.fresh_vars(width);
        let p2 = self.fresh_vars(width);
        // Bi_k over the primed variables.
        let rename: Vec<(VarId, VarId)> = e1
            .iter()
            .copied()
            .zip(p1.iter().copied())
            .chain(e2.iter().copied().zip(p2.iter().copied()))
            .collect();
        let bik_primed = self.mgr.rename(bik, &rename);
        // dom(ε, ε′): ε′ dominates ε.
        let ge1 = combin::gte(&mut self.mgr, e1, &p1);
        let ge2 = combin::gte(&mut self.mgr, e2, &p2);
        let eq1 = combin::equ(&mut self.mgr, e1, &p1);
        let eq2 = combin::equ(&mut self.mgr, e2, &p2);
        let both_eq = self.mgr.and(eq1, eq2);
        let strict = self.mgr.not(both_eq);
        let ge = self.mgr.and(ge1, ge2);
        let dom = self.mgr.and(ge, strict);
        // dominated(ε) = ∃ε′ [Bi_k(ε′) · dom(ε, ε′)].
        let witness = self.mgr.and(bik_primed, dom);
        let mut primed: Vec<VarId> = p1;
        primed.extend(p2);
        let primed_cube = self.mgr.cube(&primed);
        let dominated = self.mgr.exists_cube(witness, primed_cube);
        self.mgr.diff(bik, dominated)
    }

    /// Best balanced non-trivial size pair: minimal `max(k1,k2)`, then
    /// minimal `k1+k2`, then minimal imbalance. `None` when only trivial
    /// (full-support) decompositions exist.
    pub fn best_balanced(&mut self) -> Option<(usize, usize)> {
        let n = self.num_vars();
        self.feasible_pairs(true)
            .into_iter()
            .filter(|&(a, b)| a.max(b) < n)
            .min_by_key(|&(a, b)| (a.max(b), a + b, a.abs_diff(b)))
    }

    /// Number of feasible decompositions with exactly the given support
    /// sizes — the "No. of Choices" column of the multiplexer profile.
    /// Computed as a satisfying-assignment count over the `2n` decision
    /// variables (in `f64`, since the count reaches `1.8·10^18` for the
    /// paper's widest multiplexer).
    pub fn count_choices(&mut self, k1: usize, k2: usize) -> f64 {
        let w1 = combin::weight_exactly(&mut self.mgr, &self.c1, k1);
        let w2 = combin::weight_exactly(&mut self.mgr, &self.c2, k2);
        let t = self.mgr.and(self.bi, w1);
        let t = self.mgr.and(t, w2);
        // `Bi` and the weights depend only on the 2n decision variables.
        self.mgr.sat_fraction(t) * 2f64.powi(2 * self.num_vars() as i32)
    }

    /// Picks one feasible partition with the given support sizes, returned
    /// in the caller's variable ids. `None` if the sizes are infeasible.
    pub fn pick_partition(&mut self, k1: usize, k2: usize) -> Option<SupportPair> {
        let w1 = combin::weight_exactly(&mut self.mgr, &self.c1, k1);
        let w2 = combin::weight_exactly(&mut self.mgr, &self.c2, k2);
        let t = self.mgr.and(self.bi, w1);
        let constrained = self.mgr.and(t, w2);
        let cube = self.mgr.one_sat(constrained)?;
        let on = |vars: &[VarId]| -> Vec<VarId> {
            // Weight functions pin every decision variable, so the cube
            // mentions each c-variable explicitly.
            vars.iter()
                .enumerate()
                .filter(|&(_, &c)| cube.iter().any(|&(v, phase)| v == c && phase))
                .map(|(i, _)| self.ext_vars[i])
                .collect()
        };
        Some(SupportPair { g1_vars: on(&self.c1), g2_vars: on(&self.c2) })
    }

    /// Convenience: best balanced sizes, then one partition of that shape.
    pub fn pick_balanced_partition(&mut self) -> Option<SupportPair> {
        let (k1, k2) = self.best_balanced()?;
        self.pick_partition(k1, k2)
    }

    /// Timing-driven selection (§3.5.3: "partition that best improves
    /// timing … is selected"): among up to `sample` partitions of the best
    /// balanced shape, picks the one minimizing the estimated output
    /// arrival under `arrival` times per (caller) variable — each half is
    /// charged its latest input plus a `log2`-balanced-tree depth, and
    /// late-arriving inputs are pushed toward the smaller half.
    ///
    /// Variables absent from `arrival` count as time 0.
    pub fn pick_timing_partition(
        &mut self,
        arrival: &std::collections::HashMap<VarId, f64>,
        sample: usize,
    ) -> Option<SupportPair> {
        let (k1, k2) = self.best_balanced()?;
        let candidates = self.all_partitions(k1, k2, sample.max(1));
        let side_delay = |vars: &[VarId]| -> f64 {
            let latest = vars
                .iter()
                .map(|v| arrival.get(v).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            let depth = if vars.is_empty() { 0.0 } else { (vars.len() as f64).log2().ceil() };
            latest + depth
        };
        candidates.into_iter().min_by(|a, b| {
            let da = side_delay(&a.g1_vars).max(side_delay(&a.g2_vars));
            let db = side_delay(&b.g1_vars).max(side_delay(&b.g2_vars));
            da.total_cmp(&db)
        })
    }

    /// All partitions with the given sizes (use only when the count is
    /// known small).
    pub fn all_partitions(&mut self, k1: usize, k2: usize, limit: usize) -> Vec<SupportPair> {
        let w1 = combin::weight_exactly(&mut self.mgr, &self.c1, k1);
        let w2 = combin::weight_exactly(&mut self.mgr, &self.c2, k2);
        let t = self.mgr.and(self.bi, w1);
        let mut constrained = self.mgr.and(t, w2);
        let mut out = Vec::new();
        while out.len() < limit {
            let Some(cube) = self.mgr.one_sat(constrained) else { break };
            let on = |vars: &[VarId]| -> Vec<VarId> {
                vars.iter()
                    .enumerate()
                    .filter(|&(_, &c)| cube.iter().any(|&(v, phase)| v == c && phase))
                    .map(|(i, _)| self.ext_vars[i])
                    .collect()
            };
            out.push(SupportPair { g1_vars: on(&self.c1), g2_vars: on(&self.c2) });
            let minterm = self.mgr.minterm(&cube);
            constrained = self.mgr.diff(constrained, minterm);
        }
        out
    }

    // --- Budgeted twins -------------------------------------------------
    //
    // Same query pipeline as the methods above with the heavy conjunction
    // / quantification steps routed through the governor. The `combin`
    // weight builders are polynomial-size and stay unmetered, but a
    // checkpoint after each keeps deadline and cancellation live between
    // probes.

    /// Budgeted [`ChoiceSet::feasible_pairs`].
    pub fn try_feasible_pairs(
        &mut self,
        purge_dominated: bool,
        gov: &ResourceGovernor,
    ) -> Result<Vec<(usize, usize)>, ResourceExhausted> {
        let n = self.num_vars();
        if !self.is_feasible() {
            return Ok(Vec::new());
        }
        if n == 0 {
            return Ok(vec![(0, 0)]);
        }
        let width = combin::bits_for(n);
        let e1 = self.fresh_vars(width);
        let e2 = self.fresh_vars(width);
        let k1 = combin::weight_relation(&mut self.mgr, &self.c1, &e1);
        gov.checkpoint(self.mgr.stats().nodes)?;
        let k2 = combin::weight_relation(&mut self.mgr, &self.c2, &e2);
        gov.checkpoint(self.mgr.stats().nodes)?;
        let mut cs: Vec<VarId> = self.c1.clone();
        cs.extend(self.c2.iter().copied());
        let cube = self.mgr.cube(&cs);
        let t = self.mgr.try_and(self.bi, k1, gov)?;
        let t2 = self.mgr.try_and(t, k2, gov)?;
        let mut bik = self.mgr.try_exists_cube(t2, cube, gov)?;

        if purge_dominated {
            bik = self.try_purge_dominated(bik, &e1, &e2, gov)?;
        }

        let mut out = Vec::new();
        for s1 in 0..=n {
            let enc1 = combin::encode_int(&mut self.mgr, &e1, s1);
            let with1 = self.mgr.try_and(bik, enc1, gov)?;
            if with1.is_false() {
                continue;
            }
            for s2 in 0..=n {
                let enc2 = combin::encode_int(&mut self.mgr, &e2, s2);
                let both = self.mgr.try_and(with1, enc2, gov)?;
                if !both.is_false() {
                    out.push((s1, s2));
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Budgeted [`ChoiceSet::purge_dominated`].
    fn try_purge_dominated(
        &mut self,
        bik: NodeId,
        e1: &[VarId],
        e2: &[VarId],
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        let width = e1.len();
        let p1 = self.fresh_vars(width);
        let p2 = self.fresh_vars(width);
        let rename: Vec<(VarId, VarId)> = e1
            .iter()
            .copied()
            .zip(p1.iter().copied())
            .chain(e2.iter().copied().zip(p2.iter().copied()))
            .collect();
        let bik_primed = self.mgr.try_rename(bik, &rename, gov)?;
        let ge1 = combin::gte(&mut self.mgr, e1, &p1);
        let ge2 = combin::gte(&mut self.mgr, e2, &p2);
        let eq1 = combin::equ(&mut self.mgr, e1, &p1);
        let eq2 = combin::equ(&mut self.mgr, e2, &p2);
        gov.checkpoint(self.mgr.stats().nodes)?;
        let both_eq = self.mgr.try_and(eq1, eq2, gov)?;
        let strict = self.mgr.try_not(both_eq, gov)?;
        let ge = self.mgr.try_and(ge1, ge2, gov)?;
        let dom = self.mgr.try_and(ge, strict, gov)?;
        let witness = self.mgr.try_and(bik_primed, dom, gov)?;
        let mut primed: Vec<VarId> = p1;
        primed.extend(p2);
        let primed_cube = self.mgr.cube(&primed);
        let dominated = self.mgr.try_exists_cube(witness, primed_cube, gov)?;
        self.mgr.try_diff(bik, dominated, gov)
    }

    /// Budgeted [`ChoiceSet::best_balanced`].
    pub fn try_best_balanced(
        &mut self,
        gov: &ResourceGovernor,
    ) -> Result<Option<(usize, usize)>, ResourceExhausted> {
        let n = self.num_vars();
        Ok(self
            .try_feasible_pairs(true, gov)?
            .into_iter()
            .filter(|&(a, b)| a.max(b) < n)
            .min_by_key(|&(a, b)| (a.max(b), a + b, a.abs_diff(b))))
    }

    /// Budgeted [`ChoiceSet::pick_partition`].
    pub fn try_pick_partition(
        &mut self,
        k1: usize,
        k2: usize,
        gov: &ResourceGovernor,
    ) -> Result<Option<SupportPair>, ResourceExhausted> {
        let w1 = combin::weight_exactly(&mut self.mgr, &self.c1, k1);
        let w2 = combin::weight_exactly(&mut self.mgr, &self.c2, k2);
        gov.checkpoint(self.mgr.stats().nodes)?;
        let t = self.mgr.try_and(self.bi, w1, gov)?;
        let constrained = self.mgr.try_and(t, w2, gov)?;
        let Some(cube) = self.mgr.one_sat(constrained) else { return Ok(None) };
        let on = |vars: &[VarId]| -> Vec<VarId> {
            vars.iter()
                .enumerate()
                .filter(|&(_, &c)| cube.iter().any(|&(v, phase)| v == c && phase))
                .map(|(i, _)| self.ext_vars[i])
                .collect()
        };
        Ok(Some(SupportPair { g1_vars: on(&self.c1), g2_vars: on(&self.c2) }))
    }

    /// Budgeted [`ChoiceSet::pick_balanced_partition`].
    pub fn try_pick_balanced_partition(
        &mut self,
        gov: &ResourceGovernor,
    ) -> Result<Option<SupportPair>, ResourceExhausted> {
        let Some((k1, k2)) = self.try_best_balanced(gov)? else { return Ok(None) };
        self.try_pick_partition(k1, k2, gov)
    }

    fn fresh_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n)
            .map(|_| {
                let v = VarId(self.mgr.num_vars() as u32);
                self.mgr.new_var();
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{or_dec, Interval};

    /// f = ab + cd: the textbook OR-decomposable function.
    fn ab_plus_cd() -> (Manager, Interval, Vec<VarId>) {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        (m, Interval::exact(f), (0..4u32).map(VarId).collect())
    }

    #[test]
    fn feasible_pairs_and_balance() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        assert!(ch.is_feasible());
        assert!(ch.has_nontrivial());
        let best = ch.best_balanced().expect("ab+cd splits (2,2)");
        assert_eq!(best, (2, 2));
        let pairs = ch.feasible_pairs(true);
        assert!(pairs.contains(&(2, 2)));
        // Dominance: (2,3) cannot survive next to (2,2).
        assert!(!pairs.contains(&(2, 3)));
        assert!(!pairs.contains(&(3, 2)));
    }

    #[test]
    fn purge_keeps_incomparable_pairs() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        let purged = ch.feasible_pairs(true);
        let raw = ch.feasible_pairs(false);
        assert!(purged.len() <= raw.len());
        for p in &purged {
            assert!(raw.contains(p));
            // Nothing in the purged set dominates anything else in it.
            for q in &purged {
                if p != q {
                    assert!(
                        !(p.0 >= q.0 && p.1 >= q.1),
                        "{p:?} is dominated by {q:?} but survived"
                    );
                }
            }
        }
    }

    #[test]
    fn count_choices_ab_cd() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        // At (2,2) the splits are {ab|cd} and {cd|ab}: exactly 2 choices.
        let count = ch.count_choices(2, 2);
        assert!((count - 2.0).abs() < 1e-6, "got {count}");
    }

    #[test]
    fn pick_partition_returns_disjoint_split() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        let p = ch.pick_balanced_partition().expect("feasible");
        assert_eq!(p.sizes(), (2, 2));
        assert!(p.shared().is_empty());
        let mut union: Vec<VarId> = p.g1_vars.clone();
        union.extend(p.g2_vars.iter().copied());
        union.sort_unstable();
        assert_eq!(union, vars);
        // The split must be {a,b} vs {c,d} in one of the two orders.
        let g1_is_ab = p.g1_vars == vec![VarId(0), VarId(1)];
        let g1_is_cd = p.g1_vars == vec![VarId(2), VarId(3)];
        assert!(g1_is_ab || g1_is_cd);
    }

    #[test]
    fn all_partitions_enumerates_both_orders() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        let all = ch.all_partitions(2, 2, 10);
        assert_eq!(all.len(), 2);
        assert_ne!(all[0], all[1]);
    }

    #[test]
    fn timing_partition_isolates_late_input() {
        // f = abc + de... use ab+cd where c is very late: the partition
        // putting the late input in the half with the other late-free
        // inputs is chosen so the critical path stays short. Here both
        // (2,2) splits are {ab|cd} and {cd|ab}; timing cannot change the
        // sets, so instead check a 5-var case with distinct options:
        // f = ab + cd + ae has several balanced partitions.
        let mut m = Manager::new();
        let vs = m.new_vars(5);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let ae = m.and(vs[0], vs[4]);
        let t = m.or(ab, cd);
        let f = m.or(t, ae);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..5u32).map(VarId).collect();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        // Make variable 3 (d) very late: the chosen partition must place
        // d in the side with the smaller estimated tree depth — and in
        // any case the result must be a feasible balanced partition.
        let arrival: std::collections::HashMap<VarId, f64> =
            [(VarId(3), 10.0)].into_iter().collect();
        let p = ch.pick_timing_partition(&arrival, 16).expect("decomposable");
        let best = ch.best_balanced().expect("feasible");
        assert_eq!((p.g1_vars.len(), p.g2_vars.len()), best);
        // d's side drives the critical path: the estimate of that side
        // must be 10 + log2(side size); the chooser must have preferred
        // a minimal side for d among the sampled options.
        let d_side = if p.g1_vars.contains(&VarId(3)) { &p.g1_vars } else { &p.g2_vars };
        assert!(d_side.contains(&VarId(3)));
        for q in ch.all_partitions(best.0, best.1, 16) {
            let q_side =
                if q.g1_vars.contains(&VarId(3)) { &q.g1_vars } else { &q.g2_vars };
            assert!(
                d_side.len() <= q_side.len(),
                "chosen side {d_side:?} not minimal vs {q_side:?}"
            );
        }
    }

    #[test]
    fn infeasible_sizes_yield_none() {
        let (mut m, iv, vars) = ab_plus_cd();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        assert!(ch.pick_partition(1, 1).is_none());
        assert!((ch.count_choices(1, 1) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn xor_function_is_not_or_decomposable_nontrivially() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..3u32).map(VarId).collect();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        assert!(ch.is_feasible(), "trivial full-support split always exists");
        assert!(ch.best_balanced().is_none(), "parity has no non-trivial OR split");
    }
}
