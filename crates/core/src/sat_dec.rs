//! SAT-based bi-decomposability checks — the approach of Lee, Jiang &
//! Hung (DAC 2008, the paper's reference \[14\]), reimplemented as a
//! baseline: decomposability is phrased as the *unsatisfiability* of a
//! small multi-copy formula over the function.
//!
//! For `f = g1 + g2` with `g1` vacuous in `A` and `g2` vacuous in `B`,
//! the decomposition fails exactly when some onset minterm `x` has an
//! offset twin `y` reachable by changing only `A`-variables *and* an
//! offset twin `z` reachable by changing only `B`-variables — then
//! neither `g1` (which cannot tell `x` from `y`) nor `g2` (ditto `z`)
//! may cover `x`. So:
//!
//! ```text
//! OR-decomposable(A, B)  ⟺  UNSAT[ f(x) ∧ ¬f(y) ∧ ¬f(z)
//!                                   ∧ x =_{∖A} y ∧ x =_{∖B} z ]
//! ```
//!
//! XOR similarly refutes Proposition 3.1 with four copies. The function
//! is handed over as a BDD and encoded into CNF by Tseitin translation
//! over its nodes (each BDD node is one `ITE` constraint), so the
//! baseline shares the exact same function representation as the
//! symbolic engine — the comparison isolates the *method*.
//!
//! Fixed-partition checks mirror [`crate::or_dec::decomposable`];
//! [`grow_or_partition`] additionally implements \[14\]'s unsat-core-guided
//! partition growing for OR.

use crate::Interval;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use symbi_bdd::{FaultSite, Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};
use symbi_sat::{BudgetedSolveResult, Lit, SatCheckPoint, Solver, SolverStats};

/// A pair of vacuity sets `(A, B)`: `g1` is vacuous in `A`, `g2` in `B`.
pub type Partition = (Vec<VarId>, Vec<VarId>);

/// Tseitin-encodes the BDD `f` over the literal assignment `inputs`
/// (function variable → SAT literal) and returns a literal equivalent to
/// `f`'s value. Fresh auxiliary variables are created per BDD node.
///
/// The traversal is an explicit worklist, not recursion: the BDD of a
/// wide carry chain is one node *per level*, so its depth equals its
/// size, and a per-node recursion overflowed the stack around 10⁴–10⁵
/// nodes — exactly the functions the SAT backend exists to rescue.
fn encode_bdd(
    solver: &mut Solver,
    m: &Manager,
    f: NodeId,
    inputs: &HashMap<VarId, Lit>,
    memo: &mut HashMap<NodeId, Lit>,
    constants: &mut Option<(Lit, Lit)>,
) -> Lit {
    let mut stack = vec![f];
    while let Some(&node) = stack.last() {
        if memo.contains_key(&node) {
            stack.pop();
            continue;
        }
        if node.is_terminal() {
            let (t, ff) = *constants.get_or_insert_with(|| {
                let t = Lit::pos(solver.new_var());
                solver.add_clause([t]);
                let ff = Lit::pos(solver.new_var());
                solver.add_clause([!ff]);
                (t, ff)
            });
            memo.insert(node, if node.is_true() { t } else { ff });
            stack.pop();
            continue;
        }
        let (lo, hi) = m.branches(node);
        let (lo_lit, hi_lit) = match (memo.get(&lo), memo.get(&hi)) {
            (Some(&l), Some(&h)) => (l, h),
            (lo_done, hi_done) => {
                // Children first; revisit this node once they resolve.
                if hi_done.is_none() {
                    stack.push(hi);
                }
                if lo_done.is_none() {
                    stack.push(lo);
                }
                continue;
            }
        };
        let v = m.top_var(node).expect("non-terminal");
        let sel = *inputs
            .get(&v)
            .unwrap_or_else(|| panic!("no SAT literal for function variable {v}"));
        let n = Lit::pos(solver.new_var());
        // n ↔ ITE(sel, hi, lo)
        solver.add_clause([!sel, !hi_lit, n]);
        solver.add_clause([!sel, hi_lit, !n]);
        solver.add_clause([sel, !lo_lit, n]);
        solver.add_clause([sel, lo_lit, !n]);
        memo.insert(node, n);
        stack.pop();
    }
    memo[&f]
}

/// One copy of the function's input space: fresh SAT variables per
/// function variable, shared with another copy outside the given set.
fn input_copy(
    solver: &mut Solver,
    vars: &[VarId],
    base: Option<(&HashMap<VarId, Lit>, &[VarId])>,
) -> HashMap<VarId, Lit> {
    let mut out = HashMap::new();
    for &v in vars {
        let lit = match base {
            Some((base_map, free)) if !free.contains(&v) => base_map[&v],
            _ => Lit::pos(solver.new_var()),
        };
        out.insert(v, lit);
    }
    out
}

/// Builds the interrupt hook wiring a solver to a [`ResourceGovernor`]:
/// the CDCL search loop crosses the governor's `sat.propagate` fault
/// site (and polls for cancellation/deadline) before every propagation
/// round, and `sat.reduce_db` before every learnt-database reduction.
/// Returns the hook (to be installed through the RAII scope of
/// [`Solver::with_interrupt`], so it can never leak into a later
/// unbudgeted solve) and the shared cell recording *why* it
/// interrupted, for mapping an `Unknown` verdict back to a
/// [`ResourceExhausted`] cause.
pub(crate) fn governor_hook(
    gov: &ResourceGovernor,
) -> (impl FnMut(SatCheckPoint) -> bool + Send + 'static, Arc<Mutex<Option<ResourceExhausted>>>) {
    let cause: Arc<Mutex<Option<ResourceExhausted>>> = Arc::new(Mutex::new(None));
    let hook_gov = gov.clone();
    let hook_cause = Arc::clone(&cause);
    let hook = move |point| {
        let verdict = match point {
            SatCheckPoint::Propagate => hook_gov
                .fault_site(FaultSite::SatPropagate)
                .and_then(|()| hook_gov.poll_interrupt()),
            SatCheckPoint::ReduceDb => hook_gov.fault_site(FaultSite::SatReduceDb),
        };
        match verdict {
            Ok(()) => false,
            Err(e) => {
                *hook_cause.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                true
            }
        }
    };
    (hook, cause)
}

/// Maps an `Unknown` budgeted verdict to its cause: whatever the
/// interrupt hook recorded, else the conflict budget ran out (`Steps`).
pub(crate) fn unknown_cause(cause: &Mutex<Option<ResourceExhausted>>) -> ResourceExhausted {
    cause
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .unwrap_or(ResourceExhausted::Steps)
}

/// SAT-based OR decomposability check for a completely specified
/// function: `g1` vacuous in `a_vacuous`, `g2` vacuous in `b_vacuous`.
/// Agrees exactly with [`crate::or_dec::decomposable`] on exact
/// intervals.
pub fn or_decomposable(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    or_decomposable_with_stats(m, f, vars, a_vacuous, b_vacuous).0
}

/// [`or_decomposable`] plus the solver statistics of the check, for
/// callers that track SAT effort (benchmarks, synthesis reports).
pub fn or_decomposable_with_stats(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (bool, SolverStats) {
    let mut solver = Solver::new();
    encode_or_formula(&mut solver, m, f, vars, a_vacuous, b_vacuous);
    let dec = !solver.solve().is_sat();
    (dec, solver.stats)
}

/// Encodes the three-copy OR-decomposability refutation formula into
/// `solver`: SAT iff the partition fails.
fn encode_or_formula(
    solver: &mut Solver,
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) {
    let mut constants = None;
    let x = input_copy(solver, vars, None);
    let y = input_copy(solver, vars, Some((&x, a_vacuous)));
    let z = input_copy(solver, vars, Some((&x, b_vacuous)));
    let fx = encode_bdd(solver, m, f, &x, &mut HashMap::new(), &mut constants);
    let fy = encode_bdd(solver, m, f, &y, &mut HashMap::new(), &mut constants);
    let fz = encode_bdd(solver, m, f, &z, &mut HashMap::new(), &mut constants);
    solver.add_clause([fx]);
    solver.add_clause([!fy]);
    solver.add_clause([!fz]);
}

/// Governed, conflict-budgeted twin of [`or_decomposable`]: the solve
/// runs under `max_conflicts` with one warm halved-budget retry on an
/// `Unknown` verdict (counted in [`SolverStats::retries`]), and the
/// search is interruptible through `gov` — injected faults, deadlines,
/// and cancellation abort with the precise [`ResourceExhausted`] cause.
/// A one-shot transient fault is absorbed by the retry, since the
/// site's crossing counter has already advanced past the rule.
pub fn try_or_decomposable(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, SolverStats), ResourceExhausted> {
    // The multi-copy encoding is itself linear in BDD size — worth its
    // own injection site (and an interrupt check) before the solve.
    gov.fault_site(FaultSite::SatEncode)?;
    gov.poll_interrupt()?;
    let mut solver = Solver::new();
    let (hook, cause) = governor_hook(gov);
    let mut solver = solver.with_interrupt(hook);
    encode_or_formula(&mut solver, m, f, vars, a_vacuous, b_vacuous);
    match solver.solve_budgeted_with_retry(max_conflicts) {
        BudgetedSolveResult::Sat => Ok((false, solver.stats)),
        BudgetedSolveResult::Unsat { .. } => Ok((true, solver.stats)),
        BudgetedSolveResult::Unknown => Err(unknown_cause(&cause)),
    }
}

/// SAT-based AND decomposability: the OR question on the complement.
pub fn and_decomposable(
    m: &mut Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    and_decomposable_with_stats(m, f, vars, a_vacuous, b_vacuous).0
}

/// [`and_decomposable`] plus the solver statistics of the check.
pub fn and_decomposable_with_stats(
    m: &mut Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (bool, SolverStats) {
    let nf = m.not(f);
    or_decomposable_with_stats(m, nf, vars, a_vacuous, b_vacuous)
}

/// Governed, conflict-budgeted twin of [`and_decomposable`].
pub fn try_and_decomposable(
    m: &mut Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, SolverStats), ResourceExhausted> {
    let nf = m.not(f);
    try_or_decomposable(m, nf, vars, a_vacuous, b_vacuous, max_conflicts, gov)
}

/// SAT-based XOR decomposability check for a completely specified
/// function (Proposition 3.1 refuted by a 4-copy formula): SAT iff some
/// `A`-flip changes `f` for one `B`-part but not another.
pub fn xor_decomposable(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    xor_decomposable_with_stats(m, f, vars, a_vacuous, b_vacuous).0
}

/// [`xor_decomposable`] plus the solver statistics of the check.
pub fn xor_decomposable_with_stats(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (bool, SolverStats) {
    let mut solver = Solver::new();
    encode_xor_formula(&mut solver, m, f, vars, a_vacuous, b_vacuous);
    let dec = !solver.solve().is_sat();
    (dec, solver.stats)
}

/// Encodes the four-copy XOR-decomposability refutation formula into
/// `solver`: SAT iff the partition fails.
fn encode_xor_formula(
    solver: &mut Solver,
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) {
    let mut constants = None;
    // p = (a, b, c); q = (a', b, c); r = (a, b', c); s = (a', b', c).
    let p = input_copy(solver, vars, None);
    let q = input_copy(solver, vars, Some((&p, a_vacuous)));
    let r = input_copy(solver, vars, Some((&p, b_vacuous)));
    // s shares a' with q on A, b' with r on B, c with p elsewhere.
    let mut s_map = HashMap::new();
    for &v in vars {
        let lit = if a_vacuous.contains(&v) {
            q[&v]
        } else if b_vacuous.contains(&v) {
            r[&v]
        } else {
            p[&v]
        };
        s_map.insert(v, lit);
    }
    let fp = encode_bdd(solver, m, f, &p, &mut HashMap::new(), &mut constants);
    let fq = encode_bdd(solver, m, f, &q, &mut HashMap::new(), &mut constants);
    let fr = encode_bdd(solver, m, f, &r, &mut HashMap::new(), &mut constants);
    let fs = encode_bdd(solver, m, f, &s_map, &mut HashMap::new(), &mut constants);
    // f(p) ≠ f(q):
    let d1 = Lit::pos(solver.new_var());
    xor_constraint(solver, fp, fq, d1);
    solver.add_clause([d1]);
    // f(r) = f(s):
    let d2 = Lit::pos(solver.new_var());
    xor_constraint(solver, fr, fs, d2);
    solver.add_clause([!d2]);
}

/// Governed, conflict-budgeted twin of [`xor_decomposable`].
pub fn try_xor_decomposable(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, SolverStats), ResourceExhausted> {
    gov.fault_site(FaultSite::SatEncode)?;
    gov.poll_interrupt()?;
    let mut solver = Solver::new();
    let (hook, cause) = governor_hook(gov);
    let mut solver = solver.with_interrupt(hook);
    encode_xor_formula(&mut solver, m, f, vars, a_vacuous, b_vacuous);
    match solver.solve_budgeted_with_retry(max_conflicts) {
        BudgetedSolveResult::Sat => Ok((false, solver.stats)),
        BudgetedSolveResult::Unsat { .. } => Ok((true, solver.stats)),
        BudgetedSolveResult::Unknown => Err(unknown_cause(&cause)),
    }
}

/// Unsat-core-guided OR-partition growing — the signature move of \[14\]:
/// one refutation proves decomposability *and* its core reveals which
/// variable-equality constraints mattered, so every variable whose
/// constraint is absent from the core joins a vacuity set at once
/// (instead of one greedy re-check per variable).
///
/// Starting from the seed pair (`seed_a` exclusive to `g2`'s side,
/// `seed_b` to `g1`'s), returns grown vacuity sets `(A, B)` with the
/// decomposition `f = g1(x∖A) + g2(x∖B)` verified by a final solve, or
/// `None` when even the seed pair is infeasible.
pub fn grow_or_partition(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    seed_a: VarId,
    seed_b: VarId,
) -> Option<Partition> {
    grow_or_partition_with_stats(m, f, vars, seed_a, seed_b).0
}

/// [`grow_or_partition`] plus the accumulated solver statistics of the
/// whole growth loop (all incremental solves on the shared solver).
pub fn grow_or_partition_with_stats(
    m: &Manager,
    f: NodeId,
    vars: &[VarId],
    seed_a: VarId,
    seed_b: VarId,
) -> (Option<Partition>, SolverStats) {
    let mut solver = Solver::new();
    let mut constants = None;
    // Three fully independent copies; equalities are *conditional* on
    // assumption literals so the partition can move between solves.
    let x = input_copy(&mut solver, vars, None);
    let y = input_copy(&mut solver, vars, Some((&x, vars)));
    let z = input_copy(&mut solver, vars, Some((&x, vars)));
    let mut eq_y: HashMap<VarId, Lit> = HashMap::new();
    let mut eq_z: HashMap<VarId, Lit> = HashMap::new();
    for &v in vars {
        let ey = Lit::pos(solver.new_var());
        solver.add_clause([!ey, !x[&v], y[&v]]);
        solver.add_clause([!ey, x[&v], !y[&v]]);
        eq_y.insert(v, ey);
        let ez = Lit::pos(solver.new_var());
        solver.add_clause([!ez, !x[&v], z[&v]]);
        solver.add_clause([!ez, x[&v], !z[&v]]);
        eq_z.insert(v, ez);
    }
    let fx = encode_bdd(&mut solver, m, f, &x, &mut HashMap::new(), &mut constants);
    let fy = encode_bdd(&mut solver, m, f, &y, &mut HashMap::new(), &mut constants);
    let fz = encode_bdd(&mut solver, m, f, &z, &mut HashMap::new(), &mut constants);
    solver.add_clause([fx]);
    solver.add_clause([!fy]);
    solver.add_clause([!fz]);

    let mut a: Vec<VarId> = vec![seed_a];
    let mut b: Vec<VarId> = vec![seed_b];
    let mut verified: Option<(Vec<VarId>, Vec<VarId>)> = None;
    loop {
        // Enforce equality outside the current vacuity sets.
        let assumptions: Vec<Lit> = vars
            .iter()
            .flat_map(|&v| {
                let mut out = Vec::new();
                if !a.contains(&v) {
                    out.push(eq_y[&v]);
                }
                if !b.contains(&v) {
                    out.push(eq_z[&v]);
                }
                out
            })
            .collect();
        match solver.solve_with_assumptions(&assumptions) {
            symbi_sat::SolveResult::Sat => {
                // Over-relaxed (or the seed itself fails): fall back to
                // the last verified partition.
                return (verified, solver.stats);
            }
            symbi_sat::SolveResult::Unsat { core } => {
                let grown_a: Vec<VarId> = vars
                    .iter()
                    .copied()
                    .filter(|&v| a.contains(&v) || !core.contains(&eq_y[&v]))
                    .collect();
                let grown_b: Vec<VarId> = vars
                    .iter()
                    .copied()
                    .filter(|&v| b.contains(&v) || !core.contains(&eq_z[&v]))
                    .collect();
                let settled = grown_a.len() == a.len() && grown_b.len() == b.len();
                verified = Some((a.clone(), b.clone()));
                if settled {
                    return (verified, solver.stats);
                }
                a = grown_a;
                b = grown_b;
            }
        }
    }
}

/// Adds clauses for `out ↔ (a ⊕ b)`.
fn xor_constraint(solver: &mut Solver, a: Lit, b: Lit, out: Lit) {
    solver.add_clause([!a, !b, !out]);
    solver.add_clause([a, b, !out]);
    solver.add_clause([!a, b, out]);
    solver.add_clause([a, !b, out]);
}

/// Convenience: dispatches a SAT check for an exact interval and any
/// primitive kind, mirroring the BDD-based check APIs.
pub fn decomposable(
    m: &mut Manager,
    kind: crate::DecKind,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> bool {
    decomposable_with_stats(m, kind, interval, vars, a_vacuous, b_vacuous).0
}

/// [`decomposable`] plus the solver statistics of the dispatched check.
pub fn decomposable_with_stats(
    m: &mut Manager,
    kind: crate::DecKind,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
) -> (bool, SolverStats) {
    assert!(
        interval.is_exact(),
        "the SAT baseline handles completely specified functions"
    );
    match kind {
        crate::DecKind::Or => {
            or_decomposable_with_stats(m, interval.lower, vars, a_vacuous, b_vacuous)
        }
        crate::DecKind::And => {
            and_decomposable_with_stats(m, interval.lower, vars, a_vacuous, b_vacuous)
        }
        crate::DecKind::Xor => {
            xor_decomposable_with_stats(m, interval.lower, vars, a_vacuous, b_vacuous)
        }
    }
}

/// Governed, conflict-budgeted twin of [`decomposable`]: dispatches the
/// matching `try_*` check under `max_conflicts` and `gov`.
///
/// # Panics
///
/// Panics if the interval is not exact.
#[allow(clippy::too_many_arguments)] // mirrors `decomposable` plus the budget pair
pub fn try_decomposable(
    m: &mut Manager,
    kind: crate::DecKind,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, SolverStats), ResourceExhausted> {
    assert!(
        interval.is_exact(),
        "the SAT baseline handles completely specified functions"
    );
    match kind {
        crate::DecKind::Or => {
            try_or_decomposable(m, interval.lower, vars, a_vacuous, b_vacuous, max_conflicts, gov)
        }
        crate::DecKind::And => {
            try_and_decomposable(m, interval.lower, vars, a_vacuous, b_vacuous, max_conflicts, gov)
        }
        crate::DecKind::Xor => {
            try_xor_decomposable(m, interval.lower, vars, a_vacuous, b_vacuous, max_conflicts, gov)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{or_dec, xor_dec};

    fn from_tt(m: &mut Manager, n: usize, tt: u64) -> NodeId {
        let mut f = NodeId::FALSE;
        for row in 0..1u64 << n {
            if tt >> row & 1 == 1 {
                let assignment: Vec<(VarId, bool)> =
                    (0..n).map(|i| (VarId(i as u32), row >> i & 1 == 1)).collect();
                let mt = m.minterm(&assignment);
                f = m.or(f, mt);
            }
        }
        f
    }

    #[test]
    fn or_check_agrees_with_bdd_on_known_cases() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        assert!(or_decomposable(&m, f, &vars, &[VarId(2), VarId(3)], &[VarId(0), VarId(1)]));
        // A = {a}, B = {b}: both halves lose part of the ab product — the
        // onset minterm ab·c̄d̄ has offset twins via either flip.
        assert!(!or_decomposable(&m, f, &vars, &[VarId(0)], &[VarId(1)]));
    }

    #[test]
    fn exhaustive_agreement_with_bdd_checks() {
        // Random 4-var functions, all 81 disjoint-ish vacuity splits.
        let mut seed = 0x5eed_cafe_f00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..12 {
            let tt = next() & 0xffff;
            let mut m = Manager::with_vars(4);
            let f = from_tt(&mut m, 4, tt);
            let iv = Interval::exact(f);
            let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
            for mask_a in 0u32..16 {
                for mask_b in 0u32..16 {
                    if mask_a & mask_b != 0 {
                        continue; // keep vacuity sets disjoint, as in \[14\]
                    }
                    let a: Vec<VarId> =
                        (0..4).filter(|&i| mask_a >> i & 1 == 1).map(VarId).collect();
                    let b: Vec<VarId> =
                        (0..4).filter(|&i| mask_b >> i & 1 == 1).map(VarId).collect();
                    let bdd_or = or_dec::decomposable(&mut m, &iv, &a, &b);
                    let sat_or = or_decomposable(&m, f, &vars, &a, &b);
                    assert_eq!(bdd_or, sat_or, "OR tt={tt:04x} A={a:?} B={b:?}");
                    let bdd_xor = xor_dec::decomposable(&mut m, &iv, &vars, &a, &b);
                    let sat_xor = xor_decomposable(&m, f, &vars, &a, &b);
                    assert_eq!(bdd_xor, sat_xor, "XOR tt={tt:04x} A={a:?} B={b:?}");
                }
            }
        }
    }

    #[test]
    fn core_guided_growth_finds_the_full_split() {
        // f = ab + cd seeded with (c, a): A should grow to {c, d} and B
        // to {a, b} — the perfect disjoint split — in very few solves.
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let (a, b) =
            grow_or_partition(&m, f, &vars, VarId(2), VarId(0)).expect("seed is feasible");
        // Whatever exactly was grown, it must be a feasible partition…
        let iv = Interval::exact(f);
        assert!(crate::or_dec::decomposable(&mut m, &iv, &a, &b), "A={a:?} B={b:?}");
        // …that strictly extends the seeds.
        assert!(a.len() + b.len() >= 3, "core growth made no progress: A={a:?} B={b:?}");
        assert!(a.contains(&VarId(2)));
        assert!(b.contains(&VarId(0)));
    }

    #[test]
    fn core_guided_growth_rejects_bad_seeds() {
        // Parity admits no OR split at all.
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        assert!(grow_or_partition(
            &m,
            f,
            &(0..3u32).map(VarId).collect::<Vec<_>>(),
            VarId(0),
            VarId(1)
        )
        .is_none());
    }

    #[test]
    fn core_guided_growth_always_feasible_on_random_functions() {
        let mut seed = 0x00dd_f00d_1234u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..16 {
            let tt = next() & 0xffff_ffff;
            let mut m = Manager::with_vars(5);
            let f = from_tt(&mut m, 5, tt);
            if f.is_terminal() {
                continue;
            }
            let vars: Vec<VarId> = (0..5u32).map(VarId).collect();
            let sa = VarId((next() % 5) as u32);
            let sb = VarId(((sa.index() + 1 + (next() % 4) as usize) % 5) as u32);
            if let Some((a, b)) = grow_or_partition(&m, f, &vars, sa, sb) {
                let iv = Interval::exact(f);
                assert!(
                    crate::or_dec::decomposable(&mut m, &iv, &a, &b),
                    "tt={tt:08x} A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn with_stats_variants_agree_and_report_work() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let a = [VarId(2), VarId(3)];
        let b = [VarId(0), VarId(1)];
        let (dec, stats) = or_decomposable_with_stats(&m, f, &vars, &a, &b);
        assert_eq!(dec, or_decomposable(&m, f, &vars, &a, &b));
        assert!(dec);
        // A refutation of a multi-copy formula does real propagation.
        assert!(stats.propagations > 0, "stats are empty: {stats:?}");
        let (grown, grow_stats) =
            grow_or_partition_with_stats(&m, f, &vars, VarId(2), VarId(0));
        assert!(grown.is_some());
        assert!(grow_stats.propagations > 0);
        assert!(grow_stats.conflicts >= stats.conflicts.min(1));
        let iv = Interval::exact(f);
        let (dec2, xstats) = decomposable_with_stats(
            &mut m,
            crate::DecKind::Xor,
            &iv,
            &vars,
            &a,
            &b,
        );
        assert_eq!(dec2, xor_decomposable(&m, f, &vars, &a, &b));
        assert!(xstats.propagations > 0);
    }

    #[test]
    fn governed_check_agrees_with_ungoverned() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let a = [VarId(2), VarId(3)];
        let b = [VarId(0), VarId(1)];
        let gov = ResourceGovernor::unlimited();
        let (dec, _) =
            try_or_decomposable(&m, f, &vars, &a, &b, u64::MAX, &gov).expect("no limits");
        assert_eq!(dec, or_decomposable(&m, f, &vars, &a, &b));
        let iv = Interval::exact(f);
        let (xdec, _) = try_decomposable(
            &mut m,
            crate::DecKind::Xor,
            &iv,
            &vars,
            &a,
            &b,
            u64::MAX,
            &gov,
        )
        .expect("no limits");
        assert_eq!(xdec, xor_decomposable(&m, f, &vars, &a, &b));
    }

    #[test]
    fn transient_fault_absorbed_by_budgeted_retry() {
        use symbi_bdd::{FaultKind, FaultPlan, FaultSite};
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        // One-shot budget fault at the first search-loop crossing: the
        // first solve goes Unknown, the warm retry runs past the spent
        // rule and completes with the correct verdict.
        let plan = Arc::new(
            FaultPlan::new(3).with_rule(FaultSite::SatPropagate, 1, FaultKind::Budget),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let (dec, stats) = try_or_decomposable(
            &m,
            f,
            &vars,
            &[VarId(2), VarId(3)],
            &[VarId(0), VarId(1)],
            u64::MAX,
            &gov,
        )
        .expect("retry absorbs the one-shot fault");
        assert!(dec);
        assert_eq!(stats.retries, 1, "the absorbed fault must be counted");
        assert_eq!(plan.faults_fired(), 1);
    }

    #[test]
    fn persistent_cancellation_defeats_the_retry() {
        use symbi_bdd::{FaultKind, FaultPlan, FaultSite};
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        // A cancel fault raises the shared flag, so the retry's very
        // first poll re-trips: the cause must survive to the caller.
        let plan = Arc::new(
            FaultPlan::new(3).with_rule(FaultSite::SatPropagate, 1, FaultKind::Cancel),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        let err = try_or_decomposable(
            &m,
            f,
            &vars,
            &[VarId(2), VarId(3)],
            &[VarId(0), VarId(1)],
            u64::MAX,
            &gov,
        )
        .expect_err("cancellation is persistent");
        assert_eq!(err, ResourceExhausted::Cancelled);
    }

    #[test]
    fn deep_chain_bdd_encodes_without_stack_overflow() {
        // Regression: `encode_bdd` recursed once per BDD node. A chain
        // BDD — one node per level, like a wide AND or a carry chain —
        // has depth equal to its size, and ~50k frames blew the 2 MiB
        // test-thread stack long before any solver work started.
        const N: usize = 50_000;
        let mut m = Manager::with_vars(N);
        let vs: Vec<NodeId> = (0..N as u32).map(|i| m.var(VarId(i))).collect();
        let mut f = NodeId::TRUE;
        for &v in vs.iter().rev() {
            f = m.and(v, f);
        }
        let mut solver = Solver::new();
        let inputs: HashMap<VarId, Lit> = (0..N as u32)
            .map(|i| (VarId(i), Lit::pos(solver.new_var())))
            .collect();
        let mut memo = HashMap::new();
        let root = encode_bdd(&mut solver, &m, f, &inputs, &mut memo, &mut None);
        assert_eq!(memo.len(), N + 2, "one encoding per chain node plus both terminals");
        // The encoding is semantically right: asserting the root forces
        // every input true.
        solver.add_clause([root]);
        assert!(solver.solve().is_sat());
        assert_eq!(solver.value(inputs[&VarId(0)].var()), Some(true));
        assert_eq!(solver.value(inputs[&VarId(N as u32 - 1)].var()), Some(true));
    }

    #[test]
    fn injected_fault_at_sat_encode_aborts_before_the_solve() {
        use symbi_bdd::{FaultKind, FaultPlan, FaultSite};
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let plan =
            Arc::new(FaultPlan::new(9).with_rule(FaultSite::SatEncode, 1, FaultKind::Budget));
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let err = try_or_decomposable(
            &m,
            f,
            &vars,
            &[VarId(2), VarId(3)],
            &[VarId(0), VarId(1)],
            u64::MAX,
            &gov,
        )
        .expect_err("encode-site fault kills the check");
        assert_eq!(err, ResourceExhausted::Steps);
        assert_eq!(plan.faults_fired(), 1);
        // The site is crossed once per governed check: a second check on
        // the same plan runs past the spent rule and completes.
        let (dec, _) = try_or_decomposable(
            &m,
            f,
            &vars,
            &[VarId(2), VarId(3)],
            &[VarId(0), VarId(1)],
            u64::MAX,
            &gov,
        )
        .expect("rule already spent");
        assert!(dec);
    }

    #[test]
    fn and_duality() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let l = m.or(vs[0], vs[1]);
        let r = m.or(vs[2], vs[3]);
        let f = m.and(l, r);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        assert!(and_decomposable(
            &mut m,
            f,
            &vars,
            &[VarId(2), VarId(3)],
            &[VarId(0), VarId(1)]
        ));
        assert!(!or_decomposable(&m, f, &vars, &[VarId(2), VarId(3)], &[VarId(0), VarId(1)]));
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let mut m = Manager::new();
        let vs = m.new_vars(3);
        let t = m.xor(vs[0], vs[1]);
        let f = m.xor(t, vs[2]);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..3u32).map(VarId).collect();
        assert!(decomposable(
            &mut m,
            crate::DecKind::Xor,
            &iv,
            &vars,
            &[VarId(2)],
            &[VarId(0), VarId(1)]
        ));
        assert!(!decomposable(
            &mut m,
            crate::DecKind::Or,
            &iv,
            &vars,
            &[VarId(2)],
            &[VarId(0), VarId(1)]
        ));
    }

    #[test]
    #[should_panic(expected = "completely specified")]
    fn rejects_proper_intervals() {
        let mut m = Manager::new();
        let v = m.new_var();
        let iv = Interval::new(NodeId::FALSE, v);
        decomposable(&mut m, crate::DecKind::Or, &iv, &[VarId(0)], &[], &[]);
    }
}
