//! Parameterized abstraction (§3.2.2, §3.4).
//!
//! An auxiliary decision variable `c_x` encodes whether variable `x` is
//! quantified out of a formula: the chain
//!
//! ```text
//! U ← u; for each x: U ← ITE(c_x, U, ∀x U)
//! ```
//!
//! yields `U(c, x)` whose cofactor at a `c`-assignment is `u` with exactly
//! the `c_x = 0` variables universally abstracted. The same construction
//! with `∃` parameterizes lower bounds. The characteristic function of all
//! *consistent* abstraction subsets of an interval (Example 3.5) is
//! `∀x [L(c,x) → U(c,x)]`.

use crate::Interval;
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Builds `U(c, x)`: for each `(x, c_x)` pair, `c_x = 1` keeps `x`,
/// `c_x = 0` universally abstracts it.
///
/// Pairs may come in any order; the decision variables must be distinct
/// from the function variables.
pub fn parameterize_forall(m: &mut Manager, f: NodeId, pairs: &[(VarId, VarId)]) -> NodeId {
    let mut acc = f;
    for &(x, c) in pairs {
        let abstracted = m.forall_var(acc, x);
        let cnode = m.var(c);
        acc = m.ite(cnode, acc, abstracted);
    }
    acc
}

/// Builds `L(c, x)`: like [`parameterize_forall`] with existential
/// quantification, for lower bounds.
pub fn parameterize_exists(m: &mut Manager, f: NodeId, pairs: &[(VarId, VarId)]) -> NodeId {
    let mut acc = f;
    for &(x, c) in pairs {
        let abstracted = m.exists_var(acc, x);
        let cnode = m.var(c);
        acc = m.ite(cnode, acc, abstracted);
    }
    acc
}

/// Budgeted [`parameterize_forall`]: identical chain, every `∀` and `ITE`
/// consults the governor.
pub fn try_parameterize_forall(
    m: &mut Manager,
    f: NodeId,
    pairs: &[(VarId, VarId)],
    gov: &ResourceGovernor,
) -> Result<NodeId, ResourceExhausted> {
    let mut acc = f;
    for &(x, c) in pairs {
        let abstracted = m.try_forall(acc, &[x], gov)?;
        let cnode = m.var(c);
        acc = m.try_ite(cnode, acc, abstracted, gov)?;
    }
    Ok(acc)
}

/// Budgeted [`parameterize_exists`].
pub fn try_parameterize_exists(
    m: &mut Manager,
    f: NodeId,
    pairs: &[(VarId, VarId)],
    gov: &ResourceGovernor,
) -> Result<NodeId, ResourceExhausted> {
    let mut acc = f;
    for &(x, c) in pairs {
        let abstracted = m.try_exists(acc, &[x], gov)?;
        let cnode = m.var(c);
        acc = m.try_ite(cnode, acc, abstracted, gov)?;
    }
    Ok(acc)
}

/// Characteristic function, over the decision variables, of all variable
/// subsets whose abstraction keeps `interval` consistent (Example 3.5):
/// `B(c) = ∀x [L(c,x) → U(c,x)]`. Assignment `c_x = 0` means "abstract
/// `x`"; `B` evaluates true iff the resulting interval is non-empty.
pub fn abstraction_choices(
    m: &mut Manager,
    interval: &Interval,
    pairs: &[(VarId, VarId)],
) -> NodeId {
    let lower = parameterize_exists(m, interval.lower, pairs);
    let upper = parameterize_forall(m, interval.upper, pairs);
    let implies = m.implies(lower, upper);
    let xvars: Vec<VarId> = pairs.iter().map(|&(x, _)| x).collect();
    m.forall(implies, &xvars)
}

/// Decodes a satisfying assignment of [`abstraction_choices`] into the set
/// of abstracted variables (those whose decision variable is 0 or
/// unconstrained-toward-0 in the cube).
pub fn abstracted_set(cube: &[(VarId, bool)], pairs: &[(VarId, VarId)]) -> Vec<VarId> {
    pairs
        .iter()
        .filter(|&&(_, c)| !cube.iter().any(|&(v, phase)| v == c && phase))
        .map(|&(x, _)| x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Layout used by the paper's Examples 3.3–3.5: decision variables
    /// first (so they sit above the function variables), then x, y.
    struct Setup {
        m: Manager,
        cx: VarId,
        cy: VarId,
        interval: Interval,
    }

    fn paper_setup() -> Setup {
        let mut m = Manager::new();
        let _cx = m.new_var(); // v0
        let _cy = m.new_var(); // v1
        let x = m.new_var(); // v2
        let y = m.new_var(); // v3
        let nx = m.not(x);
        let lower = m.and(nx, y);
        let upper = m.or(x, y);
        Setup { m, cx: VarId(0), cy: VarId(1), interval: Interval::new(lower, upper) }
    }

    #[test]
    fn example_3_3_parameterized_bounds() {
        let mut s = paper_setup();
        let pairs = [(VarId(2), s.cx), (VarId(3), s.cy)];
        let lxy = parameterize_exists(&mut s.m, s.interval.lower, &pairs);
        // Cofactors of L_{xy} by (cx, cy) reproduce the tree of Example 3.3:
        // (1,1) → x̄y, (0,1) → ∃x(x̄y) = y, (1,0) → ∃y(x̄y) = x̄,
        // (0,0) → ∃xy(x̄y) = 1.
        let x = s.m.var(VarId(2));
        let y = s.m.var(VarId(3));
        let nx = s.m.not(x);
        let nxy = s.m.and(nx, y);
        let cases = [
            ([true, true], nxy),
            ([false, true], y),
            ([true, false], nx),
            ([false, false], NodeId::TRUE),
        ];
        for ([vcx, vcy], expect) in cases {
            let t = s.m.cofactor(lxy, s.cx, vcx);
            let t = s.m.cofactor(t, s.cy, vcy);
            assert_eq!(t, expect, "cofactor at cx={vcx}, cy={vcy}");
        }
    }

    #[test]
    fn example_3_5_consistent_abstractions() {
        // B(c) = c̄x·cy + cx·cy = cy: abstracting y always breaks the
        // interval, abstracting x (or nothing) is fine.
        let mut s = paper_setup();
        let pairs = [(VarId(2), s.cx), (VarId(3), s.cy)];
        let b = abstraction_choices(&mut s.m, &s.interval, &pairs);
        let cy = s.m.var(s.cy);
        assert_eq!(b, cy, "B(c) must equal c_y exactly, as computed in the paper");
    }

    #[test]
    fn decode_abstracted_set() {
        let s = paper_setup();
        let pairs = [(VarId(2), s.cx), (VarId(3), s.cy)];
        // Cube {cx=0, cy=1} abstracts x only.
        let cube = vec![(s.cx, false), (s.cy, true)];
        assert_eq!(abstracted_set(&cube, &pairs), vec![VarId(2)]);
        // Cube {cy=1} with cx unconstrained reads cx as "abstract".
        let cube2 = vec![(s.cy, true)];
        assert_eq!(abstracted_set(&cube2, &pairs), vec![VarId(2)]);
    }

    #[test]
    fn parameterization_agrees_with_direct_quantification() {
        // Random-ish 3-variable function; all 8 c-assignments must match
        // explicitly quantified results.
        let mut m = Manager::new();
        let cvars: Vec<VarId> = (0..3).map(VarId).collect();
        m.new_vars(3);
        let xvars: Vec<VarId> = (3..6).map(VarId).collect();
        let xs = m.new_vars(3);
        let t0 = m.and(xs[0], xs[1]);
        let t1 = m.xor(xs[1], xs[2]);
        let f = m.or(t0, t1);
        let pairs: Vec<(VarId, VarId)> = xvars.iter().copied().zip(cvars.iter().copied()).collect();
        let pf = parameterize_forall(&mut m, f, &pairs);
        for bits in 0u32..8 {
            let mut direct = f;
            let mut restricted = pf;
            for (i, &(x, c)) in pairs.iter().enumerate() {
                let keep = bits >> i & 1 == 1;
                if !keep {
                    direct = m.forall_var(direct, x);
                }
                restricted = m.cofactor(restricted, c, keep);
            }
            assert_eq!(restricted, direct, "assignment {bits:03b}");
        }
    }
}
