//! Portfolio-raced decomposability: the budgeted BDD check and the CNF
//! check run simultaneously on two threads, first sound verdict wins.
//!
//! The paper's interval feasibility checks (eq. 3.2 / Prop. 3.1) blow up
//! on exactly the cones where BDDs blow up, while the Lee–Jiang–Hung SAT
//! formulation ([`crate::sat_dec`]) often dispatches those same cones in
//! milliseconds — and vice versa. Instead of picking a backend per cone,
//! this module races both under forked sub-budgets of one shared
//! [`ResourceGovernor`] and cancels the loser.
//!
//! # Race protocol
//!
//! 1. The caller's governor crosses the `portfolio.race` fault site, then
//!    the remaining step budget is split in half and *prepaid* to each
//!    arm through [`ResourceGovernor::fork_race`]. Prepayment makes the
//!    parent-side cost a pure function of the requested limits: however
//!    the two arms interleave, the caller's budget moves by exactly the
//!    same amount, so downstream decisions (and therefore the
//!    synthesized netlist) cannot depend on thread timing. A race
//!    therefore consumes its governor's entire remaining step budget —
//!    pass a dedicated fork, not the flow-level governor.
//! 2. Both arms run via [`symbi_bdd::par::parallel_map`] on two threads.
//!    Each arm owns a *private* [`Manager`] seeded through
//!    [`Manager::transfer_from`], so neither mutates the caller's
//!    manager and the threads share nothing but atomics.
//! 3. The first arm to finish with `Ok` publishes itself as the winner
//!    and cancels its sibling through the sibling's [`CancelHandle`]
//!    (race-fork cancel flags are private to each arm, so the shot
//!    cannot leak upstream). An arm that fails does *not* cancel its
//!    sibling — the sibling may still succeed.
//!
//! # Verdict determinism
//!
//! Both backends are sound **and complete** for fixed partitions of
//! completely specified functions, so whenever both return, they return
//! the same Boolean. The race outcome is therefore schedule-independent:
//! an `Ok` verdict exists iff at least one arm succeeds within its own
//! (deterministic) budget, and its value never depends on which arm won.
//! Only [`PortfolioStats`] (who won, whether the loser was cancelled,
//! wall time) is timing-dependent — it feeds reports, never verdicts.
//!
//! Incompletely specified intervals fall back to the BDD arm alone: the
//! SAT baseline only handles exact intervals, and a one-horse race needs
//! no threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use symbi_bdd::hash::FxHashMap;
use symbi_bdd::par;
use symbi_bdd::{
    CancelHandle, FaultSite, Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId,
};

use crate::{and_dec, or_dec, sat_dec, xor_dec, DecKind, Interval};

/// Counters for portfolio-raced checks, aggregated per synthesis run.
///
/// Everything here is observability: the fields may legitimately differ
/// between two runs that synthesize byte-identical netlists (which arm
/// wins is a thread-timing fact). Comparisons in determinism oracles
/// must ignore this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Two-arm races actually run (exact intervals).
    pub races: u64,
    /// Races decided by the BDD arm.
    pub bdd_wins: u64,
    /// Races decided by the SAT arm.
    pub sat_wins: u64,
    /// Losing arms that were observed to die of cancellation (rather
    /// than finishing on their own before the cancel landed).
    pub cancels: u64,
    /// Checks on incompletely specified intervals, which run the BDD
    /// arm alone (the SAT baseline needs an exact interval).
    pub bdd_only: u64,
    /// Wall-clock nanoseconds spent inside portfolio checks.
    pub wall_nanos: u64,
}

impl PortfolioStats {
    /// Folds another stats block into this one (for per-candidate →
    /// per-run aggregation across workers).
    pub fn absorb(&mut self, other: &PortfolioStats) {
        self.races += other.races;
        self.bdd_wins += other.bdd_wins;
        self.sat_wins += other.sat_wins;
        self.cancels += other.cancels;
        self.bdd_only += other.bdd_only;
        self.wall_nanos += other.wall_nanos;
    }
}

/// Which engine a race arm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Bdd,
    Sat,
}

/// Everything one race arm owns: its private manager (seeded with the
/// function under test), its prepaid governor, and the handle that
/// cancels its sibling.
struct ArmInput {
    backend: Backend,
    m: Manager,
    f: NodeId,
    gov: ResourceGovernor,
    sibling: CancelHandle,
}

/// Portfolio-raced OR-decomposability for a fixed partition.
pub fn try_or_decomposable(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, PortfolioStats), ResourceExhausted> {
    try_decomposable(m, DecKind::Or, interval, vars, a_vacuous, b_vacuous, max_conflicts, gov)
}

/// Portfolio-raced AND-decomposability for a fixed partition.
pub fn try_and_decomposable(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, PortfolioStats), ResourceExhausted> {
    try_decomposable(m, DecKind::And, interval, vars, a_vacuous, b_vacuous, max_conflicts, gov)
}

/// Portfolio-raced XOR-decomposability for a fixed partition.
pub fn try_xor_decomposable(
    m: &mut Manager,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, PortfolioStats), ResourceExhausted> {
    try_decomposable(m, DecKind::Xor, interval, vars, a_vacuous, b_vacuous, max_conflicts, gov)
}

/// Races the BDD and SAT fixed-partition checks for `kind` under forked
/// sub-budgets of `gov`; the first sound verdict wins, the loser is
/// cancelled. See the [module documentation](self) for the protocol and
/// the determinism argument.
///
/// `vars` must cover the support of the interval (it defines the
/// variable universe copied into the arms' private managers).
#[allow(clippy::too_many_arguments)] // mirrors `sat_dec::try_decomposable`
pub fn try_decomposable(
    m: &mut Manager,
    kind: DecKind,
    interval: &Interval,
    vars: &[VarId],
    a_vacuous: &[VarId],
    b_vacuous: &[VarId],
    max_conflicts: u64,
    gov: &ResourceGovernor,
) -> Result<(bool, PortfolioStats), ResourceExhausted> {
    gov.fault_site(FaultSite::PortfolioRace)?;
    gov.poll_interrupt()?;
    let started = Instant::now();
    let mut stats = PortfolioStats::default();

    if !interval.is_exact() {
        // One-horse race: the SAT baseline needs an exact interval.
        let verdict = match kind {
            DecKind::Or => or_dec::try_decomposable(m, interval, a_vacuous, b_vacuous, gov)?,
            DecKind::And => and_dec::try_decomposable(m, interval, a_vacuous, b_vacuous, gov)?,
            DecKind::Xor => {
                xor_dec::try_decomposable(m, interval, vars, a_vacuous, b_vacuous, gov)?
            }
        };
        stats.bdd_only = 1;
        stats.wall_nanos = started.elapsed().as_nanos() as u64;
        return Ok((verdict, stats));
    }

    debug_assert!(
        m.support(interval.lower).iter().all(|v| vars.contains(v)),
        "`vars` must cover the interval's support"
    );

    // Split what is left of the budget between the two arms. The prepay
    // in `fork_race` charges the ancestors immediately, so bail out now
    // if there is nothing left to stake.
    let remaining = gov.remaining_steps();
    let each = if remaining == u64::MAX { u64::MAX } else { remaining / 2 };
    if each == 0 && remaining != u64::MAX {
        return Err(ResourceExhausted::Steps);
    }
    let bdd_gov = gov.fork_race(each);
    let sat_gov = gov.fork_race(each);
    let bdd_cancel = bdd_gov.cancel_handle();
    let sat_cancel = sat_gov.cancel_handle();

    // AND reduces to OR on the complement (complementing inside the
    // private managers keeps the caller's manager untouched).
    let local_kind = if kind == DecKind::And { DecKind::Or } else { kind };
    let n = vars.len();
    let var_map: FxHashMap<VarId, VarId> =
        vars.iter().enumerate().map(|(i, &v)| (v, VarId(i as u32))).collect();
    let lvars: Vec<VarId> = (0..n as u32).map(VarId).collect();
    let la: Vec<VarId> = a_vacuous.iter().map(|v| var_map[v]).collect();
    let lb: Vec<VarId> = b_vacuous.iter().map(|v| var_map[v]).collect();
    let seed_arm = |backend, gov, sibling| {
        let mut pm = Manager::with_vars(n);
        let mut f = pm.transfer_from(m, interval.lower, &var_map);
        if kind == DecKind::And {
            f = pm.not(f);
        }
        ArmInput { backend, m: pm, f, gov, sibling }
    };
    let arms = vec![
        seed_arm(Backend::Bdd, bdd_gov, sat_cancel),
        seed_arm(Backend::Sat, sat_gov, bdd_cancel),
    ];

    // 0 = undecided, 1 = BDD arm, 2 = SAT arm. Purely observational:
    // when both arms finish `Ok` their verdicts are equal, so the CAS
    // outcome picks a name for the report, never a different answer.
    let winner = AtomicUsize::new(0);
    let mut results = par::parallel_map(2, arms, |i, mut arm| {
        let verdict = match (arm.backend, local_kind) {
            (Backend::Bdd, DecKind::Or) => {
                or_dec::try_decomposable(&mut arm.m, &Interval::exact(arm.f), &la, &lb, &arm.gov)
            }
            (Backend::Bdd, DecKind::Xor) => xor_dec::try_decomposable(
                &mut arm.m,
                &Interval::exact(arm.f),
                &lvars,
                &la,
                &lb,
                &arm.gov,
            ),
            (Backend::Sat, DecKind::Or) => {
                sat_dec::try_or_decomposable(&arm.m, arm.f, &lvars, &la, &lb, max_conflicts, &arm.gov)
                    .map(|(dec, _)| dec)
            }
            (Backend::Sat, DecKind::Xor) => {
                sat_dec::try_xor_decomposable(&arm.m, arm.f, &lvars, &la, &lb, max_conflicts, &arm.gov)
                    .map(|(dec, _)| dec)
            }
            (_, DecKind::And) => unreachable!("AND was lowered to OR on the complement"),
        };
        if verdict.is_ok()
            && winner.compare_exchange(0, i + 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            arm.sibling.cancel();
        }
        verdict
    });
    let sat_res = results.pop().expect("two arms");
    let bdd_res = results.pop().expect("two arms");

    stats.races = 1;
    let out = match (bdd_res, sat_res) {
        (Ok(b), Ok(s)) => {
            debug_assert_eq!(b, s, "backends disagree on a fixed-partition {kind} verdict");
            match winner.load(Ordering::Acquire) {
                2 => stats.sat_wins += 1,
                _ => stats.bdd_wins += 1,
            }
            Ok(b)
        }
        (Ok(b), Err(e)) => {
            stats.bdd_wins += 1;
            if e == ResourceExhausted::Cancelled {
                stats.cancels += 1;
            }
            Ok(b)
        }
        (Err(e), Ok(s)) => {
            stats.sat_wins += 1;
            if e == ResourceExhausted::Cancelled {
                stats.cancels += 1;
            }
            Ok(s)
        }
        // Prefer the cause that names a real resource over a bare
        // cancellation (which here can only be an upstream abort).
        (Err(b), Err(s)) => Err(if b != ResourceExhausted::Cancelled { b } else { s }),
    };
    stats.wall_nanos = started.elapsed().as_nanos() as u64;
    out.map(|verdict| (verdict, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use symbi_bdd::{FaultKind, FaultPlan};

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn from_tt(m: &mut Manager, n: usize, tt: u64) -> NodeId {
        let mut f = NodeId::FALSE;
        for row in 0..1u64 << n {
            if tt >> row & 1 == 1 {
                let assignment: Vec<(VarId, bool)> =
                    (0..n).map(|i| (VarId(i as u32), row >> i & 1 == 1)).collect();
                let mt = m.minterm(&assignment);
                f = m.or(f, mt);
            }
        }
        f
    }

    #[test]
    fn race_agrees_with_both_backends_on_known_cases() {
        let mut m = Manager::with_vars(4);
        let vs: Vec<NodeId> = (0..4u32).map(|i| m.var(VarId(i))).collect();
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let spec = Interval::exact(f);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let good_a = [VarId(2), VarId(3)];
        let good_b = [VarId(0), VarId(1)];
        let gov = ResourceGovernor::unlimited();

        let (dec, stats) =
            try_or_decomposable(&mut m, &spec, &vars, &good_a, &good_b, 1 << 20, &gov).unwrap();
        assert!(dec, "ab + cd OR-splits along its blocks");
        assert_eq!(stats.races, 1);
        assert_eq!(stats.bdd_wins + stats.sat_wins, 1, "exactly one arm is credited");

        let (dec, _) = try_or_decomposable(
            &mut m,
            &spec,
            &vars,
            &[VarId(0)],
            &[VarId(1)],
            1 << 20,
            &gov,
        )
        .unwrap();
        assert!(!dec, "breaking the ab product is infeasible");

        // AND via complement duality: (a+b)(c+d) AND-splits.
        let a_or_b = m.or(vs[0], vs[1]);
        let c_or_d = m.or(vs[2], vs[3]);
        let g = m.and(a_or_b, c_or_d);
        let (dec, stats) = try_and_decomposable(
            &mut m,
            &Interval::exact(g),
            &vars,
            &good_a,
            &good_b,
            1 << 20,
            &gov,
        )
        .unwrap();
        assert!(dec, "(a+b)(c+d) AND-splits along its blocks");
        assert_eq!(stats.races, 1);
    }

    /// The differential heart of the portfolio's soundness: on random
    /// small functions and partitions, the raced verdict must equal both
    /// the direct BDD verdict and the direct SAT verdict for every kind.
    #[test]
    fn race_verdict_matches_direct_bdd_and_sat_checks() {
        let mut seed = 0x00ff_7f01_0c0f_fee1_u64;
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let gov = ResourceGovernor::unlimited();
        for round in 0..10 {
            let tt = xorshift(&mut seed) & 0xffff;
            let mut m = Manager::with_vars(4);
            let f = from_tt(&mut m, 4, tt);
            let spec = Interval::exact(f);
            // A random disjoint-ish vacuity split: each variable is
            // quantified away from g1, from g2, or from neither.
            let mut a = Vec::new();
            let mut b = Vec::new();
            for &v in &vars {
                match xorshift(&mut seed) % 3 {
                    0 => a.push(v),
                    1 => b.push(v),
                    _ => {}
                }
            }
            for kind in [DecKind::Or, DecKind::And, DecKind::Xor] {
                let (raced, _) =
                    try_decomposable(&mut m, kind, &spec, &vars, &a, &b, 1 << 20, &gov)
                        .unwrap_or_else(|e| panic!("unlimited race tripped: {e}"));
                let direct_bdd = match kind {
                    DecKind::Or => or_dec::try_decomposable(&mut m, &spec, &a, &b, &gov),
                    DecKind::And => and_dec::try_decomposable(&mut m, &spec, &a, &b, &gov),
                    DecKind::Xor => {
                        xor_dec::try_decomposable(&mut m, &spec, &vars, &a, &b, &gov)
                    }
                }
                .unwrap();
                let direct_sat = sat_dec::decomposable(&mut m, kind, &spec, &vars, &a, &b);
                assert_eq!(raced, direct_bdd, "round {round} {kind} vs BDD (A={a:?} B={b:?})");
                assert_eq!(raced, direct_sat, "round {round} {kind} vs SAT (A={a:?} B={b:?})");
            }
        }
    }

    #[test]
    fn race_verdict_is_stable_across_repeated_runs() {
        // The same race re-run many times (different thread interleavings)
        // must keep returning the same verdict.
        let mut m = Manager::with_vars(6);
        let vars: Vec<VarId> = (0..6u32).map(VarId).collect();
        let vs: Vec<NodeId> = vars.iter().map(|&v| m.var(v)).collect();
        let left = vs[..3].iter().fold(NodeId::TRUE, |acc, &v| m.and(acc, v));
        let right = vs[3..].iter().fold(NodeId::TRUE, |acc, &v| m.and(acc, v));
        let f = m.or(left, right);
        let spec = Interval::exact(f);
        let gov = ResourceGovernor::unlimited();
        let a: Vec<VarId> = vars[3..].to_vec();
        let b: Vec<VarId> = vars[..3].to_vec();
        let mut verdicts = Vec::new();
        for _ in 0..16 {
            let (dec, _) =
                try_or_decomposable(&mut m, &spec, &vars, &a, &b, 1 << 20, &gov).unwrap();
            verdicts.push(dec);
        }
        assert!(verdicts.iter().all(|&v| v), "block-disjoint OR split is always feasible");
    }

    #[test]
    fn non_exact_interval_runs_the_bdd_arm_alone() {
        let mut m = Manager::with_vars(3);
        let (a, b, c) = (m.var(VarId(0)), m.var(VarId(1)), m.var(VarId(2)));
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let f = m.or(t, bc);
        let nb = m.not(b);
        let anb = m.and(a, nb);
        let dc = m.and(anb, c);
        let spec = Interval::with_dontcare(&mut m, f, dc);
        assert!(!spec.is_exact());
        let vars = [VarId(0), VarId(1), VarId(2)];
        let gov = ResourceGovernor::unlimited();
        let (dec, stats) =
            try_or_decomposable(&mut m, &spec, &vars, &[VarId(2)], &[VarId(0)], 1 << 20, &gov)
                .unwrap();
        let direct =
            or_dec::try_decomposable(&mut m, &spec, &[VarId(2)], &[VarId(0)], &gov).unwrap();
        assert_eq!(dec, direct, "single-arm path returns the plain BDD verdict");
        assert_eq!(stats.races, 0);
        assert_eq!(stats.bdd_only, 1);
        assert_eq!(stats.bdd_wins + stats.sat_wins + stats.cancels, 0);
    }

    #[test]
    fn injected_fault_at_portfolio_race_kills_the_race() {
        let plan = Arc::new(
            FaultPlan::new(7).with_rule(FaultSite::PortfolioRace, 1, FaultKind::Budget),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(plan);
        let mut m = Manager::with_vars(2);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.or(x, y);
        let spec = Interval::exact(f);
        let vars = [VarId(0), VarId(1)];
        let r = try_or_decomposable(&mut m, &spec, &vars, &[VarId(1)], &[VarId(0)], 1024, &gov);
        assert_eq!(r, Err(ResourceExhausted::Steps), "the fault fires before any arm starts");
        // The second crossing is past the rule: the race proceeds.
        let (dec, _) =
            try_or_decomposable(&mut m, &spec, &vars, &[VarId(1)], &[VarId(0)], 1024, &gov)
                .unwrap();
        assert!(dec, "x + y OR-splits trivially");
    }

    #[test]
    fn race_leaves_caller_manager_and_governor_reusable() {
        // Whatever happened to the cancelled loser, the caller's manager
        // and governor must be fully usable afterwards: the arms only
        // ever touch private state.
        let mut m = Manager::with_vars(4);
        let vars: Vec<VarId> = (0..4u32).map(VarId).collect();
        let vs: Vec<NodeId> = vars.iter().map(|&v| m.var(v)).collect();
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let f = m.or(ab, cd);
        let spec = Interval::exact(f);
        let gov = ResourceGovernor::unlimited();
        for _ in 0..4 {
            let (dec, _) = try_or_decomposable(
                &mut m,
                &spec,
                &vars,
                &[VarId(2), VarId(3)],
                &[VarId(0), VarId(1)],
                1 << 20,
                &gov,
            )
            .unwrap();
            assert!(dec);
            // Caller-side work after the race still runs under `gov`.
            let direct = or_dec::try_decomposable(
                &mut m,
                &spec,
                &[VarId(2), VarId(3)],
                &[VarId(0), VarId(1)],
                &gov,
            )
            .unwrap();
            assert!(direct);
        }
        assert!(!gov.is_cancelled(), "loser cancellation never leaks upstream");
    }

    #[test]
    fn exhausted_governor_fails_fast_without_spawning_arms() {
        let gov = ResourceGovernor::unlimited().with_step_limit(1);
        // Drain the single step.
        assert!(gov.checkpoint(0).is_ok());
        assert_eq!(gov.remaining_steps(), 0);
        let mut m = Manager::with_vars(2);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.or(x, y);
        let spec = Interval::exact(f);
        let r = try_or_decomposable(
            &mut m,
            &spec,
            &[VarId(0), VarId(1)],
            &[VarId(1)],
            &[VarId(0)],
            1024,
            &gov,
        );
        assert_eq!(r, Err(ResourceExhausted::Steps));
    }
}
