//! Symbolic bi-decomposition of incompletely specified Boolean functions —
//! the core contribution of Kravets & Mishchenko, *"Sequential Logic
//! Synthesis Using Symbolic Bi-decomposition"* (DATE 2009).
//!
//! An incompletely specified function is an [`Interval`] `[l, u]` of
//! completely specified functions (§3.2.1). A *bi-decomposition* picks a
//! two-input primitive `h` and writes a member of the interval as
//! `h(g1(x1), g2(x2))` for (possibly overlapping) variable subsets.
//!
//! The modules mirror the paper's sections:
//!
//! - [`Interval`] and [`param`]: intervals, the "less-than-or-equal"
//!   relation, and parameterized abstraction with `ITE(c, F, ∀x F)` chains
//!   (§3.2),
//! - [`or_dec`] / [`and_dec`] / [`xor_dec`]: existence conditions and
//!   witness construction for the three primitives (§3.3), plus the
//!   *symbolic* computation of the characteristic function `Bi(c1, c2)` of
//!   **all** feasible variable partitions at once (§3.4),
//! - [`choices`]: decomposition-choice exploration — weight-constrained
//!   subsetting, feasible support-size pairs, dominance purging, balanced
//!   selection (§3.5.2),
//! - [`greedy`]: the explicit greedy partition-growing baseline the paper
//!   compares against (the approach of Mishchenko–Steinbach–Perkowski,
//!   DAC'01),
//! - [`sat_dec`]: the SAT-based decomposability checks of Lee–Jiang–Hung
//!   (DAC'08), the other baseline the paper discusses, backed by the
//!   `symbi-sat` CDCL solver,
//! - [`recursive`]: recursive decomposition of an interval into a tree of
//!   2-input primitives with Shannon fallback, used by the synthesis flow.
//!
//! # Example: Figure 3.1 of the paper
//!
//! `f = ab + ac + bc` with the state `a=b=c=1` unreachable OR-decomposes
//! into two 2-variable functions:
//!
//! ```
//! use symbi_bdd::{Manager, VarId};
//! use symbi_core::{or_dec, Interval};
//!
//! let mut m = Manager::new();
//! let (a, b, c) = (m.new_var(), m.new_var(), m.new_var());
//! let ab = m.and(a, b);
//! let ac = m.and(a, c);
//! let bc = m.and(b, c);
//! let t = m.or(ab, ac);
//! let f = m.or(t, bc);
//! let nb = m.not(b);
//! let anb = m.and(a, nb);
//! let dc = m.and(anb, c); // the unreachable state a·b̄·c of Fig. 3.1
//! let spec = Interval::with_dontcare(&mut m, f, dc);
//! let vars = [VarId(0), VarId(1), VarId(2)];
//! let mut choices = or_dec::Choices::compute(&mut m, &spec, &vars);
//! let (k1, k2) = choices.best_balanced().expect("decomposable");
//! assert_eq!(k1.max(k2), 2, "both halves shrink to 2 of 3 variables");
//! ```

pub mod and_dec;
pub mod choices;
pub mod greedy;
mod interval;
pub mod or_dec;
pub mod param;
pub mod portfolio;
pub mod recursive;
pub mod sat_dec;
pub mod xor_dec;

pub use interval::Interval;

/// The two-input primitive used at the root of a bi-decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecKind {
    /// `f = g1 + g2`
    Or,
    /// `f = g1 · g2`
    And,
    /// `f = g1 ⊕ g2`
    Xor,
}

impl std::fmt::Display for DecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecKind::Or => f.write_str("OR"),
            DecKind::And => f.write_str("AND"),
            DecKind::Xor => f.write_str("XOR"),
        }
    }
}

#[cfg(test)]
mod tests_paper_examples;
