//! Golden tests reproducing the paper's in-text profile tables at the
//! sizes that are cheap enough for the unit-test suite:
//!
//! - §3.4.1: OR decomposition of multiplexers — best partition sizes and
//!   number of choices,
//! - §3.4.2: XOR decomposition of ripple-carry-adder sum bits — best
//!   partition sizes.

use crate::{or_dec, xor_dec, Interval};
use symbi_bdd::{Manager, NodeId, VarId};

/// Builds a `2^k`-way multiplexer: controls first (vars `0..k`), then data
/// (vars `k..k+2^k`).
fn mux(m: &mut Manager, k: usize) -> (NodeId, Vec<VarId>) {
    let width = 1 << k;
    let controls = m.new_vars(k);
    let data = m.new_vars(width);
    let mut f = NodeId::FALSE;
    for (i, &d) in data.iter().enumerate() {
        let mut sel = NodeId::TRUE;
        for (j, &c) in controls.iter().enumerate() {
            let lit = if i >> j & 1 == 1 { c } else { m.not(c) };
            sel = m.and(sel, lit);
        }
        let term = m.and(sel, d);
        f = m.or(f, term);
    }
    let vars: Vec<VarId> = (0..(k + width) as u32).map(VarId).collect();
    (f, vars)
}

/// Ripple-carry adder over `n`-bit operands plus carry-in; returns the sum
/// bits. Variable order: `cin, a0, b0, a1, b1, …`.
fn adder_sum_bits(m: &mut Manager, n: usize) -> (Vec<NodeId>, Vec<VarId>) {
    let cin = m.new_var();
    let mut carry = cin;
    let mut sums = Vec::with_capacity(n);
    for _ in 0..n {
        let a = m.new_var();
        let b = m.new_var();
        let axb = m.xor(a, b);
        let sum = m.xor(axb, carry);
        let ab = m.and(a, b);
        let ac = m.and(axb, carry);
        carry = m.or(ab, ac);
        sums.push(sum);
    }
    let vars: Vec<VarId> = (0..(1 + 2 * n) as u32).map(VarId).collect();
    (sums, vars)
}

#[test]
fn mux_table_row_width_2() {
    // Paper row: Control 2, Data 4 → best partition (4, 4), 6 choices.
    let mut m = Manager::new();
    let (f, vars) = mux(&mut m, 2);
    let iv = Interval::exact(f);
    let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
    assert!(ch.is_feasible());
    let best = ch.best_balanced().expect("multiplexers OR-decompose");
    assert_eq!(best, (4, 4));
    let count = ch.count_choices(4, 4);
    assert!((count - 6.0).abs() < 1e-6, "paper reports 6 choices, got {count}");
}

#[test]
fn mux_table_row_width_3() {
    // Paper row: Control 3, Data 8 → best partition (7, 7), 70 choices.
    let mut m = Manager::new();
    let (f, vars) = mux(&mut m, 3);
    let iv = Interval::exact(f);
    let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
    let best = ch.best_balanced().expect("multiplexers OR-decompose");
    assert_eq!(best, (7, 7));
    let count = ch.count_choices(7, 7);
    assert!((count - 70.0).abs() < 1e-3, "paper reports 70 choices, got {count}");
}

#[test]
fn mux_partition_structure() {
    // The balanced split of the 4-way mux keeps both controls shared and
    // splits the data lines 2/2.
    let mut m = Manager::new();
    let (f, vars) = mux(&mut m, 2);
    let iv = Interval::exact(f);
    let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
    let p = ch.pick_balanced_partition().expect("feasible");
    let controls = [VarId(0), VarId(1)];
    for c in controls {
        assert!(p.g1_vars.contains(&c), "controls must be shared");
        assert!(p.g2_vars.contains(&c), "controls must be shared");
    }
    assert_eq!(p.shared(), controls.to_vec());
    // Verify with explicit witnesses.
    let a_vac: Vec<VarId> = vars.iter().copied().filter(|v| !p.g1_vars.contains(v)).collect();
    let b_vac: Vec<VarId> = vars.iter().copied().filter(|v| !p.g2_vars.contains(v)).collect();
    let (g1, g2) = or_dec::witnesses(&mut m, &iv, &a_vac, &b_vac);
    let composed = m.or(g1, g2);
    assert_eq!(composed, f);
}

#[test]
fn adder_table_row_s2() {
    // Paper row: sum bit s2, 7 inputs → best partition (2, 5).
    let mut m = Manager::new();
    let (sums, _) = adder_sum_bits(&mut m, 3);
    let s2 = sums[2];
    let support = m.support(s2);
    assert_eq!(support.len(), 7);
    let iv = Interval::exact(s2);
    let mut ch = xor_dec::Choices::compute(&mut m, &iv, &support);
    let best = ch.best_balanced().expect("sum bits XOR-decompose");
    assert_eq!(best, (2, 5), "paper reports best partition (2, 5)");
}

#[test]
fn adder_s2_partition_verifies() {
    let mut m = Manager::new();
    let (sums, _) = adder_sum_bits(&mut m, 3);
    let s2 = sums[2];
    let support = m.support(s2);
    let iv = Interval::exact(s2);
    let mut ch = xor_dec::Choices::compute(&mut m, &iv, &support);
    let p = ch.pick_balanced_partition().expect("feasible");
    // g1 must be the top-bit pair {a2, b2} (the only 2-variable half).
    let (k1, k2) = p.sizes();
    let small = if k1 <= k2 { &p.g1_vars } else { &p.g2_vars };
    assert_eq!(small, &vec![VarId(5), VarId(6)], "small side is {{a2, b2}}");
    let a_vac: Vec<VarId> = support.iter().copied().filter(|v| !p.g1_vars.contains(v)).collect();
    let b_vac: Vec<VarId> = support.iter().copied().filter(|v| !p.g2_vars.contains(v)).collect();
    let (g1, g2) =
        xor_dec::witnesses(&mut m, &iv, &support, &a_vac, &b_vac).expect("constructs");
    let composed = m.xor(g1, g2);
    assert_eq!(composed, s2);
}

#[test]
fn greedy_agrees_with_implicit_on_small_adder() {
    // §3.4.2 compares implicit and greedy: on s2 both must find a
    // non-trivial partition, and the implicit one is at least as balanced.
    let mut m = Manager::new();
    let (sums, _) = adder_sum_bits(&mut m, 3);
    let s2 = sums[2];
    let support = m.support(s2);
    let iv = Interval::exact(s2);
    let greedy =
        crate::greedy::grow(&mut m, crate::DecKind::Xor, &iv, &support).expect("decomposable");
    let (gk1, gk2) = greedy.sizes(support.len());
    let mut ch = xor_dec::Choices::compute(&mut m, &iv, &support);
    let (ik1, ik2) = ch.best_balanced().expect("decomposable");
    assert!(ik1.max(ik2) <= gk1.max(gk2));
}
