//! Property-based tests for the decomposition engine: every decomposition
//! the library reports must verify, across random (incompletely
//! specified) functions.

use proptest::prelude::*;
use symbi_bdd::{Manager, NodeId, VarId};
use symbi_core::{and_dec, greedy, or_dec, recursive, xor_dec, DecKind, Interval};

fn from_tt(m: &mut Manager, n: usize, tt: u64) -> NodeId {
    let mut f = NodeId::FALSE;
    for row in 0..1u64 << n {
        if tt >> row & 1 == 1 {
            let assignment: Vec<(VarId, bool)> =
                (0..n).map(|i| (VarId(i as u32), row >> i & 1 == 1)).collect();
            let mt = m.minterm(&assignment);
            f = m.or(f, mt);
        }
    }
    f
}

/// Random interval from a function truth table and a (sparser) DC table.
fn interval_from(m: &mut Manager, n: usize, tt: u64, dc_tt: u64) -> Interval {
    let f = from_tt(m, n, tt);
    let dc = from_tt(m, n, dc_tt & dc_tt >> 1); // thin the DC set a little
    Interval::with_dontcare(m, f, dc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_algebra(tt in any::<u64>(), dc in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let iv = interval_from(&mut m, n, tt, dc);
        prop_assert!(iv.is_consistent(&mut m));
        // f itself is always a member.
        let f = from_tt(&mut m, n, tt);
        prop_assert!(iv.contains(&mut m, f));
        // Complement duality: g ∈ [l,u] ⟺ ¬g ∈ [ū, l̄].
        let comp = iv.complement(&mut m);
        let nf = m.not(f);
        prop_assert!(comp.contains(&mut m, nf));
        // reduce_support keeps consistency and membership of some member.
        let (reduced, removed) = iv.reduce_support(&mut m);
        prop_assert!(reduced.is_consistent(&mut m));
        let member = reduced.pick_member(&mut m);
        prop_assert!(iv.contains(&mut m, member));
        // Removed variables really are gone from the member.
        let supp = m.support(member);
        for v in removed {
            prop_assert!(!supp.contains(&v));
        }
    }

    #[test]
    fn or_witnesses_always_verify(tt in any::<u64>(), dc in any::<u64>(), mask in any::<u8>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let iv = interval_from(&mut m, n, tt, dc);
        // Random disjoint vacuity sets from the mask bits.
        let a_vac: Vec<VarId> =
            (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| VarId(i as u32)).collect();
        let b_vac: Vec<VarId> =
            (0..n).filter(|&i| mask >> i & 1 == 0).map(|i| VarId(i as u32)).collect();
        if or_dec::decomposable(&mut m, &iv, &a_vac, &b_vac) {
            let (g1, g2) = or_dec::witnesses(&mut m, &iv, &a_vac, &b_vac);
            let composed = m.or(g1, g2);
            prop_assert!(iv.contains(&mut m, composed));
            // Vacuity respected.
            for v in &a_vac {
                prop_assert!(!m.support(g1).contains(v));
            }
            for v in &b_vac {
                prop_assert!(!m.support(g2).contains(v));
            }
        }
        // AND duality mirror.
        if and_dec::decomposable(&mut m, &iv, &a_vac, &b_vac) {
            let (g1, g2) = and_dec::witnesses(&mut m, &iv, &a_vac, &b_vac);
            let composed = m.and(g1, g2);
            prop_assert!(iv.contains(&mut m, composed));
        }
    }

    #[test]
    fn symbolic_bi_sound_for_or(tt in any::<u64>(), dc in any::<u64>()) {
        // Every partition reported feasible by the symbolic Bi must pass
        // the explicit check and produce verifying witnesses.
        let n = 5;
        let mut m = Manager::with_vars(n);
        let iv = interval_from(&mut m, n, (tt as u32) as u64, (dc as u32) as u64);
        let vars: Vec<VarId> = (0..n as u32).map(VarId).collect();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        for (k1, k2) in ch.feasible_pairs(false) {
            if let Some(pair) = ch.pick_partition(k1, k2) {
                let a_vac: Vec<VarId> =
                    vars.iter().copied().filter(|v| !pair.g1_vars.contains(v)).collect();
                let b_vac: Vec<VarId> =
                    vars.iter().copied().filter(|v| !pair.g2_vars.contains(v)).collect();
                prop_assert!(or_dec::decomposable(&mut m, &iv, &a_vac, &b_vac));
                let (g1, g2) = or_dec::witnesses(&mut m, &iv, &a_vac, &b_vac);
                let composed = m.or(g1, g2);
                prop_assert!(iv.contains(&mut m, composed));
            }
        }
    }

    #[test]
    fn xor_check_exact_iff_construction_succeeds(tt in any::<u64>(), mask in any::<u8>()) {
        // For completely specified functions the XOR condition is exact:
        // the cofactor construction must succeed whenever it holds.
        let n = 5;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, (tt as u32) as u64);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..n as u32).map(VarId).collect();
        let a_vac: Vec<VarId> =
            (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| VarId(i as u32)).collect();
        let b_vac: Vec<VarId> =
            (0..n).filter(|&i| mask >> i & 1 == 0).map(|i| VarId(i as u32)).collect();
        let check = xor_dec::decomposable(&mut m, &iv, &vars, &a_vac, &b_vac);
        let witness = xor_dec::witnesses(&mut m, &iv, &vars, &a_vac, &b_vac);
        prop_assert_eq!(check, witness.is_some());
        if let Some((g1, g2)) = witness {
            let composed = m.xor(g1, g2);
            prop_assert_eq!(composed, f);
            for v in &a_vac {
                prop_assert!(!m.support(g1).contains(v));
            }
            for v in &b_vac {
                prop_assert!(!m.support(g2).contains(v));
            }
        }
    }

    #[test]
    fn recursive_decomposition_always_verifies(tt in any::<u64>(), dc in any::<u64>()) {
        let n = 6;
        let mut m = Manager::with_vars(n);
        let iv = interval_from(&mut m, n, tt, dc);
        let (tree, _) = recursive::decompose(&mut m, &iv, &recursive::Options::default());
        let g = tree.to_bdd(&mut m);
        prop_assert!(iv.contains(&mut m, g), "tree {} not a member", tree);
        // Tree invariants.
        prop_assert!(tree.depth() <= tree.num_gates() + 1);
        let neg = tree.clone().negate();
        let ng = neg.to_bdd(&mut m);
        let expected = m.not(g);
        prop_assert_eq!(ng, expected);
    }

    #[test]
    fn greedy_results_are_feasible(tt in any::<u64>()) {
        let n = 5;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, (tt as u32) as u64);
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..n as u32).map(VarId).collect();
        for kind in [DecKind::Or, DecKind::And, DecKind::Xor] {
            if let Some(outcome) = greedy::grow(&mut m, kind, &iv, &vars) {
                let feasible = match kind {
                    DecKind::Or => {
                        or_dec::decomposable(&mut m, &iv, &outcome.a_vacuous, &outcome.b_vacuous)
                    }
                    DecKind::And => {
                        and_dec::decomposable(&mut m, &iv, &outcome.a_vacuous, &outcome.b_vacuous)
                    }
                    DecKind::Xor => xor_dec::decomposable(
                        &mut m,
                        &iv,
                        &vars,
                        &outcome.a_vacuous,
                        &outcome.b_vacuous,
                    ),
                };
                prop_assert!(feasible, "{kind} greedy returned infeasible sets");
            }
        }
    }

    #[test]
    fn best_balanced_is_minimal(tt in any::<u32>()) {
        // No feasible pair may have a strictly smaller max than the
        // reported best.
        let n = 5;
        let mut m = Manager::with_vars(n);
        let f = from_tt(&mut m, n, u64::from(tt));
        let iv = Interval::exact(f);
        let vars: Vec<VarId> = (0..n as u32).map(VarId).collect();
        let mut ch = or_dec::Choices::compute(&mut m, &iv, &vars);
        let pairs = ch.feasible_pairs(false);
        if let Some((b1, b2)) = ch.best_balanced() {
            let best_max = b1.max(b2);
            for (k1, k2) in pairs {
                if k1.max(k2) < n {
                    prop_assert!(k1.max(k2) >= best_max);
                }
            }
        }
    }
}
