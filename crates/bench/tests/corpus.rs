//! The corpus harness's own contracts: a fixed seed reproduces the
//! timing-free payload byte-for-byte across job counts and reruns, and
//! the quick sweep over the checked-in corpus meets the acceptance
//! floor with zero red rows.

use std::path::PathBuf;
use symbi_bench::corpus::{corpus_fingerprint, corpus_rows, CorpusOptions};

fn seed_corpus_dir() -> PathBuf {
    // The checked-in seed corpus lives at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_payload_is_identical_across_job_counts_and_reruns() {
    // Generated pool only: the determinism contract is about the
    // engine, and the smaller grid keeps four debug-mode sweeps cheap.
    let options = |jobs| CorpusOptions { quick: true, jobs, seed: 0xD15C, corpus_dir: None };
    let one = corpus_rows(&options(1)).expect("sweep runs");
    let fp = corpus_fingerprint(&one);
    for jobs in [2, 8] {
        let report = corpus_rows(&options(jobs)).expect("sweep runs");
        assert_eq!(
            corpus_fingerprint(&report),
            fp,
            "payload diverged at jobs={jobs}"
        );
    }
    let rerun = corpus_rows(&options(1)).expect("sweep runs");
    assert_eq!(corpus_fingerprint(&rerun), fp, "payload diverged across reruns");
    assert!(one.red_rows() == 0, "generated pool must sweep green");
}

#[test]
fn quick_sweep_meets_the_acceptance_floor() {
    let options = CorpusOptions {
        quick: true,
        jobs: 2,
        corpus_dir: Some(seed_corpus_dir()),
        ..Default::default()
    };
    let report = corpus_rows(&options).expect("sweep runs");
    assert!(report.rows.len() >= 30, "only {} rows", report.rows.len());
    assert!(
        report.aiger_circuits >= 5,
        "only {} parsed-AIGER circuits",
        report.aiger_circuits
    );
    assert_eq!(report.sec_mismatches(), 0);
    assert_eq!(report.backend_disagreements(), 0);
    assert_eq!(report.non_reproducible(), 0);
    assert_eq!(report.red_rows(), 0);
    // Every circuit×tier×backend cell is present exactly once.
    assert_eq!(report.rows.len(), report.circuits * 2 * 3);
}
