//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [all | mux-table | adder-table | table31 | table32 | figure31 | figure32
//!        | sat-stats | parallel | portfolio | bdd-bench | shared-bench
//!        | reach-bench | chaos | corpus | sweep-bench]
//!       [--quick] [--per-kind] [--jobs <N>] [--seed <N>] [--out <path>]
//!       [--corpus-dir <dir>]
//! ```
//!
//! `--quick` trims the expensive rows (mux width 6, adder s16, the two
//! largest Table 3.1 circuits, the largest Table 3.2 blocks) so the whole
//! run finishes in a few minutes. `--per-kind` adds the OR/AND/XOR win
//! split to Table 3.1 (ablation A3). `--jobs N` runs the reachability and
//! synthesis flows on `N` worker threads (`0` = all cores); results are
//! byte-identical to `--jobs 1`. `sat-stats` profiles the CDCL engine
//! on the paper-style SAT workloads and writes machine-readable
//! `BENCH_sat.json`; `parallel` times the flow at `--jobs 1` vs `--jobs N`
//! over the industrial set, checks byte-identity, and writes
//! `BENCH_parallel.json`; `portfolio` sweeps per-candidate budgets over
//! the two-block rescue family for each `--dec-backend`, double-running
//! every configuration to audit race-winner independence, writes
//! `BENCH_portfolio.json`, and **exits nonzero** if any run was not
//! reproducible; `bdd-bench` races the production BDD kernel
//! against a frozen pre-overhaul re-implementation (plus an auto-GC
//! on/off reachability memory comparison) and writes `BENCH_bdd.json`;
//! `shared-bench` replays the same churn and reachability workloads on
//! the shared-memory concurrent kernel at 1/2/4/8 workers, asserts
//! every arm's canonical result fingerprint matches the sequential
//! reference, and writes `BENCH_shared.json`;
//! `reach-bench` races the legacy per-bit image schedule against the
//! clustered image engine on the seq4–seq9 circuits — asserting both
//! reach identical sets — and writes `BENCH_reach.json`; `chaos` sweeps
//! the deterministic fault-injection sites over a fixed circuit suite,
//! audits the degradation ladder's soundness contract (no escaped
//! panics, no hangs, SEC-equivalent degradation, ⊤-monotone
//! reachability), writes `BENCH_chaos.json`, and **exits nonzero** on
//! any violation — `--seed N` replays a specific sweep (`--out`
//! overrides any of the paths); `corpus` runs the corpus-scale
//! differential harness (generated pool + any AIGER files under
//! `--corpus-dir`, defaulting to `tests/corpus` when present) through
//! symbi-vs-greedy across the `{bdd,sat,portfolio}` backends × budget
//! tiers with per-row SEC cross-checks and reproducibility double-runs,
//! writes `BENCH_corpus.json`, and **exits nonzero** on any red row;
//! `sweep-bench` runs the symbolic flow with the FRAIG-style
//! SAT-sweeping pre-pass off and on over a duplicate-heavy suite
//! (twinned two-block families plus a twinned generated pool),
//! records area/wall-clock deltas, double-runs the swept arm for
//! reproducibility, cross-checks swept-vs-unswept equivalence, writes
//! `BENCH_sweep.json`, and **exits nonzero** on any red row.

use std::time::Duration;
use symbi_bench::{
    adder_row, figure31, figure32, mux_row, table31_row, table32_row, write_bdd_json,
    write_parallel_json, write_reach_json, write_sat_json, write_shared_json, Table31Options,
};
use symbi_circuits::{industrial, iscas_like};
use symbi_synth::flow::SynthesisOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let per_kind = args.iter().any(|a| a == "--per-kind");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--seed expects a number, got `{v}`");
                std::process::exit(2);
            }
        });
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse::<usize>() {
            Ok(0) => symbi_bdd::par::available_jobs(),
            Ok(n) => n,
            Err(_) => {
                eprintln!("--jobs expects a number, got `{v}`");
                std::process::exit(2);
            }
        })
        .unwrap_or(1);
    let what = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            let is_flag_value = i > 0
                && (args[i - 1] == "--out"
                    || args[i - 1] == "--jobs"
                    || args[i - 1] == "--seed"
                    || args[i - 1] == "--corpus-dir");
            !a.starts_with("--") && !is_flag_value
        })
        .map(|(_, a)| a.as_str())
        .unwrap_or("all");
    let out_or = |default: &str| out_path.clone().unwrap_or_else(|| default.to_string());

    match what {
        "mux-table" => mux_table(quick),
        "adder-table" => adder_table(quick),
        "table31" => table31(quick, per_kind, jobs),
        "table32" => table32(quick, jobs),
        "figure31" => print_figure31(),
        "figure32" => print_figure32(),
        "sat-stats" => sat_stats(quick, &out_or("BENCH_sat.json")),
        "parallel" => parallel(quick, jobs, &out_or("BENCH_parallel.json")),
        "portfolio" => portfolio(quick, &out_or("BENCH_portfolio.json")),
        "bdd-bench" => bdd_bench(quick, &out_or("BENCH_bdd.json")),
        "shared-bench" => shared_bench(quick, &out_or("BENCH_shared.json")),
        "reach-bench" => reach_bench(quick, &out_or("BENCH_reach.json")),
        "chaos" => chaos(quick, seed, &out_or("BENCH_chaos.json")),
        "corpus" => {
            corpus(quick, jobs, seed, corpus_dir.clone(), &out_or("BENCH_corpus.json"))
        }
        "sweep-bench" => sweep_bench(quick, seed, &out_or("BENCH_sweep.json")),
        "all" => {
            print_figure31();
            print_figure32();
            mux_table(quick);
            adder_table(quick);
            table31(quick, per_kind, jobs);
            table32(quick, jobs);
            sat_stats(quick, &out_or("BENCH_sat.json"));
            portfolio(quick, &out_or("BENCH_portfolio.json"));
            bdd_bench(quick, &out_or("BENCH_bdd.json"));
            shared_bench(quick, &out_or("BENCH_shared.json"));
            reach_bench(quick, &out_or("BENCH_reach.json"));
            chaos(quick, seed, &out_or("BENCH_chaos.json"));
            corpus(quick, jobs, seed, corpus_dir.clone(), &out_or("BENCH_corpus.json"));
            sweep_bench(quick, seed, &out_or("BENCH_sweep.json"));
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro [all|mux-table|adder-table|table31|table32|figure31|figure32|sat-stats|parallel|portfolio|bdd-bench|shared-bench|reach-bench|chaos|corpus|sweep-bench] [--quick] [--per-kind] [--jobs <N>] [--seed <N>] [--out <path>] [--corpus-dir <dir>]"
            );
            std::process::exit(2);
        }
    }
}

fn corpus(quick: bool, jobs: usize, seed: Option<u64>, corpus_dir: Option<String>, out_path: &str) {
    use symbi_bench::corpus::{write_corpus_json, CorpusOptions};
    let mut options = CorpusOptions { quick, jobs, ..Default::default() };
    if let Some(s) = seed {
        options.seed = s;
    }
    // Default to the checked-in seed corpus when running from the repo
    // root; an explicit --corpus-dir always wins.
    options.corpus_dir = match corpus_dir {
        Some(d) => Some(d.into()),
        None => {
            let default = std::path::PathBuf::from("tests/corpus");
            default.is_dir().then_some(default)
        }
    };
    println!(
        "\n=== Corpus differential sweep: symbi vs greedy × backends × budgets, seed {} (written to {out_path}) ===",
        options.seed
    );
    println!(
        "{:>14} {:>6} {:>10} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>5} {:>6} {:>6}",
        "Circuit", "Src", "Backend", "Budget", "Orig", "Base", "Opt", "Swept", "A-rat", "D-rat",
        "Merge", "Skip", "Resc", "SEC", "Repro"
    );
    let report = match write_corpus_json(std::path::Path::new(out_path), &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corpus sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for r in &report.rows {
        println!(
            "{:>14} {:>6} {:>10} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6.3} {:>6.3} {:>5} {:>5} {:>5} {:>6} {:>6}",
            r.circuit,
            if r.source == "generated" { "gen" } else { "aiger" },
            r.backend,
            r.budget,
            r.orig_ands,
            r.base_ands,
            r.opt_ands,
            r.swept_ands,
            r.area_ratio(),
            r.depth_ratio(),
            r.sweep_merges,
            r.skipped,
            r.rescued,
            if r.sec_ok && r.base_sec_ok && r.swept_sec_ok { "ok" } else { "FAIL" },
            if r.reproducible && r.backend_agrees { "ok" } else { "FAIL" },
        );
    }
    println!(
        "Summary: {} rows over {} circuits ({} from AIGER files) — {} SEC mismatches, {} backend disagreements, {} non-reproducible ({:.1}s)",
        report.rows.len(),
        report.circuits,
        report.aiger_circuits,
        report.sec_mismatches(),
        report.backend_disagreements(),
        report.non_reproducible(),
        report.seconds,
    );
    if report.red_rows() > 0 {
        eprintln!("corpus sweep has {} red rows — failing the run", report.red_rows());
        std::process::exit(1);
    }
}

fn sweep_bench(quick: bool, seed: Option<u64>, out_path: &str) {
    use symbi_bench::sweep_bench::write_sweep_bench_json;
    let seed = seed.unwrap_or(0xC0DE_C0DE);
    println!(
        "\n=== SAT sweeping: unswept vs swept flow on the duplicate-heavy suite, seed {seed} (written to {out_path}) ==="
    );
    println!(
        "{:>12} {:>10} {:>6} {:>8} {:>6} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "Circuit", "Src", "Orig", "Unswept", "Swept", "A-rat", "Merge", "SAT", "Cex",
        "Unsw(s)", "Swp(s)", "Spdup", "SEC", "Repro"
    );
    let rows = write_sweep_bench_json(std::path::Path::new(out_path), quick, seed)
        .expect("failed to write BENCH_sweep.json");
    let (mut unswept_total, mut swept_total) = (0.0f64, 0.0f64);
    for r in &rows {
        println!(
            "{:>12} {:>10} {:>6} {:>8} {:>6} {:>6.3} {:>6} {:>5} {:>5} {:>9.3} {:>9.3} {:>7.2} {:>6} {:>6}",
            r.name,
            if r.source == "two_block" { "2blk" } else { "gen" },
            r.orig_ands,
            r.unswept_ands,
            r.swept_ands,
            r.area_ratio(),
            r.merges,
            r.sat_calls,
            r.cex_patterns,
            r.unswept_seconds,
            r.swept_seconds,
            r.speedup(),
            if r.sec_ok { "ok" } else { "FAIL" },
            if r.reproducible && r.jobs_identical { "ok" } else { "FAIL" },
        );
        unswept_total += r.unswept_seconds;
        swept_total += r.swept_seconds;
    }
    let merged: usize = rows.iter().map(|r| r.merges).sum();
    println!(
        "Total: {merged} merges; {unswept_total:.3}s unswept vs {swept_total:.3}s swept ({:.2}x)",
        unswept_total / swept_total.max(1e-9)
    );
    let red = rows.iter().filter(|r| r.red()).count();
    if red > 0 {
        eprintln!("sweep benchmark has {red} red rows — failing the run");
        std::process::exit(1);
    }
}

fn chaos(quick: bool, seed: Option<u64>, out_path: &str) {
    use symbi_bench::chaos::{write_chaos_json, ChaosOptions};
    let mut options = ChaosOptions { quick, ..Default::default() };
    if let Some(s) = seed {
        options.seed = s;
    }
    println!(
        "\n=== Chaos sweep: fault-injection soundness audit, seed {} (written to {out_path}) ===",
        options.seed
    );
    println!(
        "{:>12} {:>16} {:>4} {:>8} {:>6} {:>7} {:>8} {:>7} {:>8} {:>10}",
        "Circuit", "Site", "Occ", "Kind", "Fired", "Panics", "Skipped", "Bailed", "Retries",
        "Violations"
    );
    let report =
        write_chaos_json(std::path::Path::new(out_path), &options).expect("failed to write BENCH_chaos.json");
    for c in &report.cells {
        println!(
            "{:>12} {:>16} {:>4} {:>8} {:>6} {:>7} {:>8} {:>7} {:>8} {:>10}",
            c.circuit,
            c.site,
            c.occurrence,
            c.kind,
            c.fired,
            c.worker_panics,
            c.candidates_skipped,
            c.bailed_out,
            c.retries,
            c.violations.len(),
        );
        for v in &c.violations {
            println!("{:>12}   VIOLATION: {v}", "");
        }
    }
    println!(
        "Summary: {} cells, {} fired, {} violations, {} hangs, {} escaped panics ({:.1}s)",
        report.cells.len(),
        report.fired(),
        report.violations(),
        report.hangs(),
        report.escaped_panics(),
        report.seconds,
    );
    if report.violations() > 0 {
        eprintln!("chaos sweep found soundness violations — failing the run");
        std::process::exit(1);
    }
}

fn portfolio(quick: bool, out_path: &str) {
    use symbi_bench::write_portfolio_json;
    println!(
        "\n=== Portfolio rescue rung: decomposability backends under a budget sweep (written to {out_path}) ==="
    );
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>14} {:>9} {:>6} {:>8} {:>8} {:>8} {:>13}",
        "Circuit", "Backend", "Budgets", "Rescued", "Window", "Fallback", "Races", "BddWins",
        "SatWins", "Cancels", "Deterministic"
    );
    let rows = write_portfolio_json(std::path::Path::new(out_path), quick)
        .expect("failed to write BENCH_portfolio.json");
    let mut all_deterministic = true;
    for r in &rows {
        println!(
            "{:>10} {:>10} {:>8} {:>8} {:>14} {:>9} {:>6} {:>8} {:>8} {:>8} {:>13}",
            r.name,
            r.backend,
            r.budgets_swept,
            r.rescued,
            if r.rescued == 0 {
                "-".to_string()
            } else {
                format!("{}..{}", r.first_rescue_budget, r.last_rescue_budget)
            },
            r.fallbacks,
            r.races,
            r.bdd_wins,
            r.sat_wins,
            r.cancels,
            r.deterministic,
        );
        all_deterministic &= r.deterministic;
    }
    println!("(rescued > 0 for sat/portfolio on budgets where the pure-BDD ladder degrades)");
    if !all_deterministic {
        eprintln!("portfolio sweep was not reproducible — failing the run");
        std::process::exit(1);
    }
}

fn reach_bench(quick: bool, out_path: &str) {
    println!("\n=== Image computation: per-bit schedule vs clustered engine (written to {out_path}) ===");
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "Name", "PerBit(s)", "Clust(s)", "Speedup", "PeakPB", "PeakCl", "PeakRat", "#ClPB",
        "#ClCl", "MaxClNode"
    );
    let rows = write_reach_json(std::path::Path::new(out_path), quick)
        .expect("failed to write BENCH_reach.json");
    for r in &rows {
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>8.2} {:>10} {:>10} {:>8.2} {:>8} {:>8} {:>10}",
            r.name,
            r.per_bit_seconds,
            r.clustered_seconds,
            r.speedup(),
            r.per_bit_peak_live,
            r.clustered_peak_live,
            r.peak_ratio(),
            r.per_bit_clusters,
            r.clustered_clusters,
            r.clustered_max_cluster_nodes,
        );
    }
    println!("(reached sets asserted identical per row)");
}

fn bdd_bench(quick: bool, out_path: &str) {
    println!("\n=== BDD kernel: pre-overhaul vs production (written to {out_path}) ===");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>8} {:>10} {:>10} {:>6} {:>8}",
        "Workload", "Ops", "Before op/s", "After op/s", "Speedup", "PeakBefore", "PeakAfter",
        "GCs", "Hit%"
    );
    let rows = write_bdd_json(std::path::Path::new(out_path), quick)
        .expect("failed to write BENCH_bdd.json");
    for r in &rows {
        let lookups = r.cache_hits + r.cache_misses;
        let hit_pct = if lookups == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", 100.0 * r.cache_hits as f64 / lookups as f64)
        };
        println!(
            "{:>14} {:>10} {:>12.0} {:>12.0} {:>8.2} {:>10} {:>10} {:>6} {:>8}",
            r.name,
            r.ops,
            r.before_ops_per_sec(),
            r.after_ops_per_sec(),
            r.speedup(),
            r.before_peak_live,
            r.after_peak_live,
            r.gc_runs,
            hit_pct,
        );
    }
}

fn shared_bench(quick: bool, out_path: &str) {
    println!("\n=== Shared-memory kernel: 1/2/4/8 workers (written to {out_path}) ===");
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>12} {:>8} {:>20}",
        "Workload", "Workers", "Ops", "Seconds", "Ops/s", "Speedup", "Fingerprint"
    );
    // shared_rows itself asserts every arm's fingerprint equals the
    // sequential reference, so reaching the printing loop is the proof.
    let rows = write_shared_json(std::path::Path::new(out_path), quick)
        .expect("failed to write BENCH_shared.json");
    for r in &rows {
        println!(
            "{:>14} {:>8} {:>10} {:>10.3} {:>12.0} {:>8.2} {:>#20x}",
            r.name,
            r.workers,
            r.ops,
            r.seconds,
            r.ops_per_sec(),
            r.speedup(),
            r.fingerprint,
        );
    }
    println!("all worker counts produced identical canonical results");
}

fn parallel(quick: bool, jobs: usize, out_path: &str) {
    let jobs = if jobs <= 1 { symbi_bdd::par::available_jobs() } else { jobs };
    println!("\n=== Parallel flow: jobs=1 vs jobs={jobs} (written to {out_path}) ===");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>8} {:>10}",
        "Name", "Jobs", "Seq(s)", "Par(s)", "Speedup", "Identical"
    );
    let rows = write_parallel_json(std::path::Path::new(out_path), jobs, quick)
        .expect("failed to write BENCH_parallel.json");
    let mut all_identical = true;
    for r in &rows {
        println!(
            "{:>8} {:>6} {:>10.3} {:>10.3} {:>8.2} {:>10}",
            r.name,
            r.jobs,
            r.seq_seconds,
            r.par_seconds,
            r.speedup(),
            r.identical,
        );
        all_identical &= r.identical;
    }
    let (seq, par): (f64, f64) =
        rows.iter().fold((0.0, 0.0), |(s, p), r| (s + r.seq_seconds, p + r.par_seconds));
    println!("Total: {seq:.3}s sequential, {par:.3}s parallel ({:.2}x)", seq / par);
    if !all_identical {
        eprintln!("parallel flow diverged from sequential output — failing the run");
        std::process::exit(1);
    }
}

fn sat_stats(quick: bool, out_path: &str) {
    println!("\n=== SAT engine statistics (written to {out_path}) ===");
    println!(
        "{:>24} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "Workload", "Verdict", "Time(s)", "Conflicts", "Decisions", "Propagations", "Restarts",
        "MaxLBD"
    );
    let rows = write_sat_json(std::path::Path::new(out_path), quick)
        .expect("failed to write BENCH_sat.json");
    for r in &rows {
        println!(
            "{:>24} {:>8} {:>9.4} {:>10} {:>10} {:>12} {:>8} {:>8}",
            r.name,
            r.verdict,
            r.seconds,
            r.stats.conflicts,
            r.stats.decisions,
            r.stats.propagations,
            r.stats.restarts,
            r.stats.max_lbd,
        );
    }
}

fn mux_table(quick: bool) {
    println!("\n=== §3.4.1: OR decomposition of multiplexers ===");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>14} {:>12}",
        "Control", "Data", "BDD size", "Time(s)", "Best part.", "Choices"
    );
    let max_k = if quick { 4 } else { 6 };
    for k in 2..=max_k {
        let row = mux_row(k);
        println!(
            "{:>8} {:>6} {:>9} {:>9.2} {:>14} {:>12.3e}",
            row.control,
            row.data,
            row.bdd_size,
            row.seconds,
            format!("({}, {})", row.best.0, row.best.1),
            row.choices
        );
    }
    println!("(paper: best partitions (4,4)…(38,38), choices 6…1.8e18)");
}

fn adder_table(quick: bool) {
    println!("\n=== §3.4.2: XOR decomposition of 16-bit adder sum bits ===");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "Sum bit", "Inputs", "Best part.", "Implicit(s)", "Greedy(s)", "Checks"
    );
    // Paper row labels are s2..s16 with 7..33 inputs; with our 0-based
    // sum-bit indexing the 33-input cone is bit 15.
    let bits: &[usize] = if quick { &[2, 4, 6] } else { &[2, 4, 6, 8, 15] };
    let budget = if quick { Duration::from_secs(5) } else { Duration::from_secs(60) };
    for &bit in bits {
        let row = adder_row(bit, budget);
        println!(
            "{:>8} {:>8} {:>12} {:>12.3} {:>12} {:>8}",
            format!("s{bit}"),
            row.inputs,
            format!("({}, {})", row.best.0, row.best.1),
            row.implicit_seconds,
            match row.greedy_seconds {
                Some(s) => format!("{s:.3}"),
                None => "timeout".to_string(),
            },
            row.greedy_checks
        );
    }
    println!("(paper: best partitions (2,5)…(2,31); greedy times out on s16)");
}

fn table31(quick: bool, per_kind: bool, jobs: usize) {
    println!("\n=== Table 3.1: bi-decomposition without / with state analysis ===");
    println!(
        "{:>8} {:>9} {:>8} | {:>6} {:>11} | {:>11} {:>6} {:>11}",
        "Name", "In/Out", "Latches", "#dec", "avg.reduct", "log2 states", "#dec", "avg.reduct"
    );
    let specs: Vec<_> = if quick {
        iscas_like::SPECS.iter().take(6).collect()
    } else {
        iscas_like::SPECS.iter().collect()
    };
    let mut opts = Table31Options::default();
    opts.reach.jobs = jobs;
    let mut sums = (0f64, 0f64, 0usize);
    for spec in specs {
        let netlist = iscas_like::generate(spec);
        let no_states = table31_row(&netlist, false, &opts);
        let with_states = table31_row(&netlist, true, &opts);
        println!(
            "{:>8} {:>9} {:>8} | {:>6} {:>11.3} | {:>11.1} {:>6} {:>11.3}",
            no_states.name,
            format!("{}/{}", no_states.io.0, no_states.io.1),
            no_states.latches,
            no_states.ndec,
            no_states.avg_reduct,
            with_states.log2_states.unwrap_or(f64::NAN),
            with_states.ndec,
            with_states.avg_reduct,
        );
        if per_kind {
            println!(
                "{:>8}   per-kind wins (OR/AND/XOR): no-states {:?}, with-states {:?}",
                "", no_states.kind_wins, with_states.kind_wins
            );
        }
        sums.0 += no_states.avg_reduct;
        sums.1 += with_states.avg_reduct;
        sums.2 += 1;
    }
    println!(
        "Average reduction: {:.3} (no states) vs {:.3} (with states); paper: 0.673 vs 0.540",
        sums.0 / sums.2 as f64,
        sums.1 / sums.2 as f64
    );
}

fn table32(quick: bool, jobs: usize) {
    println!("\n=== Table 3.2: Algorithm 1 on industrial-like blocks ===");
    println!(
        "{:>6} {:>9} {:>8} {:>6} | {:>9} {:>7} | {:>9} {:>7} | {:>6} {:>6}",
        "Name", "In/Out", "Latches", "AND", "Pre area", "delay", "Opt area", "delay", "A-rat",
        "D-rat"
    );
    let specs: Vec<_> = if quick {
        industrial::SPECS.iter().filter(|s| s.and_nodes < 1500).collect()
    } else {
        industrial::SPECS.iter().collect()
    };
    let opts = SynthesisOptions { jobs, ..Default::default() };
    let mut ratios = (0f64, 0f64, 0usize);
    for spec in specs {
        let netlist = industrial::generate(spec);
        let row = table32_row(&netlist, &opts);
        println!(
            "{:>6} {:>9} {:>8} {:>6} | {:>9.0} {:>7.1} | {:>9.0} {:>7.1} | {:>6.3} {:>6.3}",
            row.name,
            format!("{}/{}", row.io.0, row.io.1),
            row.latches,
            row.ands,
            row.pre_area,
            row.pre_delay,
            row.opt_area,
            row.opt_delay,
            row.area_ratio(),
            row.delay_ratio(),
        );
        ratios.0 += row.area_ratio();
        ratios.1 += row.delay_ratio();
        ratios.2 += 1;
    }
    println!(
        "Average reduction: area {:.3}, delay {:.3}; paper: 0.88 and 0.94",
        ratios.0 / ratios.2 as f64,
        ratios.1 / ratios.2 as f64
    );
}

fn print_figure31() {
    let fig = figure31();
    println!("\n=== Figure 3.1: maj(a,b,c) with unreachable state a·b̄·c ===");
    println!("exact best balanced partition: {:?} (none exists)", fig.exact_best);
    println!("with don't care:              {:?}", fig.dc_best);
    println!("decomposition: {} ({} gates)", fig.tree, fig.gates);
}

fn print_figure32() {
    let fig = figure32();
    println!("\n=== Figure 3.2: decomposition re-using existing logic ===");
    println!(
        "sharing hits {} — gates {} → {}",
        fig.sharing_hits, fig.gates_before, fig.gates_after
    );
}
