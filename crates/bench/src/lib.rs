//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function here computes one row (or one figure's data) exactly as
//! the corresponding evaluation in the paper describes; the `repro` binary
//! prints them in the paper's layout and the Criterion benches time them.
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | §3.4.1 multiplexer profile | [`mux_row`] |
//! | §3.4.2 adder XOR profile   | [`adder_row`] |
//! | Table 3.1                  | [`table31_row`] |
//! | Table 3.2                  | [`table32_row`] |
//! | Figure 3.1                 | [`figure31`] |
//! | Figure 3.2                 | [`figure32`] |
//!
//! [`sat_stats_rows`] additionally profiles the CDCL engine on the
//! paper-style workloads (decomposability checks, core-guided partition
//! growth, SAT-based bounded SEC) and [`write_sat_json`] dumps the
//! result as machine-readable `BENCH_sat.json` for trend tracking.

pub mod baseline;
pub mod chaos;
pub mod corpus;
pub mod sweep_bench;

use std::collections::HashMap;
use std::time::{Duration, Instant};
use symbi_bdd::{KernelConfig, Manager, NodeId, ResourceGovernor, VarId};
use symbi_circuits::{adder, mux};
use symbi_core::{and_dec, greedy, or_dec, recursive, xor_dec, DecKind, Interval};
use symbi_netlist::clean::clean;
use symbi_netlist::cone::ConeExtractor;
use symbi_netlist::{Netlist, NodeKind, SignalId};
use symbi_reach::{Reachability, ReachabilityOptions};
use symbi_synth::flow::{optimize, SynthesisOptions};
use symbi_synth::genlib::Library;
use symbi_synth::map::{map, MapMode};

// ---------------------------------------------------------------------
// §3.4.1: multiplexer OR-decomposition profile
// ---------------------------------------------------------------------

/// One row of the §3.4.1 multiplexer table.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxRow {
    /// Control width `k`.
    pub control: usize,
    /// Data width `2^k`.
    pub data: usize,
    /// Nodes of the computed `Bi` BDD.
    pub bdd_size: usize,
    /// Wall-clock seconds for the `Bi` computation.
    pub seconds: f64,
    /// Best balanced partition `(|x1|, |x2|)`.
    pub best: (usize, usize),
    /// Number of feasible decompositions at the best sizes.
    pub choices: f64,
}

/// Computes the multiplexer profile row for control width `k`.
pub fn mux_row(k: usize) -> MuxRow {
    let netlist = mux::mux(k);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
    let f_sig = netlist.outputs()[0].1;
    let f = ext.bdd(&mut m, f_sig);
    let vars: Vec<VarId> = (0..m.num_vars() as u32).map(VarId).collect();
    let interval = Interval::exact(f);
    let start = Instant::now();
    let mut choices = or_dec::Choices::compute(&mut m, &interval, &vars);
    let bdd_size = choices.bi_size();
    let best = choices.best_balanced().expect("multiplexers OR-decompose");
    let seconds = start.elapsed().as_secs_f64();
    let count = choices.count_choices(best.0, best.1);
    MuxRow { control: k, data: 1 << k, bdd_size, seconds, best, choices: count }
}

// ---------------------------------------------------------------------
// §3.4.2: adder sum-bit XOR profile
// ---------------------------------------------------------------------

/// One row of the §3.4.2 adder table.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderRow {
    /// Sum-bit index (`s2`, `s4`, …).
    pub sum_bit: usize,
    /// Inputs of the bit's cone (`2i + 3`).
    pub inputs: usize,
    /// Best partition from the implicit computation.
    pub best: (usize, usize),
    /// Implicit (symbolic `Bi`) runtime, seconds.
    pub implicit_seconds: f64,
    /// Greedy check runtime, seconds; `None` when it timed out.
    pub greedy_seconds: Option<f64>,
    /// Decomposability checks the greedy search performed.
    pub greedy_checks: usize,
}

/// Computes the adder profile row for sum bit `i`, giving the greedy
/// comparator the supplied time budget.
pub fn adder_row(bit: usize, greedy_budget: Duration) -> AdderRow {
    let netlist = adder::ripple_carry(bit + 1);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
    let sig = netlist.signal(&format!("s{bit}")).expect("sum bit exists");
    let f = ext.bdd(&mut m, sig);
    let support = m.support(f);
    let interval = Interval::exact(f);

    let start = Instant::now();
    let mut choices = xor_dec::Choices::compute(&mut m, &interval, &support);
    let best = choices.best_balanced().expect("sum bits XOR-decompose");
    let implicit_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    // The baseline uses the explicit cofactor-enumeration check of the
    // DAC'01 implementation the paper profiles, which is what blows up on
    // the wide sum bits.
    let greedy_result = greedy::grow_styled(
        &mut m,
        DecKind::Xor,
        &interval,
        &support,
        greedy_budget,
        greedy::CheckStyle::ExplicitCofactor,
    );
    let (greedy_seconds, greedy_checks) = match greedy_result {
        greedy::GreedyResult::Found(o) => (Some(start.elapsed().as_secs_f64()), o.checks),
        greedy::GreedyResult::Infeasible => (Some(start.elapsed().as_secs_f64()), 0),
        greedy::GreedyResult::TimedOut { checks } => (None, checks),
    };
    AdderRow {
        sum_bit: bit,
        inputs: support.len(),
        best,
        implicit_seconds,
        greedy_seconds,
        greedy_checks,
    }
}

// ---------------------------------------------------------------------
// Table 3.1: bi-decomposition with and without state analysis
// ---------------------------------------------------------------------

/// Options for the Table 3.1 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table31Options {
    /// Functions with more support variables than this are skipped (the
    /// paper caps per-circuit decomposition time instead).
    pub max_support: usize,
    /// Reachability configuration for the "with states" arm.
    pub reach: ReachabilityOptions,
    /// Try XOR in addition to OR/AND (XOR `Bi` is the widest computation).
    pub use_xor: bool,
}

impl Default for Table31Options {
    fn default() -> Self {
        Table31Options {
            max_support: 12,
            reach: ReachabilityOptions {
                partition: symbi_reach::PartitionOptions { max_latches: 40 },
                ..Default::default()
            },
            use_xor: true,
        }
    }
}

/// One arm (with or without states) of a Table 3.1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table31Row {
    /// Circuit name.
    pub name: String,
    /// Inputs / outputs.
    pub io: (usize, usize),
    /// Latches after structural cleanup.
    pub latches: usize,
    /// Candidate functions examined.
    pub functions: usize,
    /// Functions with a non-trivial decomposition (`#dec.`).
    pub ndec: usize,
    /// Average `max(|x1|,|x2|)/|supp f|` over decomposed functions.
    pub avg_reduct: f64,
    /// `log2` of the reachable-state estimate; `None` in the no-states arm.
    pub log2_states: Option<f64>,
    /// Per-kind counts of which primitive won each decomposed function.
    pub kind_wins: [usize; 3],
}

/// Runs one Table 3.1 arm on a circuit.
pub fn table31_row(netlist: &Netlist, with_states: bool, options: &Table31Options) -> Table31Row {
    let (cleaned, _) = clean(netlist);
    let mut reach = if with_states {
        Reachability::analyze(&cleaned, options.reach)
    } else {
        Reachability::trivial(&cleaned)
    };
    let log2_states = with_states.then(|| reach.log2_states());

    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_dfs_layout(&cleaned, &mut m);
    let var_of_latch: HashMap<SignalId, VarId> = cleaned
        .latches()
        .iter()
        .map(|&l| (l, ext.var_of(l).expect("layout covers latches")))
        .collect();

    let mut candidates: Vec<SignalId> = cleaned
        .latches()
        .iter()
        .map(|&l| cleaned.latch_next(l).expect("validated"))
        .collect();
    candidates.extend(cleaned.outputs().iter().map(|&(_, s)| s));
    candidates.sort_unstable();
    candidates.dedup();

    let mut functions = 0usize;
    let mut ndec = 0usize;
    let mut ratio_sum = 0f64;
    let mut kind_wins = [0usize; 3];
    for &sig in &candidates {
        let supp = cleaned.support(sig);
        let n = supp.len();
        if n < 2 || n > options.max_support {
            continue;
        }
        functions += 1;
        let f = ext.bdd(&mut m, sig);
        let ps: Vec<SignalId> = supp
            .iter()
            .copied()
            .filter(|s| matches!(cleaned.kind(*s), NodeKind::Latch { .. }))
            .collect();
        let care = reach.care_set(&ps, &mut m, &var_of_latch);
        let unreachable = m.not(care);
        let interval = Interval::with_dontcare(&mut m, f, unreachable);
        if let Some((kind, maxk)) = best_decomposition(&mut m, &interval, options.use_xor) {
            ndec += 1;
            ratio_sum += maxk as f64 / n as f64;
            kind_wins[match kind {
                DecKind::Or => 0,
                DecKind::And => 1,
                DecKind::Xor => 2,
            }] += 1;
        }
    }
    Table31Row {
        name: cleaned.name().to_string(),
        io: (cleaned.num_inputs(), cleaned.num_outputs()),
        latches: cleaned.num_latches(),
        functions,
        ndec,
        avg_reduct: if ndec == 0 { 1.0 } else { ratio_sum / ndec as f64 },
        log2_states,
        kind_wins,
    }
}

/// Best non-trivial decomposition of an interval across the primitive
/// kinds: returns the winning kind and `max(|x1|, |x2|)` measured against
/// the *reduced* interval, after vacuous-variable abstraction.
fn best_decomposition(
    m: &mut Manager,
    interval: &Interval,
    use_xor: bool,
) -> Option<(DecKind, usize)> {
    let (reduced, removed) = interval.reduce_support(m);
    let support = reduced.support(m);
    if support.is_empty() {
        // Constant under don't cares: count as a total reduction.
        return Some((DecKind::Or, 0));
    }
    let mut best: Option<(DecKind, usize)> = None;
    let mut consider = |kind: DecKind, pair: Option<(usize, usize)>| {
        if let Some((k1, k2)) = pair {
            let maxk = k1.max(k2);
            if best.is_none_or(|(_, b)| maxk < b) {
                best = Some((kind, maxk));
            }
        }
    };
    let p_or = or_dec::Choices::compute(m, &reduced, &support).best_balanced();
    consider(DecKind::Or, p_or);
    let p_and = and_dec::Choices::compute(m, &reduced, &support).best_balanced();
    consider(DecKind::And, p_and);
    if use_xor {
        let p_xor = xor_dec::Choices::compute(m, &reduced, &support).best_balanced();
        consider(DecKind::Xor, p_xor);
    }
    match best {
        Some(b) => Some(b),
        // Abstraction alone is a reduction: both halves of the trivial
        // split shrank to the reduced support.
        None if !removed.is_empty() => Some((DecKind::Or, support.len())),
        None => None,
    }
}

// ---------------------------------------------------------------------
// Table 3.2: Algorithm 1 on industrial-like blocks
// ---------------------------------------------------------------------

/// One row of Table 3.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table32Row {
    /// Circuit name.
    pub name: String,
    /// Inputs / outputs.
    pub io: (usize, usize),
    /// Latches.
    pub latches: usize,
    /// and/inv expansion size of the original circuit.
    pub ands: usize,
    /// Area after pre-processing (cleanup + mapping) only.
    pub pre_area: f64,
    /// Delay after pre-processing only.
    pub pre_delay: f64,
    /// Area after Algorithm 1 + mapping.
    pub opt_area: f64,
    /// Delay after Algorithm 1 + mapping.
    pub opt_delay: f64,
}

impl Table32Row {
    /// Area ratio `Algor.1 / pre-processed`.
    pub fn area_ratio(&self) -> f64 {
        self.opt_area / self.pre_area
    }

    /// Delay ratio `Algor.1 / pre-processed`.
    pub fn delay_ratio(&self) -> f64 {
        self.opt_delay / self.pre_delay
    }
}

/// Runs the Table 3.2 flow on one circuit: pre-process (cleanup + map)
/// vs. Algorithm 1 (+ map), both against the embedded mcnc-like library.
pub fn table32_row(netlist: &Netlist, options: &SynthesisOptions) -> Table32Row {
    let library = Library::mcnc_like();
    let stats = symbi_netlist::stats::stats(netlist);
    let (pre, _) = clean(netlist);
    let pre_mapped = map(&pre, &library, MapMode::Area);
    let (opt, _) = optimize(netlist, options);
    let opt_mapped = map(&opt, &library, MapMode::Area);
    Table32Row {
        name: netlist.name().to_string(),
        io: (stats.inputs, stats.outputs),
        latches: stats.latches,
        ands: stats.aig_ands,
        pre_area: pre_mapped.area,
        pre_delay: pre_mapped.delay,
        opt_area: opt_mapped.area,
        opt_delay: opt_mapped.delay,
    }
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Data behind Figure 3.1: the majority function with the unreachable
/// state `a·b̄·c` OR-decomposes into two 2-variable halves.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure31 {
    /// Best partition sizes without the don't care.
    pub exact_best: Option<(usize, usize)>,
    /// Best partition sizes with the unreachable state as a don't care.
    pub dc_best: Option<(usize, usize)>,
    /// The decomposition tree found with don't cares.
    pub tree: String,
    /// Gates in the tree.
    pub gates: usize,
}

/// Reproduces Figure 3.1.
pub fn figure31() -> Figure31 {
    let mut m = Manager::new();
    let vs = m.new_vars(3);
    let ab = m.and(vs[0], vs[1]);
    let ac = m.and(vs[0], vs[2]);
    let bc = m.and(vs[1], vs[2]);
    let t = m.or(ab, ac);
    let f = m.or(t, bc);
    let nb = m.not(vs[1]);
    let anb = m.and(vs[0], nb);
    let dc = m.and(anb, vs[2]);
    let vars: Vec<VarId> = (0..3u32).map(VarId).collect();
    let exact = Interval::exact(f);
    let exact_best = or_dec::Choices::compute(&mut m, &exact, &vars).best_balanced();
    let widened = Interval::with_dontcare(&mut m, f, dc);
    let dc_best = or_dec::Choices::compute(&mut m, &widened, &vars).best_balanced();
    let (tree, _) = recursive::decompose(&mut m, &widened, &recursive::Options::default());
    Figure31 { exact_best, dc_best, tree: tree.to_string(), gates: tree.num_gates() }
}

/// Data behind Figure 3.2: structure sharing during re-emission.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure32 {
    /// Sharing hits reported by the synthesis flow.
    pub sharing_hits: usize,
    /// Gates before and after optimization.
    pub gates_before: usize,
    /// Gates after optimization.
    pub gates_after: usize,
}

/// Reproduces the Figure 3.2 effect: two output cones whose balanced
/// decompositions share a `g1` that was not in either fanin initially.
pub fn figure32() -> Figure32 {
    use symbi_netlist::GateKind;
    let mut n = Netlist::new("fig32");
    let ins: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
    // f1 = (i0·i1) + (i2·i3), and f2 = ¬(¬i0 + ¬i1) ⊕ i2 — semantically
    // f2 contains the same g1 = i0·i1, but through a different structure
    // that no structural hash can unify. Only re-decomposition exposes
    // the shared node, which is exactly Figure 3.2's point.
    let p1 = n.add_gate("p1", GateKind::And, vec![ins[0], ins[1]]);
    let p2 = n.add_gate("p2", GateKind::And, vec![ins[2], ins[3]]);
    let f1 = n.add_gate("f1", GateKind::Or, vec![p1, p2]);
    let n0 = n.add_gate("n0", GateKind::Not, vec![ins[0]]);
    let n1 = n.add_gate("n1", GateKind::Not, vec![ins[1]]);
    let p3 = n.add_gate("p3", GateKind::Nor, vec![n0, n1]);
    let f2 = n.add_gate("f2", GateKind::Xor, vec![p3, ins[2]]);
    n.add_output("f1", f1);
    n.add_output("f2", f2);
    let before = n.num_gates();
    let (opt, report) = optimize(&n, &SynthesisOptions::default());
    Figure32 {
        sharing_hits: report.sharing_hits,
        gates_before: before,
        gates_after: opt.num_gates(),
    }
}

// ---------------------------------------------------------------------
// SAT-engine statistics (BENCH_sat.json)
// ---------------------------------------------------------------------

/// One profiled SAT workload: name, verdict, wall-clock, solver counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SatBenchRow {
    /// Workload label (circuit + check kind).
    pub name: String,
    /// The check's boolean verdict (decomposable / equivalent / grown).
    pub verdict: bool,
    /// Wall-clock seconds of the SAT portion.
    pub seconds: f64,
    /// Solver counters accumulated over the workload's solves.
    pub stats: symbi_sat::SolverStats,
}

/// Profiles the CDCL engine on the paper-style SAT workloads:
/// adder sum-bit XOR checks (§3.4.2 cones), a multiplexer OR check
/// (§3.4.1), core-guided partition growth (\[14\]'s signature move), and
/// SAT-based bounded SEC validating an Algorithm 1 run on a Table
/// 3.2-style block. `quick` trims the widest cones.
pub fn sat_stats_rows(quick: bool) -> Vec<SatBenchRow> {
    use symbi_core::sat_dec;
    let mut rows = Vec::new();

    // Adder sum-bit XOR decomposability (Table 3.1-style cones).
    let bits: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8, 10] };
    for &bit in bits {
        let netlist = adder::ripple_carry(bit + 1);
        let mut m = Manager::new();
        let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
        let sig = netlist.signal(&format!("s{bit}")).expect("sum bit exists");
        let f = ext.bdd(&mut m, sig);
        let support = m.support(f);
        // The paper's winning partition for sum bits: {a_bit, b_bit} vs the
        // carry chain — decomposable, so the solver proves UNSAT.
        let n = support.len();
        let (a_vac, b_vac) = (support[..n - 2].to_vec(), support[n - 2..].to_vec());
        let start = Instant::now();
        let (dec, stats) =
            sat_dec::xor_decomposable_with_stats(&m, f, &support, &a_vac, &b_vac);
        rows.push(SatBenchRow {
            name: format!("adder_s{bit}_xor_check"),
            verdict: dec,
            seconds: start.elapsed().as_secs_f64(),
            stats,
        });
    }

    // Multiplexer OR decomposability (§3.4.1-style): data words split
    // between the halves, controls shared.
    let k = 3usize;
    {
        let netlist = mux::mux(k);
        let mut m = Manager::new();
        let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
        let f_sig = netlist.outputs()[0].1;
        let f = ext.bdd(&mut m, f_sig);
        let support = m.support(f);
        let data: Vec<VarId> = support.iter().copied().skip(k).collect();
        let half = data.len() / 2;
        let (a_vac, b_vac) = (data[..half].to_vec(), data[half..].to_vec());
        let start = Instant::now();
        let (dec, stats) =
            sat_dec::or_decomposable_with_stats(&m, f, &support, &a_vac, &b_vac);
        rows.push(SatBenchRow {
            name: format!("mux{k}_or_check"),
            verdict: dec,
            seconds: start.elapsed().as_secs_f64(),
            stats,
        });
    }

    // Core-guided OR-partition growth on the canonical ab + cd shape.
    {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let ab = m.and(vs[0], vs[1]);
        let cd = m.and(vs[2], vs[3]);
        let ef = m.and(vs[4], vs[5]);
        let t = m.or(ab, cd);
        let f = m.or(t, ef);
        let vars: Vec<VarId> = (0..6u32).map(VarId).collect();
        let start = Instant::now();
        let (grown, stats) =
            symbi_core::sat_dec::grow_or_partition_with_stats(&m, f, &vars, VarId(0), VarId(2));
        rows.push(SatBenchRow {
            name: "or_partition_growth".to_string(),
            verdict: grown.is_some(),
            seconds: start.elapsed().as_secs_f64(),
            stats,
        });
    }

    // SAT-based bounded SEC validating an Algorithm 1 run (Table
    // 3.2-style): optimize the smallest industrial block and check the
    // result against the original.
    {
        let netlist = symbi_circuits::industrial::by_name("seq6").expect("known block");
        let frames = if quick { 4 } else { 8 };
        let opts = SynthesisOptions {
            validate_frames: Some(frames),
            ..Default::default()
        };
        let start = Instant::now();
        let (_, report) = optimize(&netlist, &opts);
        let v = report.sat_validation.expect("validation requested");
        rows.push(SatBenchRow {
            name: format!("seq6_flow_sec_{frames}f"),
            verdict: v.equivalent,
            seconds: start.elapsed().as_secs_f64(),
            stats: v.solver,
        });
    }

    rows
}

/// Serializes [`SatBenchRow`]s as JSON (written by hand — the workspace
/// carries no serde) in a stable schema for longitudinal comparison.
pub fn sat_stats_json(rows: &[SatBenchRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-sat-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"verdict\": {}, \"seconds\": {:.6}, ",
                "\"conflicts\": {}, \"decisions\": {}, \"propagations\": {}, ",
                "\"restarts\": {}, \"learnt_clauses\": {}, \"deleted_clauses\": {}, ",
                "\"db_reductions\": {}, \"max_lbd\": {}, \"max_live_learnt\": {}, ",
                "\"minimized_literals\": {}}}{}\n"
            ),
            r.name,
            r.verdict,
            r.seconds,
            s.conflicts,
            s.decisions,
            s.propagations,
            s.restarts,
            s.learnt_clauses,
            s.deleted_clauses,
            s.db_reductions,
            s.max_lbd,
            s.max_live_learnt,
            s.minimized_literals,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`sat_stats_rows`] and writes [`sat_stats_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_sat_json(path: &std::path::Path, quick: bool) -> std::io::Result<Vec<SatBenchRow>> {
    let rows = sat_stats_rows(quick);
    std::fs::write(path, sat_stats_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// Parallel speedup benchmark (BENCH_parallel.json)
// ---------------------------------------------------------------------

/// One circuit's sequential-vs-parallel comparison: wall-clock for both
/// runs and whether the emitted netlists were byte-identical (the
/// determinism oracle the parallel engine must satisfy).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRow {
    /// Circuit name.
    pub name: String,
    /// Worker threads used for the parallel arm.
    pub jobs: usize,
    /// Wall-clock seconds of the `jobs = 1` run.
    pub seq_seconds: f64,
    /// Wall-clock seconds of the `jobs = N` run.
    pub par_seconds: f64,
    /// Whether `.bench` serializations of the two results matched byte
    /// for byte.
    pub identical: bool,
    /// Which execution path the parallel arm actually took: `"threads"`
    /// when the eligible-candidate count reached the small-workload
    /// cutoff, `"inline"` when the flow stayed on the caller's thread.
    pub path: String,
}

impl ParallelRow {
    /// Sequential time over parallel time.
    pub fn speedup(&self) -> f64 {
        self.seq_seconds / self.par_seconds
    }
}

/// Times [`optimize`] at `jobs = 1` vs `jobs = N` over the industrial
/// circuit set (`quick` keeps only the sub-1500-AND blocks) and checks
/// byte-identity of the results.
pub fn parallel_rows(jobs: usize, quick: bool) -> Vec<ParallelRow> {
    let specs: Vec<_> = if quick {
        symbi_circuits::industrial::SPECS.iter().filter(|s| s.and_nodes < 1500).collect()
    } else {
        symbi_circuits::industrial::SPECS.iter().collect()
    };
    let mut rows = Vec::new();
    for spec in specs {
        let netlist = symbi_circuits::industrial::generate(spec);
        let start = Instant::now();
        let (seq_net, _) =
            optimize(&netlist, &SynthesisOptions { jobs: 1, ..Default::default() });
        let seq_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (par_net, par_rep) =
            optimize(&netlist, &SynthesisOptions { jobs, ..Default::default() });
        let par_seconds = start.elapsed().as_secs_f64();
        let identical =
            symbi_netlist::bench::write(&seq_net) == symbi_netlist::bench::write(&par_net);
        let path = if symbi_bdd::par::effective_jobs(jobs, par_rep.eligible) > 1 {
            "threads"
        } else {
            "inline"
        };
        rows.push(ParallelRow {
            name: netlist.name().to_string(),
            jobs,
            seq_seconds,
            par_seconds,
            identical,
            path: path.to_string(),
        });
    }
    rows
}

/// Serializes [`ParallelRow`]s as JSON (hand-written — no serde in the
/// workspace) in a stable schema for longitudinal comparison.
pub fn parallel_json(rows: &[ParallelRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-parallel-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"seq_seconds\": {:.6}, ",
                "\"par_seconds\": {:.6}, \"speedup\": {:.3}, \"identical\": {}, ",
                "\"path\": \"{}\"}}{}\n"
            ),
            r.name,
            r.jobs,
            r.seq_seconds,
            r.par_seconds,
            r.speedup(),
            r.identical,
            r.path,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`parallel_rows`] and writes [`parallel_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_parallel_json(
    path: &std::path::Path,
    jobs: usize,
    quick: bool,
) -> std::io::Result<Vec<ParallelRow>> {
    let rows = parallel_rows(jobs, quick);
    std::fs::write(path, parallel_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// BDD kernel microbenchmark (BENCH_bdd.json)
// ---------------------------------------------------------------------

/// One before/after comparison between the pre-overhaul kernel
/// ([`baseline::BaselineManager`]) and the production
/// [`symbi_bdd::Manager`] on an identical operation script.
///
/// Microbench rows fill every field; the partitioned-reachability rows
/// compare `auto_gc` off (the pre-overhaul never-free behaviour) against
/// the collector and leave the per-manager cache/GC counters at zero,
/// since partition managers are consumed inside the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct BddBenchRow {
    /// Workload name.
    pub name: String,
    /// Top-level BDD operations executed by each arm.
    pub ops: u64,
    /// Wall-clock seconds of the pre-overhaul arm.
    pub before_seconds: f64,
    /// Wall-clock seconds of the production-kernel arm.
    pub after_seconds: f64,
    /// Peak allocated nodes of the pre-overhaul arm (it never frees, so
    /// peak = total).
    pub before_peak_live: usize,
    /// Peak simultaneously-live nodes of the production arm.
    pub after_peak_live: usize,
    /// Mark-and-sweep collections the production arm ran.
    pub gc_runs: u64,
    /// Computed-table hits of the production arm.
    pub cache_hits: u64,
    /// Computed-table misses of the production arm.
    pub cache_misses: u64,
}

impl BddBenchRow {
    /// Operations per second of the pre-overhaul arm.
    pub fn before_ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.before_seconds
    }

    /// Operations per second of the production arm.
    pub fn after_ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.after_seconds
    }

    /// `after_ops_per_sec / before_ops_per_sec`.
    pub fn speedup(&self) -> f64 {
        self.before_seconds / self.after_seconds
    }
}

/// Deterministic splitmix64 so both arms replay the same op script
/// (the workspace vendors `rand` only as a dev-dependency elsewhere).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const CHURN_SEED: u64 = 0x5eed_0bdd_0bdd_5eed;

/// The operations the churn workload needs from a kernel, so one script
/// drives both the frozen baseline and the production manager.
pub trait ChurnKernel {
    /// Node handle.
    type H: Copy;
    /// The node for variable `v`.
    fn var(&mut self, v: u32) -> Self::H;
    /// Negation.
    fn not(&mut self, f: Self::H) -> Self::H;
    /// Conjunction.
    fn and(&mut self, f: Self::H, g: Self::H) -> Self::H;
    /// Disjunction.
    fn or(&mut self, f: Self::H, g: Self::H) -> Self::H;
    /// Observes each round's finished product just before it dies —
    /// kernels that fold a result fingerprint (the shared-memory
    /// identical-results assert) hook in here. Default: ignore it.
    fn probe(&mut self, _product: Self::H) {}
    /// Called at every round boundary — the script's GC safe point.
    fn round_done(&mut self) {}
}

impl ChurnKernel for baseline::BaselineManager {
    type H = u32;
    fn var(&mut self, v: u32) -> u32 {
        baseline::BaselineManager::var(self, v)
    }
    fn not(&mut self, f: u32) -> u32 {
        baseline::BaselineManager::not(self, f)
    }
    fn and(&mut self, f: u32, g: u32) -> u32 {
        self.apply(baseline::BinOp::And, f, g)
    }
    fn or(&mut self, f: u32, g: u32) -> u32 {
        self.apply(baseline::BinOp::Or, f, g)
    }
}

impl ChurnKernel for Manager {
    type H = NodeId;
    fn var(&mut self, v: u32) -> NodeId {
        Manager::var(self, VarId(v))
    }
    fn not(&mut self, f: NodeId) -> NodeId {
        Manager::not(self, f)
    }
    fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        Manager::and(self, f, g)
    }
    fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        Manager::or(self, f, g)
    }
    fn round_done(&mut self) {
        self.maybe_gc(&[]);
    }
}

/// The microbench workload: `rounds` rounds, each conjoining `clauses`
/// random `width`-literal disjunctions into a product that dies at the
/// end of its round — exactly the allocate-use-drop churn of an image
/// computation. Returns the number of top-level operations, which is
/// identical for both kernels by construction.
pub fn churn_script<K: ChurnKernel>(
    kernel: &mut K,
    rounds: usize,
    clauses: usize,
    width: usize,
    n_vars: u32,
) -> u64 {
    let mut rng = SplitMix(CHURN_SEED);
    let mut ops = 0u64;
    for _ in 0..rounds {
        let mut acc: Option<K::H> = None;
        for _ in 0..clauses {
            let mut clause: Option<K::H> = None;
            for _ in 0..width {
                let v = kernel.var((rng.next() % u64::from(n_vars)) as u32);
                let lit = if rng.next() & 1 == 0 {
                    ops += 1;
                    kernel.not(v)
                } else {
                    v
                };
                clause = Some(match clause {
                    None => lit,
                    Some(c) => {
                        ops += 1;
                        kernel.or(c, lit)
                    }
                });
            }
            let clause = clause.expect("width > 0");
            acc = Some(match acc {
                None => clause,
                Some(a) => {
                    ops += 1;
                    kernel.and(a, clause)
                }
            });
        }
        if let Some(product) = acc {
            kernel.probe(product);
        }
        kernel.round_done();
    }
    ops
}

/// Runs the churn workload on both kernels and returns the comparison
/// row. The production arm offers the collector a safe point at every
/// round boundary (as the reachability fixpoint does); the baseline has
/// nothing to offer it to.
pub fn bdd_churn_row(name: &str, rounds: usize, clauses: usize, width: usize) -> BddBenchRow {
    let n_vars = 20u32;

    let mut base = baseline::BaselineManager::with_vars(n_vars);
    let start = Instant::now();
    let ops = churn_script(&mut base, rounds, clauses, width, n_vars);
    let before_seconds = start.elapsed().as_secs_f64();
    let before_peak_live = base.node_count();

    let mut m = Manager::with_vars(n_vars as usize);
    let start = Instant::now();
    let after_ops = churn_script(&mut m, rounds, clauses, width, n_vars);
    let after_seconds = start.elapsed().as_secs_f64();
    assert_eq!(ops, after_ops, "both arms must replay the same script");
    let stats = m.stats();

    BddBenchRow {
        name: name.to_string(),
        ops,
        before_seconds,
        after_seconds,
        before_peak_live,
        after_peak_live: stats.peak_live,
        gc_runs: stats.gc_runs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
    }
}

/// Partitioned-reachability peak-memory comparison on one industrial
/// circuit: `auto_gc` off reproduces the pre-overhaul kernel's
/// never-free behaviour inside the same analysis code, `auto_gc` on
/// lets the collector sweep image intermediates at every fixpoint safe
/// point.
///
/// Both arms pin `max_latches` to 24 and share a generous node budget
/// so they analyze the *same* static partition tree: under the default
/// caps the never-free arm trips the governor on the hardest seq5
/// partition and adaptively splits it while the collected arm finishes
/// it whole, which would compare peaks of different fixpoints.
pub fn bdd_reach_row(spec: &symbi_circuits::industrial::IndustrialSpec) -> BddBenchRow {
    let netlist = symbi_circuits::industrial::generate(spec);
    let partition = symbi_reach::PartitionOptions { max_latches: 24 };
    let off = ReachabilityOptions {
        partition,
        node_limit: 4_000_000,
        kernel: KernelConfig { auto_gc: false, ..KernelConfig::default() },
        ..Default::default()
    };
    let on = ReachabilityOptions { partition, node_limit: 4_000_000, ..Default::default() };
    let start = Instant::now();
    let before = Reachability::analyze(&netlist, off).stats();
    let before_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let after = Reachability::analyze(&netlist, on).stats();
    let after_seconds = start.elapsed().as_secs_f64();
    BddBenchRow {
        name: format!("reach_{}", netlist.name()),
        ops: after.iterations as u64,
        before_seconds,
        after_seconds,
        before_peak_live: before.peak_live_nodes,
        after_peak_live: after.peak_live_nodes,
        // Real kernel counters of the collected arm, summed across its
        // partition managers (each partition's operation sequence is
        // deterministic, so these are too).
        gc_runs: after.gc_runs,
        cache_hits: after.cache_hits,
        cache_misses: after.cache_misses,
    }
}

/// The full `BENCH_bdd.json` row set: churn microbenchmarks plus the
/// partitioned-reachability comparison (`quick` trims the round counts
/// and keeps only the sub-1500-AND circuits).
pub fn bdd_rows(quick: bool) -> Vec<BddBenchRow> {
    let rounds = if quick { 250 } else { 600 };
    let mut rows = vec![
        bdd_churn_row("churn_3cnf", rounds, 30, 3),
        bdd_churn_row("churn_5cnf", rounds / 2, 20, 5),
    ];
    let specs: Vec<_> = if quick {
        symbi_circuits::industrial::SPECS.iter().filter(|s| s.and_nodes < 1500).collect()
    } else {
        symbi_circuits::industrial::SPECS.iter().collect()
    };
    for spec in specs {
        rows.push(bdd_reach_row(spec));
    }
    rows
}

/// Serializes [`BddBenchRow`]s as JSON (hand-written — no serde in the
/// workspace) in a stable schema for longitudinal comparison.
pub fn bdd_json(rows: &[BddBenchRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-bdd-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"ops\": {}, ",
                "\"before_seconds\": {:.6}, \"after_seconds\": {:.6}, ",
                "\"before_ops_per_sec\": {:.1}, \"after_ops_per_sec\": {:.1}, ",
                "\"speedup\": {:.3}, ",
                "\"before_peak_live\": {}, \"after_peak_live\": {}, ",
                "\"gc_runs\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n"
            ),
            r.name,
            r.ops,
            r.before_seconds,
            r.after_seconds,
            r.before_ops_per_sec(),
            r.after_ops_per_sec(),
            r.speedup(),
            r.before_peak_live,
            r.after_peak_live,
            r.gc_runs,
            r.cache_hits,
            r.cache_misses,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`bdd_rows`] and writes [`bdd_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_bdd_json(path: &std::path::Path, quick: bool) -> std::io::Result<Vec<BddBenchRow>> {
    let rows = bdd_rows(quick);
    std::fs::write(path, bdd_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// Shared-memory kernel benchmark (BENCH_shared.json)
// ---------------------------------------------------------------------

/// Worker counts swept by [`shared_rows`]; `1` is the sequential
/// reference arm ([`KernelConfig::shared_workers`] below 2 keeps the
/// single-threaded kernel).
pub const SHARED_WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One `BENCH_shared.json` row: a `BENCH_bdd.json` workload replayed
/// with the shared-memory concurrent kernel at one worker count.
///
/// Every workload's arms must agree on `fingerprint` — a fold of
/// canonical per-step quantities (BDD sizes, fixpoint iterations,
/// state counts). [`shared_rows`] asserts this, so a published row set
/// doubles as a determinism witness.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedBenchRow {
    /// Workload name (matches the `BENCH_bdd.json` row).
    pub name: String,
    /// `KernelConfig::shared_workers` of this arm (1 = sequential).
    pub workers: usize,
    /// Top-level operations (churn) or fixpoint iterations (reach).
    pub ops: u64,
    /// Wall-clock seconds of this arm.
    pub seconds: f64,
    /// Wall-clock seconds of the same workload's 1-worker arm.
    pub baseline_seconds: f64,
    /// Canonical result fingerprint; identical across worker counts.
    pub fingerprint: u64,
}

impl SharedBenchRow {
    /// Operations per second of this arm.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.seconds
    }

    /// Speedup over the sequential reference arm.
    pub fn speedup(&self) -> f64 {
        self.baseline_seconds / self.seconds
    }
}

/// Churn arm that replays the script through the budgeted `try_*`
/// entry points — the only ones that can dispatch onto the shared
/// work-stealing kernel — and folds each round's product size into a
/// fingerprint. Sizes are canonical (same function ⇒ same ROBDD), so
/// equal fingerprints across worker counts witness identical results.
struct SharedChurn {
    m: Manager,
    gov: ResourceGovernor,
    fingerprint: u64,
}

impl ChurnKernel for SharedChurn {
    type H = NodeId;
    fn var(&mut self, v: u32) -> NodeId {
        Manager::var(&self.m, VarId(v))
    }
    fn not(&mut self, f: NodeId) -> NodeId {
        self.m.try_not(f, &self.gov).expect("unlimited governor")
    }
    fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.m.try_and(f, g, &self.gov).expect("unlimited governor")
    }
    fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.m.try_or(f, g, &self.gov).expect("unlimited governor")
    }
    fn probe(&mut self, product: NodeId) {
        self.fingerprint =
            self.fingerprint.rotate_left(7) ^ self.m.size(product) as u64;
    }
    fn round_done(&mut self) {
        self.m.maybe_gc(&[]);
    }
}

fn shared_churn_arm(
    name: &str,
    workers: usize,
    rounds: usize,
    clauses: usize,
    width: usize,
) -> SharedBenchRow {
    let n_vars = 20u32;
    let kernel = KernelConfig { shared_workers: workers, ..KernelConfig::default() };
    let mut m = Manager::with_kernel_config(kernel);
    m.new_vars(n_vars as usize);
    let mut k = SharedChurn { m, gov: ResourceGovernor::unlimited(), fingerprint: 0 };
    let start = Instant::now();
    let ops = churn_script(&mut k, rounds, clauses, width, n_vars);
    let seconds = start.elapsed().as_secs_f64();
    SharedBenchRow {
        name: name.to_string(),
        workers,
        ops,
        seconds,
        baseline_seconds: seconds,
        fingerprint: k.fingerprint,
    }
}

fn shared_reach_arm(
    spec: &symbi_circuits::industrial::IndustrialSpec,
    workers: usize,
) -> SharedBenchRow {
    let netlist = symbi_circuits::industrial::generate(spec);
    let options = ReachabilityOptions {
        kernel: KernelConfig { shared_workers: workers, ..KernelConfig::default() },
        ..ReachabilityOptions::default()
    };
    let start = Instant::now();
    let r = Reachability::analyze(&netlist, options);
    let seconds = start.elapsed().as_secs_f64();
    let stats = r.stats();
    // log2_states folds every partition's reached set through canonical
    // model counting; together with the iteration count it pins the
    // fixpoint trajectory, not just its endpoint.
    let fingerprint =
        r.log2_states().to_bits() ^ (stats.iterations as u64).rotate_left(32);
    SharedBenchRow {
        name: format!("reach_{}", netlist.name()),
        workers,
        ops: stats.iterations as u64,
        seconds,
        baseline_seconds: seconds,
        fingerprint,
    }
}

/// The full `BENCH_shared.json` row set: every `BENCH_bdd.json`
/// workload (churn microbenchmarks + industrial reachability) at each
/// worker count in [`SHARED_WORKER_SWEEP`], with each arm's canonical
/// fingerprint asserted identical to the sequential reference.
///
/// # Panics
///
/// Panics if any worker count produces a different result than the
/// sequential kernel — that would be a soundness bug, not a perf
/// regression, so it must not be serialized quietly.
pub fn shared_rows(quick: bool) -> Vec<SharedBenchRow> {
    let rounds = if quick { 250 } else { 600 };
    let mut rows: Vec<SharedBenchRow> = Vec::new();

    let mut sweep = |arm: &mut dyn FnMut(usize) -> SharedBenchRow| {
        let mut reference: Option<SharedBenchRow> = None;
        for &workers in &SHARED_WORKER_SWEEP {
            let mut row = arm(workers);
            match &reference {
                None => reference = Some(row.clone()),
                Some(seq) => {
                    assert_eq!(
                        row.fingerprint, seq.fingerprint,
                        "{} diverged at {} workers from the sequential kernel",
                        row.name, workers
                    );
                    row.baseline_seconds = seq.seconds;
                }
            }
            rows.push(row);
        }
    };

    sweep(&mut |w| shared_churn_arm("churn_3cnf", w, rounds, 30, 3));
    sweep(&mut |w| shared_churn_arm("churn_5cnf", w, rounds / 2, 20, 5));

    let specs: Vec<_> = if quick {
        symbi_circuits::industrial::SPECS.iter().filter(|s| s.and_nodes < 1500).collect()
    } else {
        symbi_circuits::industrial::SPECS.iter().collect()
    };
    for spec in specs {
        sweep(&mut |w| shared_reach_arm(spec, w));
    }
    rows
}

/// Serializes [`SharedBenchRow`]s as JSON (hand-written — no serde in
/// the workspace) in a stable schema for longitudinal comparison.
pub fn shared_json(rows: &[SharedBenchRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-shared-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"workers\": {}, \"ops\": {}, ",
                "\"seconds\": {:.6}, \"ops_per_sec\": {:.1}, ",
                "\"speedup_vs_sequential\": {:.3}, ",
                "\"fingerprint\": \"{:#018x}\"}}{}\n"
            ),
            r.name,
            r.workers,
            r.ops,
            r.seconds,
            r.ops_per_sec(),
            r.speedup(),
            r.fingerprint,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`shared_rows`] and writes [`shared_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_shared_json(
    path: &std::path::Path,
    quick: bool,
) -> std::io::Result<Vec<SharedBenchRow>> {
    let rows = shared_rows(quick);
    std::fs::write(path, shared_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// Image-engine benchmark (BENCH_reach.json)
// ---------------------------------------------------------------------

/// One `BENCH_reach.json` row: partitioned reachability on an
/// industrial circuit, legacy per-bit image schedule vs. the clustered
/// engine, with the reached sets asserted identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachBenchRow {
    /// Circuit name (`seq4` … `seq9`).
    pub name: String,
    /// Wall-clock seconds of the per-bit arm.
    pub per_bit_seconds: f64,
    /// Wall-clock seconds of the clustered arm.
    pub clustered_seconds: f64,
    /// Fixpoint iterations summed over partitions, per arm.
    pub per_bit_iterations: usize,
    pub clustered_iterations: usize,
    /// Peak live nodes of the hardest partition, per arm.
    pub per_bit_peak_live: usize,
    pub clustered_peak_live: usize,
    /// Transition-relation clusters summed over partitions, per arm
    /// (the per-bit arm's equals its conjunct count).
    pub per_bit_clusters: usize,
    pub clustered_clusters: usize,
    /// Largest single cluster of the clustered arm, in nodes.
    pub clustered_max_cluster_nodes: usize,
    /// Partitions that bailed to ⊤ in the clustered arm (identical in
    /// the per-bit arm — asserted, since the reached sets must match).
    pub bailed_out: usize,
}

impl ReachBenchRow {
    /// Wall-clock speedup of the clustered engine over per-bit.
    pub fn speedup(&self) -> f64 {
        self.per_bit_seconds / self.clustered_seconds.max(1e-12)
    }

    /// Peak-live-node ratio (per-bit / clustered; >1 means the
    /// clustered engine kept smaller intermediates).
    pub fn peak_ratio(&self) -> f64 {
        self.per_bit_peak_live as f64 / (self.clustered_peak_live as f64).max(1.0)
    }
}

/// Runs both image schedules on one industrial circuit and asserts they
/// reach exactly the same sets (via [`Reachability::same_reached_sets`],
/// which compares the per-partition functions in a common manager).
/// Both arms share the partition tree and a generous node budget, so
/// the comparison is schedule-against-schedule on identical fixpoints.
pub fn reach_row(spec: &symbi_circuits::industrial::IndustrialSpec) -> ReachBenchRow {
    let netlist = symbi_circuits::industrial::generate(spec);
    let partition = symbi_reach::PartitionOptions { max_latches: 24 };
    let per_bit_opts = ReachabilityOptions {
        partition,
        node_limit: 4_000_000,
        cluster_limit: 0,
        ..Default::default()
    };
    let clustered_opts =
        ReachabilityOptions { partition, node_limit: 4_000_000, ..Default::default() };
    let start = Instant::now();
    let per_bit = Reachability::analyze(&netlist, per_bit_opts);
    let per_bit_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let clustered = Reachability::analyze(&netlist, clustered_opts);
    let clustered_seconds = start.elapsed().as_secs_f64();
    assert!(
        clustered.same_reached_sets(&per_bit),
        "{}: clustered and per-bit schedules reached different sets",
        netlist.name()
    );
    let pb = per_bit.stats();
    let cl = clustered.stats();
    assert_eq!(pb.bailed_out, cl.bailed_out, "same_reached_sets implies equal bail sets");
    ReachBenchRow {
        name: netlist.name().to_string(),
        per_bit_seconds,
        clustered_seconds,
        per_bit_iterations: pb.iterations,
        clustered_iterations: cl.iterations,
        per_bit_peak_live: pb.peak_live_nodes,
        clustered_peak_live: cl.peak_live_nodes,
        per_bit_clusters: pb.clusters,
        clustered_clusters: cl.clusters,
        clustered_max_cluster_nodes: cl.max_cluster_nodes,
        bailed_out: cl.bailed_out,
    }
}

/// The full `BENCH_reach.json` row set over the seq4–seq9 circuits
/// (`quick` keeps only the sub-1500-AND ones, matching [`bdd_rows`]).
pub fn reach_rows(quick: bool) -> Vec<ReachBenchRow> {
    let specs: Vec<_> = if quick {
        symbi_circuits::industrial::SPECS.iter().filter(|s| s.and_nodes < 1500).collect()
    } else {
        symbi_circuits::industrial::SPECS.iter().collect()
    };
    specs.into_iter().map(reach_row).collect()
}

/// Serializes [`ReachBenchRow`]s as JSON (hand-written — no serde in
/// the workspace) in a stable schema for longitudinal comparison.
pub fn reach_json(rows: &[ReachBenchRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-reach-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", ",
                "\"per_bit_seconds\": {:.6}, \"clustered_seconds\": {:.6}, ",
                "\"speedup\": {:.3}, ",
                "\"per_bit_iterations\": {}, \"clustered_iterations\": {}, ",
                "\"per_bit_peak_live\": {}, \"clustered_peak_live\": {}, ",
                "\"peak_ratio\": {:.3}, ",
                "\"per_bit_clusters\": {}, \"clustered_clusters\": {}, ",
                "\"clustered_max_cluster_nodes\": {}, \"bailed_out\": {}}}{}\n"
            ),
            r.name,
            r.per_bit_seconds,
            r.clustered_seconds,
            r.speedup(),
            r.per_bit_iterations,
            r.clustered_iterations,
            r.per_bit_peak_live,
            r.clustered_peak_live,
            r.peak_ratio(),
            r.per_bit_clusters,
            r.clustered_clusters,
            r.clustered_max_cluster_nodes,
            r.bailed_out,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`reach_rows`] and writes [`reach_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_reach_json(
    path: &std::path::Path,
    quick: bool,
) -> std::io::Result<Vec<ReachBenchRow>> {
    let rows = reach_rows(quick);
    std::fs::write(path, reach_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// Portfolio rescue-rung benchmark (BENCH_portfolio.json)
// ---------------------------------------------------------------------

/// `blocks` disjoint two-block cones `(a·b) + (c·d)` over fresh inputs —
/// the canonical rescue-rung family. Each cone function is trivially
/// OR-decomposable at the midpoint of its sorted support, but the
/// *symbolic* partition search pays for a 3n-variable choices manager,
/// so a band of per-candidate step budgets exists where `Choices` trips
/// while a raced midpoint check (SAT, or the BDD-vs-SAT portfolio)
/// still completes and saves the partition the pure-BDD ladder abandons
/// to greedy growth.
pub fn two_block_cones(blocks: usize) -> Netlist {
    use symbi_netlist::GateKind;
    let mut n = Netlist::new("two_block");
    for i in 0..blocks {
        let a = n.add_input(format!("a{i}"));
        let b = n.add_input(format!("b{i}"));
        let c = n.add_input(format!("c{i}"));
        let d = n.add_input(format!("d{i}"));
        let ab = n.add_gate(format!("ab{i}"), GateKind::And, vec![a, b]);
        let cd = n.add_gate(format!("cd{i}"), GateKind::And, vec![c, d]);
        let o = n.add_gate(format!("o{i}"), GateKind::Or, vec![ab, cd]);
        n.add_output(format!("f{i}"), o);
    }
    n
}

/// Flow options for the rescue-family sweep: no state analysis (the
/// cones are combinational), no XOR rung (its extra budget fork halves
/// what the downstream structural steps see and closes the rescue
/// window on this family), and the given backend/budget.
fn portfolio_flow_options(
    backend: recursive::DecBackend,
    candidate_steps: u64,
) -> SynthesisOptions {
    let mut options = SynthesisOptions { reach: None, ..Default::default() };
    options.decompose.use_xor = false;
    options.decompose.backend = backend;
    options.budget.candidate_steps = candidate_steps;
    options
}

/// One backend's aggregate over the rescue-family budget sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioRow {
    /// Circuit family name.
    pub name: String,
    /// Decomposability backend the ladder's rescue rung used.
    pub backend: String,
    /// Per-candidate step budgets swept.
    pub budgets_swept: usize,
    /// Budget-tripped partition searches the rescue rung saved, summed
    /// over the sweep. The acceptance signal: `> 0` for `sat` and
    /// `portfolio`, always `0` for the pure-BDD ladder.
    pub rescued: usize,
    /// Smallest budget at which the rung fired (`0` = never).
    pub first_rescue_budget: u64,
    /// Largest budget at which the rung fired (`0` = never).
    pub last_rescue_budget: u64,
    /// Degradation-ladder steps (greedy / Shannon) over the sweep.
    pub fallbacks: usize,
    /// Candidates that kept their original cones over the sweep.
    pub skipped: usize,
    /// Portfolio races run (zero unless `backend = "portfolio"`).
    pub races: u64,
    /// Races the budgeted BDD arm decided.
    pub bdd_wins: u64,
    /// Races the SAT arm decided.
    pub sat_wins: u64,
    /// Losing arms observed to die of cancellation.
    pub cancels: u64,
    /// Smallest and/inv netlist achieved anywhere in the sweep.
    pub best_ands: usize,
    /// Whether every budget's run was reproducible: a second run at the
    /// identical configuration emitted a byte-identical netlist with the
    /// same rescue count — the race-winner-independence oracle.
    pub deterministic: bool,
    /// Wall-clock seconds for this backend's whole sweep.
    pub seconds: f64,
}

/// Sweeps per-candidate step budgets over [`two_block_cones`] for each
/// decomposability backend, recording where the rescue rung fires and
/// double-running every configuration to audit determinism.
pub fn portfolio_rows(quick: bool) -> Vec<PortfolioRow> {
    let netlist = two_block_cones(if quick { 2 } else { 4 });
    let mut budgets: Vec<u64> = Vec::new();
    let mut b = 64u64;
    while b <= 1 << 17 {
        budgets.push(b);
        b = (b * 5 / 4).max(b + 1);
    }
    let backends = [
        recursive::DecBackend::Bdd,
        recursive::DecBackend::Sat,
        recursive::DecBackend::Portfolio,
    ];
    let mut rows = Vec::new();
    for backend in backends {
        let start = Instant::now();
        let mut row = PortfolioRow {
            name: netlist.name().to_string(),
            backend: backend.to_string(),
            budgets_swept: budgets.len(),
            rescued: 0,
            first_rescue_budget: 0,
            last_rescue_budget: 0,
            fallbacks: 0,
            skipped: 0,
            races: 0,
            bdd_wins: 0,
            sat_wins: 0,
            cancels: 0,
            best_ands: usize::MAX,
            deterministic: true,
            seconds: 0.0,
        };
        for &budget in &budgets {
            let options = portfolio_flow_options(backend, budget);
            let (net_a, rep_a) = optimize(&netlist, &options);
            let (net_b, rep_b) = optimize(&netlist, &options);
            row.deterministic &= symbi_netlist::bench::write(&net_a)
                == symbi_netlist::bench::write(&net_b)
                && rep_a.steps.rescued_checks == rep_b.steps.rescued_checks;
            if rep_a.steps.rescued_checks > 0 {
                if row.first_rescue_budget == 0 {
                    row.first_rescue_budget = budget;
                }
                row.last_rescue_budget = budget;
            }
            row.rescued += rep_a.steps.rescued_checks;
            row.fallbacks += rep_a.fallbacks_taken;
            row.skipped += rep_a.candidates_skipped;
            let p = rep_a.steps.portfolio;
            row.races += p.races;
            row.bdd_wins += p.bdd_wins;
            row.sat_wins += p.sat_wins;
            row.cancels += p.cancels;
            row.best_ands = row.best_ands.min(symbi_netlist::stats::stats(&net_a).aig_ands);
        }
        row.seconds = start.elapsed().as_secs_f64();
        rows.push(row);
    }
    rows
}

/// Serializes [`PortfolioRow`]s as JSON (hand-written — no serde in the
/// workspace) in a stable schema for longitudinal comparison.
pub fn portfolio_json(rows: &[PortfolioRow]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"symbi-portfolio-bench/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"backend\": \"{}\", \"budgets_swept\": {}, ",
                "\"rescued\": {}, \"first_rescue_budget\": {}, \"last_rescue_budget\": {}, ",
                "\"fallbacks\": {}, \"skipped\": {}, \"races\": {}, \"bdd_wins\": {}, ",
                "\"sat_wins\": {}, \"cancels\": {}, \"best_ands\": {}, ",
                "\"deterministic\": {}, \"seconds\": {:.6}}}{}\n"
            ),
            r.name,
            r.backend,
            r.budgets_swept,
            r.rescued,
            r.first_rescue_budget,
            r.last_rescue_budget,
            r.fallbacks,
            r.skipped,
            r.races,
            r.bdd_wins,
            r.sat_wins,
            r.cancels,
            r.best_ands,
            r.deterministic,
            r.seconds,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs [`portfolio_rows`] and writes [`portfolio_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_portfolio_json(
    path: &std::path::Path,
    quick: bool,
) -> std::io::Result<Vec<PortfolioRow>> {
    let rows = portfolio_rows(quick);
    std::fs::write(path, portfolio_json(&rows))?;
    Ok(rows)
}

// ---------------------------------------------------------------------
// Ablation helpers
// ---------------------------------------------------------------------

/// Implicit-vs-greedy comparison on one function (A1 ablation): returns
/// `(implicit_max_k, implicit_secs, greedy_max_k, greedy_secs)`.
pub fn ablation_greedy_vs_implicit(
    m: &mut Manager,
    f: NodeId,
    kind: DecKind,
) -> (usize, f64, Option<usize>, f64) {
    let support = m.support(f);
    let interval = Interval::exact(f);
    let start = Instant::now();
    let mut ch = match kind {
        DecKind::Or => or_dec::Choices::compute(m, &interval, &support),
        DecKind::And => and_dec::Choices::compute(m, &interval, &support),
        DecKind::Xor => xor_dec::Choices::compute(m, &interval, &support),
    };
    let implicit = ch.best_balanced().map(|(a, b)| a.max(b)).unwrap_or(support.len());
    let implicit_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let greedy = greedy::grow(m, kind, &interval, &support)
        .map(|o| {
            let (a, b) = o.sizes(support.len());
            a.max(b)
        });
    let greedy_secs = start.elapsed().as_secs_f64();
    (implicit, implicit_secs, greedy, greedy_secs)
}

/// Dominance-purge ablation (A2): feasible pair counts with and without
/// the purge, plus timings.
pub fn ablation_dominance(m: &mut Manager, f: NodeId) -> (usize, f64, usize, f64) {
    let support = m.support(f);
    let interval = Interval::exact(f);
    let mut ch = or_dec::Choices::compute(m, &interval, &support);
    let start = Instant::now();
    let raw = ch.feasible_pairs(false).len();
    let raw_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let purged = ch.feasible_pairs(true).len();
    let purged_secs = start.elapsed().as_secs_f64();
    (raw, raw_secs, purged, purged_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_circuits::{industrial, iscas_like};

    #[test]
    fn mux_rows_match_paper_small() {
        let r2 = mux_row(2);
        assert_eq!(r2.best, (4, 4));
        assert!((r2.choices - 6.0).abs() < 1e-6);
        let r3 = mux_row(3);
        assert_eq!(r3.best, (7, 7));
        assert!((r3.choices - 70.0).abs() < 1e-3);
    }

    #[test]
    fn adder_row_s2() {
        let r = adder_row(2, Duration::from_secs(30));
        assert_eq!(r.inputs, 7);
        assert_eq!(r.best, (2, 5));
        assert!(r.greedy_seconds.is_some(), "s2 greedy finishes quickly");
    }

    #[test]
    fn table31_states_help() {
        let n = iscas_like::by_name("s344").expect("known circuit");
        let opts = Table31Options::default();
        let no_states = table31_row(&n, false, &opts);
        let with_states = table31_row(&n, true, &opts);
        assert!(with_states.log2_states.is_some());
        assert!(no_states.log2_states.is_none());
        assert!(
            with_states.avg_reduct <= no_states.avg_reduct + 1e-9,
            "don't cares cannot hurt: {} vs {}",
            with_states.avg_reduct,
            no_states.avg_reduct
        );
        assert!(with_states.ndec >= no_states.ndec);
    }

    #[test]
    fn figure31_matches_paper() {
        let fig = figure31();
        assert_eq!(fig.exact_best, None, "exact majority has no non-trivial OR split");
        assert_eq!(fig.dc_best, Some((2, 2)));
        assert!(fig.gates <= 3);
    }

    #[test]
    fn figure32_shares_logic() {
        let fig = figure32();
        assert!(fig.sharing_hits > 0, "the AND(i0,i1) must be reused: {fig:?}");
    }

    #[test]
    fn portfolio_sweep_rescues_what_the_bdd_ladder_abandons() {
        let rows = portfolio_rows(true);
        let by = |b: &str| rows.iter().find(|r| r.backend == b).expect("backend row");
        let (bdd, sat, portfolio) = (by("bdd"), by("sat"), by("portfolio"));
        // The pure-BDD ladder has no rescue rung: on the window budgets it
        // degrades to greedy/Shannon instead.
        assert_eq!(bdd.rescued, 0);
        assert!(bdd.fallbacks > 0, "the window budgets must trip the symbolic search");
        // Both rescue backends save partitions the BDD ladder abandons.
        assert!(sat.rescued > 0, "SAT rescue never fired: {sat:?}");
        assert!(portfolio.rescued > 0, "portfolio rescue never fired: {portfolio:?}");
        assert!(portfolio.races > 0 && portfolio.bdd_wins + portfolio.sat_wins == portfolio.races);
        // Race-winner independence: every configuration re-ran identically.
        for r in &rows {
            assert!(r.deterministic, "{} sweep was not reproducible", r.backend);
        }
    }

    #[test]
    fn table32_small_block_improves_or_holds() {
        // Use the smallest industrial block to keep test time sane.
        let n = industrial::by_name("seq6").expect("known block");
        let row = table32_row(&n, &SynthesisOptions::default());
        assert!(row.pre_area > 0.0);
        assert!(row.opt_area > 0.0);
        assert!(row.area_ratio() < 1.10, "area should not regress much: {}", row.area_ratio());
    }
}
