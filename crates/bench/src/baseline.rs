//! A frozen re-implementation of the pre-overhaul BDD kernel, kept as
//! the "before" arm of the `BENCH_bdd.json` comparison.
//!
//! This is the design the production [`symbi_bdd::Manager`] had before
//! its hot-path rework: a `FxHashMap<(var, lo, hi), id>` unique table,
//! an unbounded `FxHashMap` computed table, and no way to free a node —
//! every intermediate of every operation stays allocated until the
//! whole manager is dropped. Only the three binary operations the
//! microbenchmark workload needs are provided; the recursion structure
//! (top-variable expansion + hash-consing `mk`) matches the production
//! kernel exactly, so timing differences isolate the table and cache
//! data structures rather than the algorithm.

use symbi_bdd::hash::FxHashMap;

const FALSE: u32 = 0;
const TRUE: u32 = 1;
const TERMINAL: u32 = u32::MAX;

/// Binary operation selector for [`BaselineManager::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

/// The pre-overhaul kernel: hash-map unique table, unbounded hash-map
/// computed table, no reclamation.
#[derive(Debug, Default)]
pub struct BaselineManager {
    /// `(var, lo, hi)` per node; terminals occupy slots 0 and 1 with
    /// `var == TERMINAL`.
    nodes: Vec<(u32, u32, u32)>,
    unique: FxHashMap<(u32, u32, u32), u32>,
    cache: FxHashMap<(BinOp, u32, u32), u32>,
    num_vars: u32,
}

impl BaselineManager {
    /// An empty manager with `n` variables in natural order.
    pub fn with_vars(n: u32) -> Self {
        let mut m = BaselineManager {
            nodes: vec![(TERMINAL, 0, 0), (TERMINAL, 1, 1)],
            ..Default::default()
        };
        for _ in 0..n {
            let v = m.num_vars;
            m.num_vars += 1;
            m.mk(v, FALSE, TRUE);
        }
        m
    }

    /// The constant false node.
    pub fn zero(&self) -> u32 {
        FALSE
    }

    /// The node for variable `v` (must be `< num_vars`).
    pub fn var(&mut self, v: u32) -> u32 {
        assert!(v < self.num_vars);
        self.mk(v, FALSE, TRUE)
    }

    /// Total allocated nodes — also the peak, since nothing is ever
    /// freed in this kernel.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            let id = self.nodes.len() as u32;
            self.nodes.push((var, lo, hi));
            id
        })
    }

    /// Negation (`f ⊕ 1`).
    pub fn not(&mut self, f: u32) -> u32 {
        self.apply(BinOp::Xor, f, TRUE)
    }

    /// The binary operation `op` over `f` and `g`.
    pub fn apply(&mut self, op: BinOp, f: u32, g: u32) -> u32 {
        // Terminal rules, with operand normalization for the
        // commutative ops so the cache matches the production kernel's
        // hit behaviour.
        match op {
            BinOp::And => {
                if f == FALSE || g == FALSE {
                    return FALSE;
                }
                if f == TRUE {
                    return g;
                }
                if g == TRUE || f == g {
                    return f;
                }
            }
            BinOp::Or => {
                if f == TRUE || g == TRUE {
                    return TRUE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE || f == g {
                    return f;
                }
            }
            BinOp::Xor => {
                if f == g {
                    return FALSE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE {
                    return f;
                }
            }
        }
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.cache.get(&(op, f, g)) {
            return r;
        }
        let (fv, flo, fhi) = self.nodes[f as usize];
        let (gv, glo, ghi) = self.nodes[g as usize];
        // Natural variable order: smaller index is nearer the root;
        // TERMINAL (u32::MAX) sorts below everything.
        let top = fv.min(gv);
        let (f0, f1) = if fv == top { (flo, fhi) } else { (f, f) };
        let (g0, g1) = if gv == top { (glo, ghi) } else { (g, g) };
        let lo = self.apply(op, f0, g0);
        let hi = self.apply(op, f1, g1);
        let r = self.mk(top, lo, hi);
        self.cache.insert((op, f, g), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(m: &BaselineManager, f: u32, assign: &[bool]) -> bool {
        let mut cur = f;
        loop {
            match cur {
                FALSE => return false,
                TRUE => return true,
                _ => {
                    let (v, lo, hi) = m.nodes[cur as usize];
                    cur = if assign[v as usize] { hi } else { lo };
                }
            }
        }
    }

    #[test]
    fn baseline_agrees_with_production_kernel() {
        use symbi_bdd::{Manager, VarId};
        let n = 6u32;
        let mut b = BaselineManager::with_vars(n);
        let mut m = Manager::with_vars(n as usize);
        // A deterministic mixed op script, evaluated on every assignment.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut bf = b.zero();
        let mut mf = symbi_bdd::NodeId::FALSE;
        for _ in 0..60 {
            let v = (rng() % n as u64) as u32;
            let w = (rng() % n as u64) as u32;
            let (bx, mx) = (b.var(v), m.var(VarId(v)));
            let (by, my) = (b.var(w), m.var(VarId(w)));
            let (bl, ml) = match rng() % 3 {
                0 => (b.apply(BinOp::And, bx, by), m.and(mx, my)),
                1 => (b.apply(BinOp::Or, bx, by), m.or(mx, my)),
                _ => (b.apply(BinOp::Xor, bx, by), m.xor(mx, my)),
            };
            let (bl, ml) = if rng() % 2 == 0 { (b.not(bl), m.not(ml)) } else { (bl, ml) };
            let (nbf, nmf) = match rng() % 3 {
                0 => (b.apply(BinOp::And, bf, bl), m.and(mf, ml)),
                1 => (b.apply(BinOp::Or, bf, bl), m.or(mf, ml)),
                _ => (b.apply(BinOp::Xor, bf, bl), m.xor(mf, ml)),
            };
            bf = nbf;
            mf = nmf;
        }
        for bits in 0u32..1 << n {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&b, bf, &assign), m.eval(mf, &assign), "assignment {assign:?}");
        }
    }
}
