//! Deterministic chaos harness: a soundness audit of the degradation
//! ladder under injected faults.
//!
//! The sweep crosses every registered fault site
//! ([`FaultSite::ALL`]) with the first few occurrences of that site,
//! derives the fault kind from a single seed
//! ([`FaultPlan::derive_kind`]), and runs the full synthesis flow on a
//! fixed suite of small sequential circuits with exactly that one fault
//! armed. Every cell is then audited against the ladder's soundness
//! contract:
//!
//! - **No escape**: no panic unwinds past the flow's isolation
//!   boundaries and no cell hangs (each runs on a watchdog thread with
//!   a hard timeout).
//! - **Degradation is equivalence-preserving**: whatever the fault
//!   degraded, the output netlist is SAT-checked (under a *clean*
//!   governor) to be bounded-sequentially equivalent to the input.
//! - **Reachability is ⊤-monotone**: a degraded analysis may only
//!   over-approximate — the fault-free care set must be contained in
//!   the faulted one.
//! - **Cancellation drains bounded**: `cancel`-kind cells must return
//!   within the watchdog window like every other cell.
//!
//! `panic` draws are kept only for sites that sit *inside* a declared
//! isolation boundary (`par.task`, `synth.decompose`, `reach.fixpoint`);
//! everywhere else the soundness contract is the `Err` path, not
//! unwinding, so the draw is remapped to a budget trip. The whole sweep
//! is a pure function of [`ChaosOptions`], so a failing cell replays
//! exactly from its `(seed, site, occurrence)` coordinates.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use symbi_bdd::{FaultKind, FaultPlan, FaultSite, Manager, ResourceGovernor, VarId};
use symbi_circuits::blocks;
use symbi_netlist::sec::{bounded_check_sat, SecResult};
use symbi_netlist::{GateKind, Netlist, SignalId};
use symbi_reach::{Reachability, ReachabilityOptions};
use symbi_synth::flow::{optimize_governed, SynthesisOptions};

/// Sweep configuration. The default is the CI `chaos-smoke` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOptions {
    /// Seed fixing every cell's fault kind (and recorded in the report
    /// for replay).
    pub seed: u64,
    /// Occurrences swept per site (`1..=max_occurrence`).
    pub max_occurrence: u64,
    /// Hard per-cell watchdog; a cell that does not return within it is
    /// recorded as a hang violation.
    pub cell_timeout: Duration,
    /// Restricts the circuit suite to its first member and halves the
    /// occurrence sweep — the CI smoke shape.
    pub quick: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0xC4A05,
            max_occurrence: 3,
            cell_timeout: Duration::from_secs(60),
            quick: false,
        }
    }
}

/// One `(circuit, site, occurrence)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Circuit name.
    pub circuit: String,
    /// Dotted site name (`FaultSite::as_str`).
    pub site: &'static str,
    /// 1-based crossing the rule armed.
    pub occurrence: u64,
    /// Injected kind after the isolation-boundary remap.
    pub kind: &'static str,
    /// Faults actually fired by the synthesis run (0 when the site was
    /// never crossed often enough — not a violation).
    pub fired: u64,
    /// Worker panics absorbed across synthesis and the reach audit.
    pub worker_panics: u64,
    /// Candidate cones degraded to their original implementation.
    pub candidates_skipped: usize,
    /// Reach partitions that bailed to ⊤ in the faulted audit run.
    pub bailed_out: usize,
    /// Halved-budget retries charged by the faulted reach audit run.
    pub retries: u64,
    /// Wall-clock seconds for the whole cell (flow + audits).
    pub seconds: f64,
    /// Soundness-contract violations; an empty list means the cell
    /// passed the audit.
    pub violations: Vec<String>,
}

/// Outcome of one full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Seed the sweep derived every kind from.
    pub seed: u64,
    /// All swept cells in deterministic order.
    pub cells: Vec<ChaosCell>,
    /// Wall-clock seconds for the sweep.
    pub seconds: f64,
}

impl ChaosReport {
    /// Cells whose armed fault actually fired.
    pub fn fired(&self) -> usize {
        self.cells.iter().filter(|c| c.fired > 0).count()
    }

    /// Total soundness violations across cells.
    pub fn violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations.len()).sum()
    }

    /// Cells that tripped the watchdog.
    pub fn hangs(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.violations.iter().any(|v| v.contains("watchdog")))
            .count()
    }

    /// Cells where a panic escaped every isolation boundary.
    pub fn escaped_panics(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.violations.iter().any(|v| v.contains("escaped")))
            .count()
    }
}

/// 6-bit enabled binary counter with a parity/mix output cloud — the
/// suite's combinationally rich member.
fn chaos_counter() -> Netlist {
    let mut n = Netlist::new("chaos_ctr6");
    let en = n.add_input("en");
    let q = blocks::binary_counter(&mut n, "c", 6, en);
    let x01 = n.add_gate("x01", GateKind::Xor, vec![q[0], q[1]]);
    let x23 = n.add_gate("x23", GateKind::Xor, vec![q[2], q[3]]);
    let x45 = n.add_gate("x45", GateKind::Xor, vec![q[4], q[5]]);
    let p = n.add_gate("par", GateKind::Xor, vec![x01, x23]);
    let p2 = n.add_gate("par2", GateKind::Xor, vec![p, x45]);
    let a = n.add_gate("a03", GateKind::And, vec![q[0], q[3]]);
    let o = n.add_gate("o_mix", GateKind::Or, vec![a, x23]);
    n.add_output("parity", p2);
    n.add_output("mix", o);
    n
}

/// Johnson counter + one-hot ring sharing an enable — the suite's
/// multi-partition member (sparse reachable sets in both halves).
fn chaos_rings() -> Netlist {
    let mut n = Netlist::new("chaos_rings");
    let en = n.add_input("en");
    let j = blocks::johnson_counter(&mut n, "j", 4, en);
    let r = blocks::one_hot_ring(&mut n, "r", 4, en);
    let m0 = n.add_gate("m0", GateKind::And, vec![j[0], r[0]]);
    let m1 = n.add_gate("m1", GateKind::Xor, vec![j[1], r[1]]);
    let m2 = n.add_gate("m2", GateKind::Or, vec![m0, m1]);
    let m3 = n.add_gate("m3", GateKind::Xor, vec![j[3], r[3]]);
    n.add_output("m2", m2);
    n.add_output("m3", m3);
    n
}

/// The fixed circuit suite (first member only in quick mode).
fn suite(quick: bool) -> Vec<Netlist> {
    if quick {
        vec![chaos_counter()]
    } else {
        vec![chaos_counter(), chaos_rings()]
    }
}

/// Sites whose soundness contract includes *unwinding* — a panic there
/// must be absorbed at a declared isolation boundary. Every other
/// site's contract is the `Err` path, so `panic` draws are remapped to
/// budget trips rather than asserting a guarantee the ladder never made.
///
/// `portfolio.race` qualifies: the site fires on the candidate's own
/// thread at race entry (before any arm spawns), inside the flow's
/// per-candidate `catch_unwind` boundary.
///
/// `netlist.sweep` qualifies: the whole SAT-sweeping pre-pass runs
/// inside the flow's sweep-attempt `catch_unwind` boundary, and a crash
/// there degrades to the unswept netlist.
fn panic_is_isolated(site: FaultSite) -> bool {
    matches!(
        site,
        FaultSite::ParTask
            | FaultSite::SynthDecompose
            | FaultSite::ReachFixpoint
            | FaultSite::PortfolioRace
            | FaultSite::NetlistSweep
    )
}

/// Per-candidate step budget for `portfolio.race` cells. The site only
/// exists on the ladder's rescue rung — a budget-tripped symbolic
/// partition search under a non-BDD backend — so those cells run the
/// portfolio backend with a candidate budget tight enough to trip the
/// symbolic search on the suite's cones (probed: the site is crossed
/// ~20 times per flow at this budget, and not at all above ~16k).
const PORTFOLIO_CELL_BUDGET: u64 = 1000;

/// SEC frames checked by the equivalence audit.
const AUDIT_FRAMES: usize = 4;

/// Everything a cell computes on its watchdog thread.
struct CellBody {
    fired: u64,
    worker_panics: u64,
    candidates_skipped: usize,
    bailed_out: usize,
    retries: u64,
    violations: Vec<String>,
}

fn run_cell_body(input: &Netlist, site: FaultSite, occurrence: u64, kind: FaultKind, seed: u64, jobs: usize) -> CellBody {
    let plan = Arc::new(FaultPlan::new(seed).with_rule(site, occurrence, kind));
    let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
    // `validate_frames` keeps a governed SAT solver in the loop so the
    // `sat.*` sites are actually crossed; the audit below re-checks
    // equivalence under a clean governor regardless of its verdict.
    let mut options = SynthesisOptions { jobs, validate_frames: Some(2), ..Default::default() };
    if site == FaultSite::PortfolioRace {
        options.decompose.backend = symbi_core::recursive::DecBackend::Portfolio;
        options.budget.candidate_steps = PORTFOLIO_CELL_BUDGET;
    }
    if site == FaultSite::BddSharedApply {
        // The site only exists on the shared-memory dispatch path, so
        // those cells run every manager with the concurrent kernel on.
        options.kernel.shared_workers = 2;
        if let Some(reach) = options.reach.as_mut() {
            reach.kernel.shared_workers = 2;
        }
    }
    if site == FaultSite::NetlistSweep {
        // The site only exists inside the SAT-sweeping pre-pass, so
        // those cells run the flow with sweeping on. A fired fault must
        // degrade to the unswept netlist — which the SEC audit below
        // then checks against the input like every other cell.
        options.sweep = true;
    }
    let (output, report) = optimize_governed(input, &options, &gov);
    let mut violations = Vec::new();
    if output.validate().is_err() {
        violations.push("degraded output netlist fails validation".to_string());
    }
    // Equivalence-preserving degradation, judged by a clean checker.
    let (verdict, _) = bounded_check_sat(input, &output, AUDIT_FRAMES);
    if !matches!(verdict, SecResult::Equivalent) {
        violations.push(format!(
            "degraded output diverges from input within {AUDIT_FRAMES} frames"
        ));
    }
    // ⊤-monotone reachability: rerun the analysis with a *fresh* plan
    // (zeroed crossing counters) carrying the same rule, and require the
    // fault-free care set to be contained in the faulted one.
    let audit_plan = Arc::new(FaultPlan::new(seed).with_rule(site, occurrence, kind));
    let audit_gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&audit_plan));
    let mut reach_opts = ReachabilityOptions::default();
    if site == FaultSite::BddSharedApply {
        reach_opts.kernel.shared_workers = 2;
    }
    let mut clean_reach = Reachability::analyze(input, reach_opts);
    let mut faulted_reach = Reachability::analyze_governed(input, reach_opts, &audit_gov);
    let latches: Vec<SignalId> = input.latches().to_vec();
    let mut dst = Manager::with_vars(latches.len());
    let var_of: HashMap<SignalId, VarId> =
        latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
    let clean_care = clean_reach.care_set(&latches, &mut dst, &var_of);
    let faulted_care = faulted_reach.care_set(&latches, &mut dst, &var_of);
    let outside = dst.not(faulted_care);
    let escaped = dst.and(clean_care, outside);
    if !escaped.is_false() {
        violations.push(
            "faulted reachability lost states the clean analysis reaches (not ⊤-monotone)"
                .to_string(),
        );
    }
    let faulted_stats = faulted_reach.stats();
    CellBody {
        fired: plan.faults_fired() + audit_plan.faults_fired(),
        worker_panics: report.worker_panics as u64 + faulted_stats.worker_panics,
        candidates_skipped: report.candidates_skipped,
        bailed_out: faulted_stats.bailed_out,
        retries: faulted_stats.retries,
        violations,
    }
}

/// Runs one cell behind a watchdog thread; a panic that escapes every
/// isolation boundary or a hang is converted into a violation instead of
/// taking the sweep down.
fn run_cell(input: &Netlist, circuit: &str, site: FaultSite, occurrence: u64, kind: FaultKind, options: &ChaosOptions) -> ChaosCell {
    let jobs = if site == FaultSite::ParTask { 2 } else { 1 };
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let thread_input = input.clone();
    let seed = options.seed;
    let handle = std::thread::Builder::new()
        .name(format!("chaos-{}:{}:{}", circuit, site.as_str(), occurrence))
        .spawn(move || {
            let body = run_cell_body(&thread_input, site, occurrence, kind, seed, jobs);
            let _ = tx.send(body);
        })
        .expect("spawning a chaos cell thread");
    let body = match rx.recv_timeout(options.cell_timeout) {
        Ok(body) => {
            let _ = handle.join();
            body
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The cell thread died without sending: a panic escaped
            // every isolation boundary.
            let _ = handle.join();
            CellBody {
                fired: 0,
                worker_panics: 0,
                candidates_skipped: 0,
                bailed_out: 0,
                retries: 0,
                violations: vec!["a panic escaped every isolation boundary".to_string()],
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Leak the thread (it may be wedged); the violation is the
            // record, and the process exits after the sweep.
            CellBody {
                fired: 0,
                worker_panics: 0,
                candidates_skipped: 0,
                bailed_out: 0,
                retries: 0,
                violations: vec![format!(
                    "watchdog timeout after {:?} (cell did not drain)",
                    options.cell_timeout
                )],
            }
        }
    };
    ChaosCell {
        circuit: circuit.to_string(),
        site: site.as_str(),
        occurrence,
        kind: kind.as_str(),
        fired: body.fired,
        worker_panics: body.worker_panics,
        candidates_skipped: body.candidates_skipped,
        bailed_out: body.bailed_out,
        retries: body.retries,
        seconds: started.elapsed().as_secs_f64(),
        violations: body.violations,
    }
}

/// Installs (once) a panic hook that silences exactly the *injected*
/// panics — they carry the `"injected fault:"` marker and are caught at
/// an isolation boundary anyway — while chaining every real panic to
/// the previous hook so genuine bugs still print their backtrace.
fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.contains("injected fault:")) {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs the full sweep described by `options`.
pub fn chaos_report(options: &ChaosOptions) -> ChaosReport {
    install_quiet_hook();
    let started = Instant::now();
    let max_occ = if options.quick { options.max_occurrence.min(2) } else { options.max_occurrence };
    let mut cells = Vec::new();
    for netlist in suite(options.quick) {
        let circuit = netlist.name().to_string();
        for &site in FaultSite::ALL.iter() {
            for occurrence in 1..=max_occ {
                let drawn = FaultPlan::derive_kind(options.seed, site, occurrence);
                let kind = if drawn == FaultKind::Panic && !panic_is_isolated(site) {
                    FaultKind::Budget
                } else {
                    drawn
                };
                cells.push(run_cell(&netlist, &circuit, site, occurrence, kind, options));
            }
        }
    }
    ChaosReport { seed: options.seed, cells, seconds: started.elapsed().as_secs_f64() }
}

/// Serializes a [`ChaosReport`] as JSON (hand-written — no serde in the
/// workspace) in a stable schema for longitudinal comparison.
pub fn chaos_json(report: &ChaosReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-chaos-bench/v1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!("  \"seconds\": {:.3},\n", report.seconds));
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        let violations: Vec<String> =
            c.violations.iter().map(|v| format!("\"{}\"", v.replace('"', "'"))).collect();
        out.push_str(&format!(
            concat!(
                "    {{\"circuit\": \"{}\", \"site\": \"{}\", \"occurrence\": {}, ",
                "\"kind\": \"{}\", \"fired\": {}, \"worker_panics\": {}, ",
                "\"candidates_skipped\": {}, \"bailed_out\": {}, \"retries\": {}, ",
                "\"seconds\": {:.3}, \"violations\": [{}]}}{}\n"
            ),
            c.circuit,
            c.site,
            c.occurrence,
            c.kind,
            c.fired,
            c.worker_panics,
            c.candidates_skipped,
            c.bailed_out,
            c.retries,
            c.seconds,
            violations.join(", "),
            if i + 1 == report.cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        concat!(
            "  \"summary\": {{\"cells\": {}, \"fired\": {}, \"violations\": {}, ",
            "\"hangs\": {}, \"escaped_panics\": {}}}\n"
        ),
        report.cells.len(),
        report.fired(),
        report.violations(),
        report.hangs(),
        report.escaped_panics(),
    ));
    out.push_str("}\n");
    out
}

/// Runs [`chaos_report`] and writes [`chaos_json`] to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_chaos_json(
    path: &std::path::Path,
    options: &ChaosOptions,
) -> std::io::Result<ChaosReport> {
    let report = chaos_report(options);
    std::fs::write(path, chaos_json(&report))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_and_fires_faults() {
        let options = ChaosOptions {
            max_occurrence: 1,
            cell_timeout: Duration::from_secs(120),
            quick: true,
            ..Default::default()
        };
        let report = chaos_report(&options);
        assert_eq!(report.cells.len(), FaultSite::COUNT);
        assert_eq!(report.violations(), 0, "soundness audit must be clean: {:#?}", report.cells.iter().filter(|c| !c.violations.is_empty()).collect::<Vec<_>>());
        assert_eq!(report.hangs(), 0);
        assert_eq!(report.escaped_panics(), 0);
        assert!(report.fired() > 0, "the sweep must exercise at least some sites");
    }

    #[test]
    fn portfolio_race_cells_fire_every_kind_and_stay_sound() {
        // The race site under all four fault kinds, on the cell harness
        // with its full audit stack. `cancel` is the cancelled-loser
        // case: the raced arms die mid-check, and the candidate — whose
        // manager and governor the race borrowed — must still drain to
        // an equivalent netlist and leave the flow reusable for the
        // remaining candidates.
        let options = ChaosOptions::default();
        let input = chaos_counter();
        for kind in
            [FaultKind::Budget, FaultKind::Cancel, FaultKind::Panic, FaultKind::AllocPressure]
        {
            let cell =
                run_cell(&input, "chaos_ctr6", FaultSite::PortfolioRace, 1, kind, &options);
            assert!(cell.fired > 0, "{}: the race site was never crossed", kind.as_str());
            assert!(
                cell.violations.is_empty(),
                "{}: {:?}",
                kind.as_str(),
                cell.violations
            );
        }
    }

    /// The counter suite member plus a De Morgan twin of one of its
    /// gates, so the sweeping pre-pass has a real pairwise refinement
    /// query (site occurrence 2) on top of the entry crossing
    /// (occurrence 1).
    fn chaos_counter_with_twins() -> Netlist {
        let mut n = Netlist::new("chaos_ctr6_twin");
        let en = n.add_input("en");
        let q = blocks::binary_counter(&mut n, "c", 6, en);
        let a = n.add_gate("a03", GateKind::And, vec![q[0], q[3]]);
        let n0 = n.add_gate("n0", GateKind::Not, vec![q[0]]);
        let n3 = n.add_gate("n3", GateKind::Not, vec![q[3]]);
        let twin = n.add_gate("a03_twin", GateKind::Nor, vec![n0, n3]);
        n.add_output("a", a);
        n.add_output("b", twin);
        n
    }

    #[test]
    fn netlist_sweep_cells_fire_every_kind_and_stay_sound() {
        // The sweep site under all four fault kinds at both the
        // pass-entry crossing (occurrence 1) and the first pairwise SAT
        // query (occurrence 2). Whatever fires, the flow must hand back
        // a netlist the cell's audit can prove equivalent to the input:
        // a faulted sweep degrades, it never mis-merges.
        let options = ChaosOptions::default();
        let input = chaos_counter_with_twins();
        for kind in
            [FaultKind::Budget, FaultKind::Cancel, FaultKind::Panic, FaultKind::AllocPressure]
        {
            for occurrence in [1, 2] {
                let cell = run_cell(
                    &input,
                    "chaos_ctr6_twin",
                    FaultSite::NetlistSweep,
                    occurrence,
                    kind,
                    &options,
                );
                assert!(
                    cell.fired > 0,
                    "{} occ {occurrence}: the sweep site was never crossed",
                    kind.as_str()
                );
                assert!(
                    cell.violations.is_empty(),
                    "{} occ {occurrence}: {:?}",
                    kind.as_str(),
                    cell.violations
                );
            }
        }
    }

    #[test]
    fn faulted_sweep_cell_degrades_to_the_unswept_flow() {
        // Stronger than SEC: a budget fault at the sweep's entry
        // crossing leaves the rest of the flow byte-identical to never
        // having asked for sweeping at all.
        let input = chaos_counter_with_twins();
        let opts = SynthesisOptions { sweep: true, ..Default::default() };
        let (unswept, _) =
            optimize_governed(&input, &SynthesisOptions::default(), &ResourceGovernor::unlimited());
        let plan = Arc::new(FaultPlan::new(0xC4A05).with_rule(
            FaultSite::NetlistSweep,
            1,
            FaultKind::Budget,
        ));
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let (net, report) = optimize_governed(&input, &opts, &gov);
        assert!(plan.faults_fired() >= 1);
        assert!(report.sweep.degraded);
        assert_eq!(
            symbi_netlist::bench::write(&net),
            symbi_netlist::bench::write(&unswept)
        );
    }

    #[test]
    fn sat_encode_cells_fire_and_stay_sound() {
        let options = ChaosOptions::default();
        let input = chaos_counter();
        for kind in [FaultKind::Budget, FaultKind::Cancel] {
            let cell = run_cell(&input, "chaos_ctr6", FaultSite::SatEncode, 1, kind, &options);
            assert!(cell.fired > 0, "{}: the encode site was never crossed", kind.as_str());
            assert!(
                cell.violations.is_empty(),
                "{}: {:?}",
                kind.as_str(),
                cell.violations
            );
        }
    }

    #[test]
    fn chaos_json_has_schema_and_summary() {
        let report = ChaosReport {
            seed: 7,
            cells: vec![ChaosCell {
                circuit: "c".into(),
                site: "bdd.apply",
                occurrence: 1,
                kind: "budget",
                fired: 1,
                worker_panics: 0,
                candidates_skipped: 0,
                bailed_out: 0,
                retries: 0,
                seconds: 0.1,
                violations: vec![],
            }],
            seconds: 0.1,
        };
        let json = chaos_json(&report);
        assert!(json.contains("\"schema\": \"symbi-chaos-bench/v1\""));
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"violations\": 0"));
    }
}
