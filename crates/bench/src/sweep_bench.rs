//! SAT-sweeping benchmark (`repro sweep-bench`, `BENCH_sweep.json`).
//!
//! The sweeping pre-pass ([`symbi_netlist::sweep`]) earns its place in
//! the flow on *duplicate-heavy* circuits: netlists carrying
//! structurally different but functionally identical cones that
//! structural hashing cannot see through. This harness builds such a
//! suite — the two-block rescue family widened with De Morgan twin
//! cones, plus a seeded generated pool whose gates are twinned with
//! probability ½ — and runs the symbolic flow twice per circuit, sweep
//! off and sweep on, recording:
//!
//! - **Area**: and/inv counts of the unswept and swept results. The
//!   acceptance signal is `swept_ands < unswept_ands` on this suite —
//!   the pre-pass merges what downstream never could.
//! - **Wall-clock**: seconds of both arms. Every twin the sweep merges
//!   is a candidate cone the symbolic flow never has to decompose, so
//!   on duplicate-heavy inputs the pre-pass pays for itself.
//! - **Soundness**: the swept result is bounded-equivalence-checked
//!   directly against the unswept result.
//! - **Reproducibility**: the swept arm is double-run and must emit
//!   identical bytes and sweep counters; it is also re-run at
//!   `jobs = 4` and must match the `jobs = 1` bytes (the sweep runs
//!   before the parallel fan-out, so job count must not matter).
//!
//! A row failing soundness, reproducibility or jobs-invariance is a
//! *red row*; `repro sweep-bench` exits nonzero on any. Timing fields
//! are excluded from [`sweep_bench_fingerprint`], the byte string the
//! determinism tests compare across reruns.

use std::io;
use std::path::Path;
use std::time::Instant;
use symbi_netlist::{bench, sec, stats, GateKind, Netlist, SignalId};
use symbi_synth::flow::{optimize, SynthesisOptions};

use crate::two_block_cones;

/// Bounded-SEC frames for the swept-vs-unswept cross-check.
const SEC_FRAMES: usize = 5;

/// One circuit of the sweep benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBenchRow {
    /// Circuit name.
    pub name: String,
    /// `"two_block"` or `"generated"`.
    pub source: String,
    /// and/inv size of the original circuit.
    pub orig_ands: usize,
    /// and/inv size after the flow with the sweep off / on.
    pub unswept_ands: usize,
    pub swept_ands: usize,
    /// Sweep counters of the swept arm.
    pub merges: usize,
    pub sat_calls: usize,
    pub cex_patterns: usize,
    pub undecided: usize,
    /// Swept result bounded-equivalent to the unswept result.
    pub sec_ok: bool,
    /// Double-run of the swept arm emitted identical bytes and counters.
    pub reproducible: bool,
    /// `jobs = 4` swept run matched the `jobs = 1` bytes.
    pub jobs_identical: bool,
    /// Wall-clock seconds of each arm (excluded from the fingerprint).
    pub unswept_seconds: f64,
    pub swept_seconds: f64,
}

impl SweepBenchRow {
    /// Swept area over unswept area (< 1 = the pre-pass's win).
    pub fn area_ratio(&self) -> f64 {
        self.swept_ands as f64 / (self.unswept_ands as f64).max(1.0)
    }

    /// Unswept time over swept time (> 1 = the pre-pass pays for
    /// itself end to end).
    pub fn speedup(&self) -> f64 {
        self.unswept_seconds / self.swept_seconds.max(1e-9)
    }

    /// Does this row fail any audit?
    pub fn red(&self) -> bool {
        !self.sec_ok || !self.reproducible || !self.jobs_identical
    }
}

// ---------------------------------------------------------------------
// The duplicate-heavy suite
// ---------------------------------------------------------------------

/// xorshift64* (see `corpus::Rng` — duplicated here because the pool
/// must stay reproducible from the seed alone and the corpus generator
/// is private to its module).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// The two-block family with a De Morgan twin of every cone: for each
/// `f = ab + cd` block a second output computes the same function as
/// `nand(nand(a,b), nand(c,d))`. Structural hashing sees two distinct
/// cones; the sweep proves them equal and merges.
fn two_block_twins(blocks: usize) -> Netlist {
    let mut n = two_block_cones(blocks);
    for i in 0..blocks {
        let pick = |name: String| n.signal(&name).expect("two_block signal");
        let (a, b, c, d) =
            (pick(format!("a{i}")), pick(format!("b{i}")), pick(format!("c{i}")), pick(format!("d{i}")));
        let nab = n.add_gate(format!("nab{i}"), GateKind::Nand, vec![a, b]);
        let ncd = n.add_gate(format!("ncd{i}"), GateKind::Nand, vec![c, d]);
        let twin = n.add_gate(format!("tw{i}"), GateKind::Nand, vec![nab, ncd]);
        n.add_output(format!("g{i}"), twin);
    }
    n
}

/// A seeded random sequential netlist in the corpus generator's style,
/// except every binary gate is emitted **twice** with probability ½ —
/// once directly and once as its De Morgan / complement-normal twin —
/// and both copies are kept observable through dedicated outputs.
fn duplicated_random_netlist(
    name: &str,
    seed: u64,
    inputs: usize,
    latches: usize,
    gates: usize,
) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut n = Netlist::new(name);
    let mut pool: Vec<SignalId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    let qs: Vec<SignalId> =
        (0..latches).map(|i| n.add_latch(format!("q{i}"), rng.bool())).collect();
    pool.extend(&qs);
    let mut twins = Vec::new();
    for g in 0..gates {
        let kind = match rng.below(3) {
            0 => GateKind::And,
            1 => GateKind::Or,
            _ => GateKind::Xor,
        };
        let x = pool[rng.below(pool.len())];
        let y = pool[rng.below(pool.len())];
        let gate = n.add_gate(format!("g{g}"), kind, vec![x, y]);
        pool.push(gate);
        if rng.bool() {
            // The functionally identical, structurally different copy.
            let twin = match kind {
                GateKind::And => {
                    let nx = n.add_gate(format!("t{g}nx"), GateKind::Not, vec![x]);
                    let ny = n.add_gate(format!("t{g}ny"), GateKind::Not, vec![y]);
                    n.add_gate(format!("t{g}"), GateKind::Nor, vec![nx, ny])
                }
                GateKind::Or => {
                    let nx = n.add_gate(format!("t{g}nx"), GateKind::Not, vec![x]);
                    let ny = n.add_gate(format!("t{g}ny"), GateKind::Not, vec![y]);
                    n.add_gate(format!("t{g}"), GateKind::Nand, vec![nx, ny])
                }
                _ => {
                    let eq = n.add_gate(format!("t{g}eq"), GateKind::Xnor, vec![x, y]);
                    n.add_gate(format!("t{g}"), GateKind::Not, vec![eq])
                }
            };
            twins.push(twin);
        }
    }
    for &q in &qs {
        n.set_latch_next(q, pool[rng.below(pool.len())]);
    }
    n.add_output("o0", pool[pool.len() - 1]);
    n.add_output("o1", pool[pool.len() / 2]);
    // Keep every twin observable, or cleanup would delete it before the
    // sweep ever sees the duplicate.
    for (k, &t) in twins.iter().enumerate() {
        n.add_output(format!("ot{k}"), t);
    }
    n
}

/// The duplicate-heavy suite: twinned two-block families plus a
/// twinned generated pool. `quick` keeps the small half of each arm.
fn sweep_suite(seed: u64, quick: bool) -> Vec<(String, &'static str, Netlist)> {
    let blocks: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let mut suite: Vec<(String, &'static str, Netlist)> = blocks
        .iter()
        .map(|&b| (format!("two_block{b}"), "two_block", two_block_twins(b)))
        .collect();
    let count = if quick { 4 } else { 12 };
    for i in 0..count {
        let name = format!("dup{i}");
        let netlist = duplicated_random_netlist(
            &name,
            seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
            3 + i % 5,
            1 + i % 4,
            10 + (i * 11) % 61,
        );
        suite.push((name, "generated", netlist));
    }
    suite
}

// ---------------------------------------------------------------------
// Rows, JSON
// ---------------------------------------------------------------------

/// Runs the sweep benchmark.
pub fn sweep_bench_rows(quick: bool, seed: u64) -> Vec<SweepBenchRow> {
    let mut rows = Vec::new();
    for (name, source, netlist) in sweep_suite(seed, quick) {
        // No reachability arm: the benchmark isolates the sweep's
        // contribution to the decomposition flow.
        let unswept_options = SynthesisOptions { reach: None, jobs: 1, ..Default::default() };
        let swept_options = SynthesisOptions { sweep: true, ..unswept_options };

        let start = Instant::now();
        let (unswept_net, _) = optimize(&netlist, &unswept_options);
        let unswept_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let (swept_net, swept_rep) = optimize(&netlist, &swept_options);
        let swept_seconds = start.elapsed().as_secs_f64();

        // Reproducibility double-run, plus the jobs-invariance arm.
        let (rerun_net, rerun_rep) = optimize(&netlist, &swept_options);
        let swept_bytes = bench::write(&swept_net);
        let reproducible =
            swept_bytes == bench::write(&rerun_net) && swept_rep.sweep == rerun_rep.sweep;
        let (jobs_net, jobs_rep) =
            optimize(&netlist, &SynthesisOptions { jobs: 4, ..swept_options });
        let jobs_identical =
            swept_bytes == bench::write(&jobs_net) && swept_rep.sweep == jobs_rep.sweep;

        let sec_ok =
            sec::bounded_check(&unswept_net, &swept_net, SEC_FRAMES).is_equivalent();

        rows.push(SweepBenchRow {
            name,
            source: source.to_string(),
            orig_ands: stats::stats(&netlist).aig_ands,
            unswept_ands: stats::stats(&unswept_net).aig_ands,
            swept_ands: stats::stats(&swept_net).aig_ands,
            merges: swept_rep.sweep.merges,
            sat_calls: swept_rep.sweep.sat_calls,
            cex_patterns: swept_rep.sweep.cex_patterns,
            undecided: swept_rep.sweep.undecided,
            sec_ok,
            reproducible,
            jobs_identical,
            unswept_seconds,
            swept_seconds,
        });
    }
    rows
}

/// Serializes [`SweepBenchRow`]s as JSON (hand-written — no serde in
/// the workspace). `with_timing = false` omits the wall-clock fields,
/// producing the payload that must be byte-identical across reruns at
/// a fixed seed.
pub fn sweep_bench_json(rows: &[SweepBenchRow], seed: u64, with_timing: bool) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-sweep-bench/v1\",\n");
    out.push_str(&format!(
        "  \"seed\": {}, \"red_rows\": {},\n  \"rows\": [\n",
        seed,
        rows.iter().filter(|r| r.red()).count()
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"source\": \"{}\", \"orig_ands\": {}, ",
                "\"unswept_ands\": {}, \"swept_ands\": {}, \"area_ratio\": {:.3}, ",
                "\"merges\": {}, \"sat_calls\": {}, \"cex_patterns\": {}, ",
                "\"undecided\": {}, \"sec_ok\": {}, \"reproducible\": {}, ",
                "\"jobs_identical\": {}"
            ),
            r.name,
            r.source,
            r.orig_ands,
            r.unswept_ands,
            r.swept_ands,
            r.area_ratio(),
            r.merges,
            r.sat_calls,
            r.cex_patterns,
            r.undecided,
            r.sec_ok,
            r.reproducible,
            r.jobs_identical,
        ));
        if with_timing {
            out.push_str(&format!(
                ", \"unswept_seconds\": {:.6}, \"swept_seconds\": {:.6}, \"speedup\": {:.3}",
                r.unswept_seconds, r.swept_seconds, r.speedup()
            ));
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The timing-free payload whose byte identity across reruns at a
/// fixed seed is the benchmark's determinism contract.
pub fn sweep_bench_fingerprint(rows: &[SweepBenchRow], seed: u64) -> String {
    sweep_bench_json(rows, seed, false)
}

/// Runs [`sweep_bench_rows`] and writes [`sweep_bench_json`] (with
/// timing) to `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_sweep_bench_json(
    path: &Path,
    quick: bool,
    seed: u64,
) -> io::Result<Vec<SweepBenchRow>> {
    let rows = sweep_bench_rows(quick, seed);
    std::fs::write(path, sweep_bench_json(&rows, seed, true))?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_valid() {
        let a = sweep_suite(7, true);
        let b = sweep_suite(7, true);
        assert_eq!(a.len(), b.len());
        for ((na, _, la), (nb, _, lb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(bench::write(la), bench::write(lb));
            la.validate().expect("suite netlist is well-formed");
        }
    }

    #[test]
    fn quick_rows_are_sound_reproducible_and_reduce_area() {
        let rows = sweep_bench_rows(true, 0xC0DE_C0DE);
        assert!(!rows.is_empty());
        let mut merged_somewhere = false;
        for r in &rows {
            assert!(r.sec_ok, "{}: swept diverged from unswept", r.name);
            assert!(r.reproducible, "{}: double-run diverged", r.name);
            assert!(r.jobs_identical, "{}: jobs=4 diverged", r.name);
            assert!(
                r.swept_ands <= r.unswept_ands,
                "{}: sweeping must never grow the result ({} > {})",
                r.name,
                r.swept_ands,
                r.unswept_ands
            );
            merged_somewhere |= r.merges > 0 && r.swept_ands < r.unswept_ands;
        }
        assert!(
            merged_somewhere,
            "the duplicate-heavy suite must show at least one strict area win"
        );
        // Two equal-seed runs must agree byte for byte modulo timing.
        let again = sweep_bench_rows(true, 0xC0DE_C0DE);
        assert_eq!(
            sweep_bench_fingerprint(&rows, 0xC0DE_C0DE),
            sweep_bench_fingerprint(&again, 0xC0DE_C0DE)
        );
    }

    #[test]
    fn fingerprint_excludes_timing() {
        let row = SweepBenchRow {
            name: "t".into(),
            source: "generated".into(),
            orig_ands: 10,
            unswept_ands: 8,
            swept_ands: 6,
            merges: 2,
            sat_calls: 3,
            cex_patterns: 0,
            undecided: 0,
            sec_ok: true,
            reproducible: true,
            jobs_identical: true,
            unswept_seconds: 1.0,
            swept_seconds: 0.5,
        };
        let fp = sweep_bench_fingerprint(std::slice::from_ref(&row), 1);
        assert!(!fp.contains("seconds"), "{fp}");
        assert!(sweep_bench_json(std::slice::from_ref(&row), 1, true).contains("seconds"));
    }
}
