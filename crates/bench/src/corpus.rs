//! Corpus-scale differential harness (`repro corpus`, `BENCH_corpus.json`).
//!
//! The paper's claims are *quality* claims — area/depth wins over a
//! baseline flow on sequential circuits — so a perf-only benchmark can
//! green-light a regression that quietly worsens every result table.
//! This harness turns a corpus of circuits (a deterministic generator
//! pool plus any AIGER files from a corpus directory) into a grid of
//! differential cells: every circuit runs through the full symbolic
//! flow *and* a greedy baseline, across the `{bdd, sat, portfolio}`
//! decomposability backends and two budget tiers, and every cell is
//! audited three ways:
//!
//! - **SEC cross-check**: both the optimized and the baseline netlist
//!   are bounded-equivalence-checked against the original. A mismatch
//!   is a soundness bug, full stop.
//! - **Backend agreement**: at the unlimited tier no decomposability
//!   check can trip its budget, so the rescue rung never fires and all
//!   three backends must emit byte-identical netlists (see
//!   [`symbi_core::recursive::DecBackend`]). At the tight tier the SAT
//!   and portfolio backends must still agree with each other — both
//!   rescue exactly the checks the budget tripped, and a completed
//!   check's verdict never depends on the engine. The pure-BDD ladder
//!   is exempt at the tight tier: it has no rescue rung, so it may
//!   degrade where the others recover.
//! - **Swept-arm cross-check**: every cell also runs the same flow with
//!   the FRAIG-style SAT-sweeping pre-pass on
//!   ([`SynthesisOptions::sweep`]) and records its area/depth/runtime
//!   deltas; the swept netlist is bounded-equivalence-checked directly
//!   against the *unswept* arm, so a mis-merge cannot hide behind the
//!   original-vs-optimized checks.
//! - **Reproducibility**: every optimize cell is double-run and must
//!   reproduce its netlist byte-for-byte along with its skip/rescue
//!   counters (each cell runs at `jobs = 1`, the configuration the
//!   flow documents as bit-deterministic; `--jobs` parallelism lives
//!   *across* cells, so the report payload is identical for every job
//!   count).
//!
//! A row failing any audit is a *red row*; [`CorpusReport::red_rows`]
//! drives the `repro corpus` exit code and the CI gate. Timing fields
//! are excluded from [`corpus_fingerprint`], which is the byte string
//! the determinism tests compare across job counts and reruns.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;
use symbi_core::recursive::{DecBackend, PartitionStrategy};
use symbi_netlist::{aiger, bench, sec, stats, Netlist};
use symbi_synth::flow::{optimize, SynthesisOptions};

use crate::two_block_cones;

/// Options for [`corpus_rows`].
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Trim the generated pool and the SEC bound for CI latency.
    pub quick: bool,
    /// Worker threads *across* cells (each cell itself runs `jobs = 1`).
    pub jobs: usize,
    /// Seed for the generated circuit pool.
    pub seed: u64,
    /// Directory of `.aag`/`.aig` files to parse into the corpus;
    /// `None` runs the generated pool alone.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions { quick: false, jobs: 1, seed: 0xC0DE_C0DE, corpus_dir: None }
    }
}

/// The per-candidate step budget of the tight tier: low enough to trip
/// the symbolic partition search on the rescue family, high enough that
/// tiny cones still finish (cf. the `repro portfolio` sweep window).
const TIGHT_STEPS: u64 = 512;

/// The two budget tiers every circuit×backend pair sweeps.
const TIERS: [(&str, u64); 2] = [("unlimited", u64::MAX), ("tight", TIGHT_STEPS)];

/// The three decomposability backends.
const BACKENDS: [DecBackend; 3] = [DecBackend::Bdd, DecBackend::Sat, DecBackend::Portfolio];

/// One differential cell of the corpus grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRow {
    /// Circuit name (generator name or corpus file name).
    pub circuit: String,
    /// `"generated"` or `"aiger"`.
    pub source: String,
    /// Decomposability backend (`bdd` / `sat` / `portfolio`).
    pub backend: String,
    /// Budget tier (`unlimited` / `tight`).
    pub budget: String,
    /// and/inv size and depth of the original circuit.
    pub orig_ands: usize,
    pub orig_depth: usize,
    /// and/inv size and depth after the greedy baseline flow.
    pub base_ands: usize,
    pub base_depth: usize,
    /// and/inv size and depth after the symbolic flow.
    pub opt_ands: usize,
    pub opt_depth: usize,
    /// and/inv size and depth after the symbolic flow with the
    /// SAT-sweeping pre-pass on.
    pub swept_ands: usize,
    pub swept_depth: usize,
    /// Equivalences the sweeping pre-pass proved and merged.
    pub sweep_merges: usize,
    /// The sweeping pre-pass ran out of resources and degraded.
    pub sweep_degraded: bool,
    /// Candidates whose budget ran out (kept their original cones).
    pub skipped: usize,
    /// Budget-tripped checks the rescue rung saved.
    pub rescued: usize,
    /// Degradation-ladder steps taken.
    pub fallbacks: usize,
    /// Bounded-SEC frames checked.
    pub sec_frames: usize,
    /// Optimized netlist bounded-equivalent to the original.
    pub sec_ok: bool,
    /// Baseline netlist bounded-equivalent to the original.
    pub base_sec_ok: bool,
    /// Swept netlist bounded-equivalent to the *unswept* optimized
    /// netlist — the direct swept-vs-unswept cross-check.
    pub swept_sec_ok: bool,
    /// Double-run emitted identical bytes and counters.
    pub reproducible: bool,
    /// Backend-agreement verdict (always `true` where the contract
    /// does not apply; see the module docs for where it does).
    pub backend_agrees: bool,
    /// FNV-1a of the optimized netlist's `.bench` serialization — the
    /// cross-backend/longitudinal identity of the result.
    pub opt_hash: u64,
    /// Wall-clock seconds for the cell (excluded from the fingerprint).
    pub seconds: f64,
    /// Wall-clock seconds of the unswept and swept optimize arms
    /// (excluded from the fingerprint); their difference is the cell's
    /// sweep runtime delta.
    pub opt_seconds: f64,
    pub swept_seconds: f64,
}

impl CorpusRow {
    /// Optimized area over baseline area (< 1 = the paper's win).
    pub fn area_ratio(&self) -> f64 {
        self.opt_ands as f64 / (self.base_ands as f64).max(1.0)
    }

    /// Optimized depth over baseline depth.
    pub fn depth_ratio(&self) -> f64 {
        self.opt_depth as f64 / (self.base_depth as f64).max(1.0)
    }

    /// Swept area over unswept area (< 1 = the pre-pass's win).
    pub fn sweep_area_ratio(&self) -> f64 {
        self.swept_ands as f64 / (self.opt_ands as f64).max(1.0)
    }

    /// Does this row fail any audit?
    pub fn red(&self) -> bool {
        !self.sec_ok
            || !self.base_sec_ok
            || !self.swept_sec_ok
            || !self.reproducible
            || !self.backend_agrees
    }
}

/// The whole corpus sweep: rows plus summary counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReport {
    /// Seed the generated pool used.
    pub seed: u64,
    /// Whether the quick trim was applied.
    pub quick: bool,
    /// Circuits in the corpus, and how many came from AIGER files.
    pub circuits: usize,
    pub aiger_circuits: usize,
    /// One row per circuit × tier × backend cell.
    pub rows: Vec<CorpusRow>,
    /// Total wall-clock seconds (excluded from the fingerprint).
    pub seconds: f64,
}

impl CorpusReport {
    /// Rows with a failed SEC verdict (any arm, including the
    /// swept-vs-unswept cross-check).
    pub fn sec_mismatches(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| !r.sec_ok || !r.base_sec_ok || !r.swept_sec_ok)
            .count()
    }

    /// Total equivalences the sweeping pre-pass merged across the grid.
    pub fn sweep_merges(&self) -> usize {
        self.rows.iter().map(|r| r.sweep_merges).sum()
    }

    /// Rows breaking the backend-agreement contract.
    pub fn backend_disagreements(&self) -> usize {
        self.rows.iter().filter(|r| !r.backend_agrees).count()
    }

    /// Rows whose double-run diverged.
    pub fn non_reproducible(&self) -> usize {
        self.rows.iter().filter(|r| !r.reproducible).count()
    }

    /// Rows failing any audit — the exit-code driver.
    pub fn red_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.red()).count()
    }
}

// ---------------------------------------------------------------------
// Deterministic generator pool
// ---------------------------------------------------------------------

/// xorshift64* — the workspace vendors `rand` only as a dev-dependency,
/// and the pool must be reproducible from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixpoint.
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// A random sequential netlist in the style of the determinism suite's
/// generator: a growing signal pool, two-input gates drawn from it, and
/// latch next-states closed over the pool at the end.
fn random_netlist(name: &str, seed: u64, inputs: usize, latches: usize, gates: usize) -> Netlist {
    use symbi_netlist::{GateKind, SignalId};
    let mut rng = Rng::new(seed);
    let mut n = Netlist::new(name);
    let mut pool: Vec<SignalId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    let qs: Vec<SignalId> =
        (0..latches).map(|i| n.add_latch(format!("q{i}"), rng.bool())).collect();
    pool.extend(&qs);
    for g in 0..gates {
        let kind = match rng.below(5) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            _ => GateKind::Not,
        };
        let arity = if kind.is_unary() { 1 } else { 2 };
        let fanins: Vec<SignalId> = (0..arity).map(|_| pool[rng.below(pool.len())]).collect();
        pool.push(n.add_gate(format!("g{g}"), kind, fanins));
    }
    for &q in &qs {
        n.set_latch_next(q, pool[rng.below(pool.len())]);
    }
    n.add_output("o0", pool[pool.len() - 1]);
    n.add_output("o1", pool[pool.len() / 2]);
    n
}

/// Size of the full generated pool (excluding the two-block anchor).
/// The parameter grid below cycles inputs, latches and gate counts at
/// mutually-prime periods, so all 200 circuits are structurally
/// distinct even before the per-index seed perturbation.
const GENERATED_POOL_SIZE: usize = 200;

/// Circuits the `--quick` run samples from the full pool.
const QUICK_SAMPLE: usize = 10;

/// The generated arm of the corpus: the two-block rescue family (whose
/// tight-tier behaviour separates the backends) plus [`GENERATED_POOL_SIZE`]
/// seeded random sequential netlists spanning 2–8 inputs, 1–6 latches
/// and 8–120 gates.
///
/// `quick` keeps a [`QUICK_SAMPLE`]-circuit subset: a fixed-stride slice
/// of the full pool whose starting offset is derived from `seed`, so a
/// quick run is a deterministic function of the seed alone (same seed ⇒
/// same circuits, byte for byte) while still ranging over the whole
/// grid rather than its smallest corner.
fn generated_pool(seed: u64, quick: bool) -> Vec<(String, Netlist)> {
    let mut pool = vec![("two_block2".to_string(), two_block_cones(2))];
    let mut indices: Vec<usize> = (0..GENERATED_POOL_SIZE).collect();
    if quick {
        let stride = GENERATED_POOL_SIZE / QUICK_SAMPLE;
        let offset = Rng::new(seed ^ 0x5a3e_51ab_5a3e_51ab).below(stride);
        indices = indices.into_iter().skip(offset).step_by(stride).take(QUICK_SAMPLE).collect();
    }
    for i in indices {
        let name = format!("rnd{i}");
        let netlist = random_netlist(
            &name,
            seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
            2 + i % 7,
            1 + i % 6,
            8 + (i * 7) % 113,
        );
        pool.push((name, netlist));
    }
    pool
}

/// Parses every `.aag`/`.aig` file of `dir` (sorted by file name, so
/// the corpus order is platform-independent). A file that fails to
/// parse fails the sweep: the checked-in corpus must stay readable.
fn aiger_pool(dir: &Path) -> io::Result<Vec<(String, Netlist)>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|f| f.ends_with(".aag") || f.ends_with(".aig"))
        .collect();
    names.sort();
    let mut pool = Vec::with_capacity(names.len());
    for file in names {
        let bytes = std::fs::read(dir.join(&file))?;
        let netlist = aiger::parse_bytes(&bytes).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", dir.join(&file).display()))
        })?;
        pool.push((file, netlist));
    }
    Ok(pool)
}

// ---------------------------------------------------------------------
// The differential cell
// ---------------------------------------------------------------------

fn flow_options(
    strategy: PartitionStrategy,
    backend: DecBackend,
    candidate_steps: u64,
) -> SynthesisOptions {
    // No reachability arm: the corpus audits the decomposition flow's
    // quality and soundness; the state-analysis ablation is Table 3.1's
    // job. Every cell runs `jobs = 1` — see the module docs.
    let mut options = SynthesisOptions { reach: None, jobs: 1, ..Default::default() };
    options.decompose.strategy = strategy;
    options.decompose.backend = backend;
    options.budget.candidate_steps = candidate_steps;
    options
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one circuit × tier × backend cell (without the agreement
/// verdict, which needs the sibling cells and is filled in afterwards).
fn run_cell(
    circuit: &str,
    source: &str,
    netlist: &Netlist,
    tier: &str,
    candidate_steps: u64,
    backend: DecBackend,
    sec_frames: usize,
) -> CorpusRow {
    let start = Instant::now();
    let orig = stats::stats(netlist);

    let base_options = flow_options(PartitionStrategy::Greedy, DecBackend::Bdd, candidate_steps);
    let (base_net, _) = optimize(netlist, &base_options);
    let base = stats::stats(&base_net);

    let options = flow_options(PartitionStrategy::Auto(14), backend, candidate_steps);
    let opt_start = Instant::now();
    let (opt_a, rep_a) = optimize(netlist, &options);
    let opt_seconds = opt_start.elapsed().as_secs_f64();
    let (opt_b, rep_b) = optimize(netlist, &options);
    let bytes_a = bench::write(&opt_a);
    let reproducible = bytes_a == bench::write(&opt_b)
        && rep_a.steps.rescued_checks == rep_b.steps.rescued_checks
        && rep_a.candidates_skipped == rep_b.candidates_skipped;
    let opt = stats::stats(&opt_a);

    // The swept arm: the same flow with the SAT-sweeping pre-pass on.
    let swept_options = SynthesisOptions { sweep: true, ..options };
    let swept_start = Instant::now();
    let (swept_net, swept_rep) = optimize(netlist, &swept_options);
    let swept_seconds = swept_start.elapsed().as_secs_f64();
    let swept = stats::stats(&swept_net);

    let sec_ok = sec::bounded_check(netlist, &opt_a, sec_frames).is_equivalent();
    let base_sec_ok = sec::bounded_check(netlist, &base_net, sec_frames).is_equivalent();
    let swept_sec_ok = sec::bounded_check(&opt_a, &swept_net, sec_frames).is_equivalent();

    CorpusRow {
        circuit: circuit.to_string(),
        source: source.to_string(),
        backend: backend.to_string(),
        budget: tier.to_string(),
        orig_ands: orig.aig_ands,
        orig_depth: orig.depth,
        base_ands: base.aig_ands,
        base_depth: base.depth,
        opt_ands: opt.aig_ands,
        opt_depth: opt.depth,
        swept_ands: swept.aig_ands,
        swept_depth: swept.depth,
        sweep_merges: swept_rep.sweep.merges,
        sweep_degraded: swept_rep.sweep.degraded,
        skipped: rep_a.candidates_skipped,
        rescued: rep_a.steps.rescued_checks,
        fallbacks: rep_a.fallbacks_taken,
        sec_frames,
        sec_ok,
        base_sec_ok,
        swept_sec_ok,
        reproducible,
        // Filled in by the post-pass over sibling cells.
        backend_agrees: true,
        opt_hash: fnv1a(bytes_a.as_bytes()),
        seconds: start.elapsed().as_secs_f64(),
        opt_seconds,
        swept_seconds,
    }
}

/// Fills [`CorpusRow::backend_agrees`]: at the unlimited tier all three
/// backends must share one hash; at the tight tier `sat` and
/// `portfolio` must share one (the pure-BDD ladder is exempt there).
fn mark_agreement(rows: &mut [CorpusRow]) {
    let mut i = 0;
    while i < rows.len() {
        // Rows are emitted backend-major within each circuit×tier, so
        // each group is a contiguous BACKENDS.len() slice.
        let group = &mut rows[i..i + BACKENDS.len()];
        debug_assert!(group.windows(2).all(|w| {
            w[0].circuit == w[1].circuit && w[0].budget == w[1].budget
        }));
        if group[0].budget == "unlimited" {
            let h = group[0].opt_hash;
            if group.iter().any(|r| r.opt_hash != h) {
                for r in group.iter_mut() {
                    r.backend_agrees = false;
                }
            }
        } else {
            let sat = group.iter().position(|r| r.backend == "sat").expect("sat cell");
            let pf = group.iter().position(|r| r.backend == "portfolio").expect("portfolio cell");
            if group[sat].opt_hash != group[pf].opt_hash {
                group[sat].backend_agrees = false;
                group[pf].backend_agrees = false;
            }
        }
        i += BACKENDS.len();
    }
}

/// Runs the corpus sweep.
///
/// # Errors
///
/// Propagates I/O errors reading `corpus_dir`, and reports an unparsable
/// corpus file as [`io::ErrorKind::InvalidData`].
pub fn corpus_rows(options: &CorpusOptions) -> io::Result<CorpusReport> {
    let start = Instant::now();
    let mut pool: Vec<(String, String, Netlist)> = generated_pool(options.seed, options.quick)
        .into_iter()
        .map(|(name, n)| (name, "generated".to_string(), n))
        .collect();
    let mut aiger_circuits = 0;
    if let Some(dir) = &options.corpus_dir {
        for (name, n) in aiger_pool(dir)? {
            aiger_circuits += 1;
            pool.push((name, "aiger".to_string(), n));
        }
    }
    let sec_frames = if options.quick { 4 } else { 6 };

    // One task per cell, ordered circuit-major / tier / backend — the
    // order `mark_agreement` and the JSON rely on. `parallel_map`
    // merges results in task order, so the report is identical for
    // every job count.
    let cells: Vec<(usize, &'static str, u64, DecBackend)> = (0..pool.len())
        .flat_map(|c| {
            TIERS.iter().flat_map(move |&(tier, steps)| {
                BACKENDS.iter().map(move |&b| (c, tier, steps, b))
            })
        })
        .collect();
    let mut rows = symbi_bdd::par::parallel_map(
        options.jobs,
        cells,
        |_, (c, tier, steps, backend)| {
            let (name, source, netlist) = &pool[c];
            run_cell(name, source, netlist, tier, steps, backend, sec_frames)
        },
    );
    mark_agreement(&mut rows);
    Ok(CorpusReport {
        seed: options.seed,
        quick: options.quick,
        circuits: pool.len(),
        aiger_circuits,
        rows,
        seconds: start.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// Serializes a [`CorpusReport`] as JSON (hand-written — no serde in
/// the workspace). `with_timing = false` omits every wall-clock field,
/// producing the payload that must be byte-identical across job counts
/// and reruns at a fixed seed.
pub fn corpus_json(report: &CorpusReport, with_timing: bool) -> String {
    let mut out = String::from("{\n  \"schema\": \"symbi-corpus-bench/v1\",\n");
    out.push_str(&format!(
        "  \"seed\": {}, \"quick\": {}, \"circuits\": {}, \"aiger_circuits\": {},\n",
        report.seed, report.quick, report.circuits, report.aiger_circuits
    ));
    out.push_str(&format!(
        concat!(
            "  \"sec_mismatches\": {}, \"backend_disagreements\": {}, ",
            "\"non_reproducible\": {}, \"red_rows\": {}, \"sweep_merges\": {},\n"
        ),
        report.sec_mismatches(),
        report.backend_disagreements(),
        report.non_reproducible(),
        report.red_rows(),
        report.sweep_merges(),
    ));
    if with_timing {
        out.push_str(&format!("  \"seconds\": {:.6},\n", report.seconds));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"circuit\": \"{}\", \"source\": \"{}\", \"backend\": \"{}\", ",
                "\"budget\": \"{}\", \"orig_ands\": {}, \"orig_depth\": {}, ",
                "\"base_ands\": {}, \"base_depth\": {}, \"opt_ands\": {}, \"opt_depth\": {}, ",
                "\"swept_ands\": {}, \"swept_depth\": {}, ",
                "\"area_ratio\": {:.3}, \"depth_ratio\": {:.3}, ",
                "\"sweep_area_ratio\": {:.3}, \"sweep_merges\": {}, ",
                "\"sweep_degraded\": {}, ",
                "\"skipped\": {}, \"rescued\": {}, \"fallbacks\": {}, ",
                "\"sec_frames\": {}, \"sec_ok\": {}, \"base_sec_ok\": {}, ",
                "\"swept_sec_ok\": {}, ",
                "\"reproducible\": {}, \"backend_agrees\": {}, \"opt_hash\": \"{:016x}\""
            ),
            r.circuit,
            r.source,
            r.backend,
            r.budget,
            r.orig_ands,
            r.orig_depth,
            r.base_ands,
            r.base_depth,
            r.opt_ands,
            r.opt_depth,
            r.swept_ands,
            r.swept_depth,
            r.area_ratio(),
            r.depth_ratio(),
            r.sweep_area_ratio(),
            r.sweep_merges,
            r.sweep_degraded,
            r.skipped,
            r.rescued,
            r.fallbacks,
            r.sec_frames,
            r.sec_ok,
            r.base_sec_ok,
            r.swept_sec_ok,
            r.reproducible,
            r.backend_agrees,
            r.opt_hash,
        ));
        if with_timing {
            out.push_str(&format!(
                ", \"seconds\": {:.6}, \"opt_seconds\": {:.6}, \"swept_seconds\": {:.6}",
                r.seconds, r.opt_seconds, r.swept_seconds
            ));
        }
        out.push_str(if i + 1 == report.rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The timing-free payload whose byte identity across `--jobs` values
/// and reruns is the harness's own determinism contract.
pub fn corpus_fingerprint(report: &CorpusReport) -> String {
    corpus_json(report, false)
}

/// Runs [`corpus_rows`] and writes [`corpus_json`] (with timing) to
/// `path`.
///
/// # Errors
///
/// Propagates corpus-directory and output-file I/O errors.
pub fn write_corpus_json(path: &Path, options: &CorpusOptions) -> io::Result<CorpusReport> {
    let report = corpus_rows(options)?;
    std::fs::write(path, corpus_json(&report, true))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_pool_is_deterministic() {
        let a = generated_pool(7, true);
        let b = generated_pool(7, true);
        assert_eq!(a.len(), b.len());
        for ((na, la), (nb, lb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(bench::write(la), bench::write(lb));
        }
        let c = generated_pool(8, true);
        assert!(
            a.iter().zip(&c).any(|((_, la), (_, lc))| bench::write(la) != bench::write(lc)),
            "different seeds must vary the pool"
        );
    }

    #[test]
    fn quick_pool_is_a_sample_of_the_full_pool() {
        let full = generated_pool(7, false);
        assert!(full.len() > GENERATED_POOL_SIZE, "full pool carries 200+ circuits");
        let quick = generated_pool(7, true);
        assert_eq!(quick.len(), QUICK_SAMPLE + 1);
        for (name, n) in &quick {
            let (_, reference) = full
                .iter()
                .find(|(full_name, _)| full_name == name)
                .expect("every quick circuit exists in the full pool");
            assert_eq!(
                bench::write(n),
                bench::write(reference),
                "quick must sample, not regenerate, the pool"
            );
        }
    }

    #[test]
    fn random_netlists_validate() {
        for i in 0..8 {
            let n = random_netlist("t", 1000 + i, 3, 3, 16);
            n.validate().expect("generated netlist is well-formed");
        }
    }

    #[test]
    fn fingerprint_excludes_timing() {
        let report = CorpusReport {
            seed: 1,
            quick: true,
            circuits: 0,
            aiger_circuits: 0,
            rows: Vec::new(),
            seconds: 12.5,
        };
        let fp = corpus_fingerprint(&report);
        assert!(!fp.contains("seconds"), "{fp}");
        assert!(corpus_json(&report, true).contains("seconds"));
    }
}
