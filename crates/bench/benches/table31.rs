//! E3: one Table 3.1 row (both arms) on the two smallest circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bench::{table31_row, Table31Options};
use symbi_circuits::iscas_like;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table31");
    group.sample_size(10);
    for name in ["s344", "s526"] {
        let netlist = iscas_like::by_name(name).expect("known circuit");
        let opts = Table31Options::default();
        group.bench_with_input(BenchmarkId::new("no_states", name), &netlist, |b, n| {
            b.iter(|| table31_row(n, false, &opts))
        });
        group.bench_with_input(BenchmarkId::new("with_states", name), &netlist, |b, n| {
            b.iter(|| table31_row(n, true, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
