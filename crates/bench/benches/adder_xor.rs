//! E2: the §3.4.2 adder profile — implicit symbolic XOR `Bi` per sum bit,
//! plus the explicit greedy baseline at a narrow bit for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use symbi_bench::adder_row;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adder_xor");
    group.sample_size(10);
    for bit in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::new("row", bit), &bit, |b, &bit| {
            b.iter(|| {
                let row = adder_row(bit, Duration::from_secs(30));
                assert_eq!(row.best, (2, 2 * bit + 1));
                row
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
