//! A2 ablation: feasible-size-pair extraction with vs without the
//! symbolic dominance purge of §3.5.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bdd::Manager;
use symbi_circuits::mux;
use symbi_core::{or_dec, Interval};
use symbi_netlist::cone::ConeExtractor;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dominance");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        for (label, purge) in [("raw", false), ("purged", true)] {
            group.bench_with_input(
                BenchmarkId::new(label, k),
                &(k, purge),
                |b, &(k, purge)| {
                    let netlist = mux::mux(k);
                    let mut m = Manager::new();
                    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
                    let f = ext.bdd(&mut m, netlist.outputs()[0].1);
                    let support = m.support(f);
                    let spec = Interval::exact(f);
                    b.iter(|| {
                        let mut ch = or_dec::Choices::compute(&mut m, &spec, &support);
                        let pairs = ch.feasible_pairs(purge);
                        assert!(!pairs.is_empty());
                        pairs
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
