//! A4 ablation: BDD-based vs SAT-based decomposability checks on adder
//! sum-bit cones (both methods consume the same BDD representation; the
//! comparison isolates the checking method, as in the paper's discussion
//! of Lee–Jiang–Hung).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bdd::{Manager, VarId};
use symbi_circuits::adder;
use symbi_core::{or_dec, sat_dec, xor_dec, Interval};
use symbi_netlist::cone::ConeExtractor;

fn sum_bit(bit: usize) -> (Manager, symbi_bdd::NodeId, Vec<VarId>) {
    let netlist = adder::ripple_carry(bit + 1);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
    let sig = netlist.signal(&format!("s{bit}")).expect("sum bit");
    let f = ext.bdd(&mut m, sig);
    let support = m.support(f);
    (m, f, support)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sat_vs_bdd");
    group.sample_size(10);
    for bit in [2usize, 4, 6] {
        // The known-good partition: {a_bit, b_bit} vs the rest.
        group.bench_with_input(BenchmarkId::new("bdd_xor_check", bit), &bit, |b, &bit| {
            let (mut m, f, support) = sum_bit(bit);
            let iv = Interval::exact(f);
            let n = support.len();
            let a_vac: Vec<VarId> = support[..n - 2].to_vec();
            let b_vac: Vec<VarId> = support[n - 2..].to_vec();
            b.iter(|| {
                assert!(xor_dec::decomposable(&mut m, &iv, &support, &a_vac, &b_vac));
            })
        });
        group.bench_with_input(BenchmarkId::new("sat_xor_check", bit), &bit, |b, &bit| {
            let (m, f, support) = sum_bit(bit);
            let n = support.len();
            let a_vac: Vec<VarId> = support[..n - 2].to_vec();
            let b_vac: Vec<VarId> = support[n - 2..].to_vec();
            b.iter(|| {
                assert!(sat_dec::xor_decomposable(&m, f, &support, &a_vac, &b_vac));
            })
        });
        group.bench_with_input(BenchmarkId::new("bdd_or_check", bit), &bit, |b, &bit| {
            let (mut m, f, support) = sum_bit(bit);
            let iv = Interval::exact(f);
            let a_vac = [support[0]];
            let b_vac = [support[1]];
            b.iter(|| or_dec::decomposable(&mut m, &iv, &a_vac, &b_vac))
        });
        group.bench_with_input(BenchmarkId::new("sat_or_check", bit), &bit, |b, &bit| {
            let (m, f, support) = sum_bit(bit);
            let a_vac = [support[0]];
            let b_vac = [support[1]];
            b.iter(|| sat_dec::or_decomposable(&m, f, &support, &a_vac, &b_vac))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
