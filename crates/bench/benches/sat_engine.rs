//! CDCL engine micro-benchmarks: raw solver throughput on a hard UNSAT
//! family (pigeonhole), the paper-style XOR decomposability check, and the
//! SAT-based bounded sequential equivalence check. These isolate the
//! order-heap / clause-database changes from the BDD layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bdd::{Manager, VarId};
use symbi_circuits::adder;
use symbi_core::sat_dec;
use symbi_netlist::cone::ConeExtractor;
use symbi_netlist::sec;
use symbi_sat::{Lit, SolveResult, Solver};

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, UNSAT.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut solver = Solver::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    for row in &vars {
        solver.add_clause(row.clone());
    }
    for (p1, row1) in vars.iter().enumerate() {
        for row2 in vars.iter().skip(p1 + 1) {
            for (&l1, &l2) in row1.iter().zip(row2.iter()) {
                solver.add_clause(vec![!l1, !l2]);
            }
        }
    }
    solver
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engine_pigeonhole");
    group.sample_size(10);
    for holes in [5usize, 6] {
        group.bench_with_input(BenchmarkId::new("unsat", holes), &holes, |b, &holes| {
            b.iter(|| {
                let mut solver = pigeonhole(holes);
                assert!(matches!(solver.solve(), SolveResult::Unsat { .. }));
            })
        });
    }
    group.finish();
}

fn bench_xor_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engine_xor_check");
    group.sample_size(10);
    for bit in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("adder_sum", bit), &bit, |b, &bit| {
            let netlist = adder::ripple_carry(bit + 1);
            let mut m = Manager::new();
            let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
            let sig = netlist.signal(&format!("s{bit}")).expect("sum bit");
            let f = ext.bdd(&mut m, sig);
            let support = m.support(f);
            let half = support.len() / 2;
            let a_vac: Vec<VarId> = support[..half].to_vec();
            let b_vac: Vec<VarId> = support[half..].to_vec();
            b.iter(|| {
                let (ok, stats) =
                    sat_dec::xor_decomposable_with_stats(&m, f, &support, &a_vac, &b_vac);
                assert!(ok);
                assert!(stats.propagations > 0);
            })
        });
    }
    group.finish();
}

fn bench_bounded_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engine_bounded_sec");
    group.sample_size(10);
    let a = adder::ripple_carry(6);
    for frames in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("adder_self", frames), &frames, |b, &frames| {
            b.iter(|| {
                let (verdict, _stats) = sec::bounded_check_sat(&a, &a, frames);
                assert!(verdict.is_equivalent());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pigeonhole, bench_xor_check, bench_bounded_sec);
criterion_main!(benches);
