//! E4: one Table 3.2 row — the full Algorithm 1 + mapping flow on the
//! smallest industrial-like block.

use criterion::{criterion_group, criterion_main, Criterion};
use symbi_bench::table32_row;
use symbi_circuits::industrial;
use symbi_synth::flow::SynthesisOptions;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table32");
    group.sample_size(10);
    let netlist = industrial::by_name("seq6").expect("known block");
    let opts = SynthesisOptions::default();
    group.bench_function("seq6_full_flow", |b| {
        b.iter(|| {
            let row = table32_row(&netlist, &opts);
            assert!(row.area_ratio() <= 1.0 + 1e-9, "area must not regress");
            row
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
