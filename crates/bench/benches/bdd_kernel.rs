//! Kernel-overhaul microbenchmarks: the hash-map baseline against the
//! open-addressed production manager on the image-computation churn
//! workload, plus the collector and in-place sifting on their own.

use criterion::{criterion_group, criterion_main, Criterion};
use symbi_bdd::{KernelConfig, Manager, NodeId, VarId};
use symbi_bench::baseline::BaselineManager;
use symbi_bench::churn_script;

const N_VARS: u32 = 20;
const ROUNDS: usize = 40;
const CLAUSES: usize = 30;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernel");
    group.sample_size(10);

    group.bench_function("churn_3cnf_baseline", |b| {
        b.iter(|| {
            let mut m = BaselineManager::with_vars(N_VARS);
            churn_script(&mut m, ROUNDS, CLAUSES, 3, N_VARS)
        })
    });

    group.bench_function("churn_3cnf_overhauled", |b| {
        b.iter(|| {
            let mut m = Manager::with_vars(N_VARS as usize);
            churn_script(&mut m, ROUNDS, CLAUSES, 3, N_VARS)
        })
    });

    // GC on its own: build a block of dead intermediates around one live
    // root, then sweep. Times mark + sweep + unique-table rebuild +
    // computed-cache retain pass.
    group.bench_function("gc_sweep_100k_dead", |b| {
        b.iter(|| {
            let mut m = Manager::with_kernel_config(KernelConfig {
                auto_gc: false,
                ..KernelConfig::default()
            });
            m.new_vars(N_VARS as usize);
            let live = churn_root(&mut m, 0);
            // Salted scripts: hash consing would dedupe a repeat of the
            // same script into zero fresh allocations.
            let mut salt = 1;
            while m.stats().nodes < 100_000 {
                churn_root(&mut m, salt);
                salt += 1;
            }
            m.gc_with_roots(&[live]);
            m.stats().nodes
        })
    });

    // In-place Rudell sifting of a function whose natural order is bad.
    group.bench_function("sift_in_place_interleaved", |b| {
        b.iter(|| {
            let mut m = Manager::with_vars(24);
            // sum of products pairing far-apart variables: x_i & x_{i+12}
            let mut f = NodeId::FALSE;
            for i in 0..12u32 {
                let x = m.var(VarId(i));
                let y = m.var(VarId(i + 12));
                let t = m.and(x, y);
                f = m.or(f, t);
            }
            m.sift_in_place(&[f]);
            m.size(f)
        })
    });

    group.finish();
}

/// One round of clause churn returning its accumulated function (the
/// only value the caller keeps alive). XOR accumulation keeps the
/// function from collapsing to a constant; `salt` varies the script so
/// successive calls allocate fresh nodes instead of re-finding old ones.
fn churn_root(m: &mut Manager, salt: u32) -> NodeId {
    let mut acc = NodeId::FALSE;
    let n = m.num_vars() as u32;
    for i in 0..200u32 {
        let a = m.var(VarId((i.wrapping_mul(3) + salt) % n));
        let b = m.var(VarId((i.wrapping_mul(7) + 3 + salt.wrapping_mul(5)) % n));
        let c = m.var(VarId((i.wrapping_mul(13) + 5 + salt.wrapping_mul(11)) % n));
        let ab = m.or(a, b);
        let nc = m.not(c);
        let cl = m.or(ab, nc);
        acc = m.xor(acc, cl);
    }
    acc
}

criterion_group!(benches, bench);
criterion_main!(benches);
