//! A1 ablation: implicit exhaustive `Bi` vs greedy partition growth on
//! the same functions (symbolic checks for both, so the comparison is
//! about search strategy, not check implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bdd::Manager;
use symbi_circuits::mux;
use symbi_core::{greedy, or_dec, DecKind, Interval};
use symbi_netlist::cone::ConeExtractor;

fn mux_function(k: usize) -> (Manager, symbi_bdd::NodeId) {
    let netlist = mux::mux(k);
    let mut m = Manager::new();
    let mut ext = ConeExtractor::with_default_layout(&netlist, &mut m);
    let f = ext.bdd(&mut m, netlist.outputs()[0].1);
    (m, f)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_greedy_vs_implicit");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("implicit", k), &k, |b, &k| {
            let (mut m, f) = mux_function(k);
            let support = m.support(f);
            let spec = Interval::exact(f);
            b.iter(|| {
                let mut ch = or_dec::Choices::compute(&mut m, &spec, &support);
                ch.best_balanced().expect("decomposable")
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", k), &k, |b, &k| {
            let (mut m, f) = mux_function(k);
            let support = m.support(f);
            let spec = Interval::exact(f);
            b.iter(|| greedy::grow(&mut m, DecKind::Or, &spec, &support).expect("decomposable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
