//! Substrate microbenchmarks: the BDD operations everything else is built
//! from (construction, quantification, transfer, weight functions).

use criterion::{criterion_group, criterion_main, Criterion};
use symbi_bdd::combin;
use symbi_bdd::hash::FxHashMap;
use symbi_bdd::{Manager, VarId};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ops");

    group.bench_function("build_16bit_adder_carry", |b| {
        b.iter(|| {
            let mut m = Manager::new();
            let mut carry = m.new_var();
            for _ in 0..16 {
                let x = m.new_var();
                let y = m.new_var();
                let xy = m.and(x, y);
                let xor = m.xor(x, y);
                let xc = m.and(xor, carry);
                carry = m.or(xy, xc);
            }
            m.size(carry)
        })
    });

    group.bench_function("forall_8_of_24_vars", |b| {
        let mut m = Manager::new();
        let vs = m.new_vars(24);
        let mut f = vs[0];
        for w in vs.windows(2) {
            let t = m.and(w[0], w[1]);
            f = m.xor(f, t);
        }
        let qs: Vec<VarId> = (0..8).map(|i| VarId(i * 3)).collect();
        b.iter(|| {
            m.clear_cache();
            m.forall(f, &qs)
        })
    });

    group.bench_function("transfer_interleaved_order", |b| {
        let mut src = Manager::new();
        let vs = src.new_vars(20);
        let mut f = vs[0];
        for w in vs.windows(2) {
            let t = src.or(w[0], w[1]);
            f = src.xor(f, t);
        }
        b.iter(|| {
            let mut dst = Manager::with_vars(40);
            let map: FxHashMap<VarId, VarId> =
                (0..20).map(|i| (VarId(i), VarId(2 * i))).collect();
            dst.transfer_from(&src, f, &map)
        })
    });

    group.bench_function("weight_relation_33_vars", |b| {
        b.iter(|| {
            let mut m = Manager::new();
            m.new_vars(33 + 6);
            let cvars: Vec<VarId> = (0..33).map(VarId).collect();
            let evars: Vec<VarId> = (33..39).map(VarId).collect();
            combin::weight_relation(&mut m, &cvars, &evars)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
