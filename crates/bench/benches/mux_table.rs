//! E1: the §3.4.1 multiplexer profile — times the symbolic OR `Bi`
//! computation per control width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbi_bench::mux_row;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mux_or_bi");
    group.sample_size(10);
    for k in 2..=5usize {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let row = mux_row(k);
                assert_eq!(row.best, [(0, 0), (2, 2), (4, 4), (7, 7), (12, 12), (21, 21)][k]);
                row
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
