//! Sequential building blocks and random combinational cones.
//!
//! Each block appends latches and gates to an existing [`Netlist`] and
//! returns the state signals it created. Blocks differ in how much of
//! their state space is reachable, which is the knob the Table 3.1
//! stand-ins turn.

use rand::rngs::StdRng;
use rand::Rng;
use symbi_netlist::{GateKind, Netlist, SignalId};

/// One-hot ring of `k` latches (only `k` of `2^k` states reachable). The
/// ring advances when `enable` is true.
pub fn one_hot_ring(
    n: &mut Netlist,
    prefix: &str,
    k: usize,
    enable: SignalId,
) -> Vec<SignalId> {
    assert!(k >= 2, "a ring needs at least two latches");
    let q: Vec<SignalId> =
        (0..k).map(|i| n.add_latch(format!("{prefix}_q{i}"), i == 0)).collect();
    let not_en = n.add_gate(format!("{prefix}_nen"), GateKind::Not, vec![enable]);
    for i in 0..k {
        let prev = q[(i + k - 1) % k];
        let shift = n.add_gate(format!("{prefix}_sh{i}"), GateKind::And, vec![enable, prev]);
        let hold = n.add_gate(format!("{prefix}_ho{i}"), GateKind::And, vec![not_en, q[i]]);
        let next = n.add_gate(format!("{prefix}_nx{i}"), GateKind::Or, vec![shift, hold]);
        n.set_latch_next(q[i], next);
    }
    q
}

/// Johnson (twisted-ring) counter of `k` latches (`2k` of `2^k` states
/// reachable).
pub fn johnson_counter(
    n: &mut Netlist,
    prefix: &str,
    k: usize,
    enable: SignalId,
) -> Vec<SignalId> {
    assert!(k >= 2, "a Johnson counter needs at least two latches");
    let q: Vec<SignalId> =
        (0..k).map(|i| n.add_latch(format!("{prefix}_q{i}"), false)).collect();
    let not_en = n.add_gate(format!("{prefix}_nen"), GateKind::Not, vec![enable]);
    let feedback = n.add_gate(format!("{prefix}_fb"), GateKind::Not, vec![q[k - 1]]);
    for i in 0..k {
        let src = if i == 0 { feedback } else { q[i - 1] };
        let shift = n.add_gate(format!("{prefix}_sh{i}"), GateKind::And, vec![enable, src]);
        let hold = n.add_gate(format!("{prefix}_ho{i}"), GateKind::And, vec![not_en, q[i]]);
        let next = n.add_gate(format!("{prefix}_nx{i}"), GateKind::Or, vec![shift, hold]);
        n.set_latch_next(q[i], next);
    }
    q
}

/// Binary up-counter of `k` latches with enable (all `2^k` states
/// reachable).
pub fn binary_counter(
    n: &mut Netlist,
    prefix: &str,
    k: usize,
    enable: SignalId,
) -> Vec<SignalId> {
    let q: Vec<SignalId> =
        (0..k).map(|i| n.add_latch(format!("{prefix}_q{i}"), false)).collect();
    let mut carry = enable;
    for (i, &qi) in q.iter().enumerate() {
        let toggled = n.add_gate(format!("{prefix}_t{i}"), GateKind::Xor, vec![qi, carry]);
        n.set_latch_next(qi, toggled);
        if i + 1 < k {
            carry = n.add_gate(format!("{prefix}_c{i}"), GateKind::And, vec![qi, carry]);
        }
    }
    q
}

/// Shift register of `k` latches fed by `data` (all states reachable given
/// free data).
pub fn shift_register(
    n: &mut Netlist,
    prefix: &str,
    k: usize,
    data: SignalId,
) -> Vec<SignalId> {
    let q: Vec<SignalId> =
        (0..k).map(|i| n.add_latch(format!("{prefix}_q{i}"), false)).collect();
    n.set_latch_next(q[0], data);
    for i in 1..k {
        n.set_latch_next(q[i], q[i - 1]);
    }
    q
}

/// A random Moore-style FSM over `k` latches with roughly `states`
/// reachable states, binary encoded. Transitions depend on `inputs`.
/// States `>= states` are made unreachable by clamping the next-state
/// value back into range through a comparator.
pub fn random_fsm(
    n: &mut Netlist,
    prefix: &str,
    k: usize,
    states: usize,
    inputs: &[SignalId],
    rng: &mut StdRng,
) -> Vec<SignalId> {
    assert!(states >= 2 && states <= 1 << k, "state count must fit in {k} bits");
    let q: Vec<SignalId> =
        (0..k).map(|i| n.add_latch(format!("{prefix}_q{i}"), false)).collect();
    // Condition: a random 2-level function of a few inputs and state bits.
    let mut pool: Vec<SignalId> = inputs.to_vec();
    pool.extend(q.iter().copied());
    let cond = random_cone(n, &format!("{prefix}_cond"), &pool, 2, rng);
    // Two candidate successors per state bit: increment-style and
    // permuted; the condition picks between them, and a "state < states"
    // guard resets out-of-range values to zero.
    let ncond = n.add_gate(format!("{prefix}_nc"), GateKind::Not, vec![cond]);
    let mut carry = cond;
    let mut merged = Vec::with_capacity(k);
    for i in 0..k {
        let inc = n.add_gate(format!("{prefix}_i{i}"), GateKind::Xor, vec![q[i], carry]);
        if i + 1 < k {
            carry = n.add_gate(format!("{prefix}_ic{i}"), GateKind::And, vec![q[i], carry]);
        }
        let alt_src = q[(i + 1 + rng.gen_range(0..k)) % k];
        let flip = rng.gen_bool(0.5);
        let alt = if flip {
            n.add_gate(format!("{prefix}_a{i}"), GateKind::Not, vec![alt_src])
        } else {
            n.add_gate(format!("{prefix}_a{i}"), GateKind::Buf, vec![alt_src])
        };
        let sel_inc = n.add_gate(format!("{prefix}_s1_{i}"), GateKind::And, vec![cond, inc]);
        let sel_alt = n.add_gate(format!("{prefix}_s0_{i}"), GateKind::And, vec![ncond, alt]);
        merged.push(n.add_gate(format!("{prefix}_m{i}"), GateKind::Or, vec![sel_inc, sel_alt]));
    }
    // Guard the *next* value: outside the legal range the machine resets
    // to state 0.
    let in_range = less_than_const(n, &format!("{prefix}_rng"), &merged, states);
    for i in 0..k {
        let next =
            n.add_gate(format!("{prefix}_g{i}"), GateKind::And, vec![merged[i], in_range]);
        n.set_latch_next(q[i], next);
    }
    q
}

/// Comparator `int(q) < bound` over little-endian state bits.
fn less_than_const(n: &mut Netlist, prefix: &str, q: &[SignalId], bound: usize) -> SignalId {
    if bound >= 1 << q.len() {
        return n.add_const(format!("{prefix}_true"), true);
    }
    // lt_i over bits [i..): standard MSB-first recursion.
    let mut lt = n.add_const(format!("{prefix}_f"), false);
    for (i, &qi) in q.iter().enumerate() {
        let bit = bound >> i & 1 == 1;
        if bit {
            // q_i = 0 → strictly less (given higher bits equal); else recurse.
            let nq = n.add_gate(format!("{prefix}_n{i}"), GateKind::Not, vec![qi]);
            lt = n.add_gate(format!("{prefix}_l{i}"), GateKind::Or, vec![nq, lt]);
        } else {
            let nq = n.add_gate(format!("{prefix}_n{i}"), GateKind::Not, vec![qi]);
            lt = n.add_gate(format!("{prefix}_l{i}"), GateKind::And, vec![nq, lt]);
        }
    }
    lt
}

/// A random multi-level cone over a signal pool: `levels` layers of
/// randomly chosen 2–3-input gates. Returns the root signal.
pub fn random_cone(
    n: &mut Netlist,
    prefix: &str,
    pool: &[SignalId],
    levels: usize,
    rng: &mut StdRng,
) -> SignalId {
    assert!(!pool.is_empty(), "cone needs a non-empty signal pool");
    let width = pool.len().clamp(2, 6);
    let mut layer: Vec<SignalId> =
        (0..width).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
    for level in 0..levels {
        let mut next_layer = Vec::new();
        let target = (layer.len() / 2).max(1);
        for g in 0..target {
            let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand, GateKind::Nor];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = if layer.len() >= 3 && rng.gen_bool(0.3) { 3 } else { 2 };
            let mut fanins = Vec::with_capacity(arity);
            for _ in 0..arity {
                fanins.push(layer[rng.gen_range(0..layer.len())]);
            }
            fanins.dedup();
            if fanins.len() == 1 {
                fanins.push(pool[rng.gen_range(0..pool.len())]);
                fanins.dedup();
                if fanins.len() == 1 {
                    next_layer.push(fanins[0]);
                    continue;
                }
            }
            next_layer.push(n.add_gate(format!("{prefix}_l{level}g{g}"), kind, fanins));
        }
        layer = next_layer;
    }
    if layer.len() == 1 {
        layer[0]
    } else {
        n.add_gate(format!("{prefix}_root"), GateKind::Or, layer)
    }
}

/// What kind of state block a soup group is (see
/// [`state_machine_soup`]); one-hot groups carry the pairwise-exclusion
/// invariant that makes state-redundant logic injectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// One-hot ring: at most one latch hot at any reachable state.
    OneHotRing,
    /// Johnson (twisted-ring) counter.
    Johnson,
    /// Range-guarded random FSM.
    Fsm,
    /// Binary counter (fully reachable).
    Counter,
    /// Shift register (fully reachable).
    Shift,
}

/// Fills a latch budget with a random mix of blocks (rings, Johnson and
/// binary counters, shift registers, FSMs), returning one latch-signal
/// group per block together with its kind. Enables and data feeds are
/// shallow random cones over `pool` plus previously created state, so
/// groups are cross-coupled.
pub fn state_machine_soup(
    n: &mut Netlist,
    prefix: &str,
    latch_budget: usize,
    pool: &[SignalId],
    rng: &mut StdRng,
) -> Vec<(BlockKind, Vec<SignalId>)> {
    let mut groups: Vec<(BlockKind, Vec<SignalId>)> = Vec::new();
    let mut feed_pool: Vec<SignalId> = pool.to_vec();
    let mut remaining = latch_budget;
    let mut idx = 0usize;
    while remaining > 0 {
        let size = if remaining <= 3 { remaining } else { rng.gen_range(3..=8.min(remaining)) };
        let name = format!("{prefix}_g{idx}");
        let feed = random_cone(n, &format!("{name}_en"), &feed_pool, 1, rng);
        let group = match rng.gen_range(0..10) {
            // Rings and Johnson counters leave most of their space
            // unreachable; they make up half the mix.
            0..=2 if size >= 2 => (BlockKind::OneHotRing, one_hot_ring(n, &name, size, feed)),
            3..=4 if size >= 2 => (BlockKind::Johnson, johnson_counter(n, &name, size, feed)),
            5..=6 if size >= 2 => {
                // Keep every state bit exercised: at least 2^(k-1)+1 states.
                let k = size.min(16);
                let states = rng.gen_range((1usize << (k - 1)) + 1..=1 << k);
                (BlockKind::Fsm, random_fsm(n, &name, size, states, &feed_pool, rng))
            }
            7..=8 => (BlockKind::Counter, binary_counter(n, &name, size, feed)),
            _ => (BlockKind::Shift, shift_register(n, &name, size, feed)),
        };
        remaining -= group.1.len();
        // Later groups may key off earlier state.
        feed_pool.extend(group.1.iter().copied().take(2));
        groups.push(group);
        idx += 1;
    }
    groups
}

/// Like [`state_machine_soup`], but drives the block mix toward a target
/// number of reachable state bits: the *deficit* `latch_budget −
/// target_log2_states` is spent on constrained blocks (rings remove
/// `k − log2 k` bits, Johnson counters `k − log2 2k`, guarded FSMs about
/// one bit), while free blocks (counters, shift registers) remove none.
/// Used to calibrate the ISCAS-like stand-ins to the paper's reported
/// `log2 states` column.
pub fn state_machine_soup_targeted(
    n: &mut Netlist,
    prefix: &str,
    latch_budget: usize,
    target_log2_states: f64,
    pool: &[SignalId],
    rng: &mut StdRng,
) -> Vec<(BlockKind, Vec<SignalId>)> {
    let mut groups: Vec<(BlockKind, Vec<SignalId>)> = Vec::new();
    let mut feed_pool: Vec<SignalId> = pool.to_vec();
    let mut remaining = latch_budget;
    let mut deficit = (latch_budget as f64 - target_log2_states).max(0.0);
    let mut idx = 0usize;
    while remaining > 0 {
        let frac = deficit / remaining as f64;
        let name = format!("{prefix}_g{idx}");
        let feed = random_cone(n, &format!("{name}_en"), &feed_pool, 1, rng);
        let group = if frac > 0.65 && remaining >= 8 {
            // One large ring eats most of the deficit at once.
            let k = remaining.min(40);
            deficit -= k as f64 - (k as f64).log2();
            (BlockKind::OneHotRing, one_hot_ring(n, &name, k, feed))
        } else if frac > 0.3 && remaining >= 4 {
            let k = rng.gen_range(4..=8.min(remaining));
            if rng.gen_bool(0.5) {
                deficit -= k as f64 - (k as f64).log2();
                (BlockKind::OneHotRing, one_hot_ring(n, &name, k, feed))
            } else {
                deficit -= k as f64 - (2.0 * k as f64).log2();
                (BlockKind::Johnson, johnson_counter(n, &name, k, feed))
            }
        } else if frac > 0.1 && remaining >= 3 {
            let k = rng.gen_range(3..=6.min(remaining));
            let states = (1usize << (k - 1)) + 1 + rng.gen_range(0..1 << (k - 1)) / 2;
            deficit -= k as f64 - (states as f64).log2();
            (BlockKind::Fsm, random_fsm(n, &name, k, states.min(1 << k), &feed_pool, rng))
        } else {
            let k = if remaining <= 3 { remaining } else { rng.gen_range(3..=8.min(remaining)) };
            if rng.gen_bool(0.5) {
                (BlockKind::Counter, binary_counter(n, &name, k, feed))
            } else {
                (BlockKind::Shift, shift_register(n, &name, k, feed))
            }
        };
        deficit = deficit.max(0.0);
        remaining -= group.1.len();
        feed_pool.extend(group.1.iter().copied().take(2));
        groups.push(group);
        idx += 1;
    }
    groups
}

/// Injects a *sequentially redundant* term into `signal`: ORs in a whole
/// random cone gated by the AND of two distinct latches of a one-hot
/// group. The gate condition is constant 0 on every reachable state but
/// not structurally so, which makes the entire gated cone dead weight that
/// combinational cleanup cannot remove — precisely the slack
/// unreachable-state don't cares recover. Returns `signal` unchanged if no
/// one-hot group with two latches is available.
pub fn inject_state_redundancy(
    n: &mut Netlist,
    prefix: &str,
    signal: SignalId,
    groups: &[(BlockKind, Vec<SignalId>)],
    pool: &[SignalId],
    rng: &mut StdRng,
) -> SignalId {
    let one_hot: Vec<&Vec<SignalId>> = groups
        .iter()
        .filter(|(kind, g)| *kind == BlockKind::OneHotRing && g.len() >= 2)
        .map(|(_, g)| g)
        .collect();
    if one_hot.is_empty() {
        return signal;
    }
    let g = one_hot[rng.gen_range(0..one_hot.len())];
    let i = rng.gen_range(0..g.len());
    let j = (i + 1 + rng.gen_range(0..g.len() - 1)) % g.len();
    let never = n.add_gate(format!("{prefix}_red"), GateKind::And, vec![g[i], g[j]]);
    // Keep the junk cone's support tiny so the host cone stays
    // collapsible; the latches of the gating condition already widen it.
    let junk_pool = &pool[..pool.len().min(3)];
    let junk = if junk_pool.is_empty() {
        never
    } else {
        random_cone(n, &format!("{prefix}_junk"), junk_pool, 2, rng)
    };
    let gated = n.add_gate(format!("{prefix}_redand"), GateKind::And, vec![never, junk]);
    n.add_gate(format!("{prefix}_redor"), GateKind::Or, vec![signal, gated])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbi_netlist::sim::Simulator;

    fn harness() -> (Netlist, SignalId) {
        let mut n = Netlist::new("blocks");
        let en = n.add_input("en");
        (n, en)
    }

    fn finish(n: &mut Netlist, state: &[SignalId]) {
        // Reference all state so nothing is dead.
        n.add_output("probe", state[state.len() - 1]);
    }

    #[test]
    fn ring_stays_one_hot() {
        let (mut n, en) = harness();
        let q = one_hot_ring(&mut n, "r", 5, en);
        finish(&mut n, &q);
        let mut sim = Simulator::new(&n);
        for _ in 0..12 {
            sim.step(&[u64::MAX]);
            let hot: u32 = q
                .iter()
                .map(|&s| (sim.state()[n.latches().iter().position(|&l| l == s).unwrap()] & 1) as u32)
                .sum();
            assert_eq!(hot, 1, "exactly one latch hot at all times");
        }
    }

    #[test]
    fn johnson_visits_2k_states() {
        let (mut n, en) = harness();
        let q = johnson_counter(&mut n, "j", 4, en);
        finish(&mut n, &q);
        let mut sim = Simulator::new(&n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let code: u32 = q
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let idx = n.latches().iter().position(|&l| l == s).unwrap();
                    ((sim.state()[idx] & 1) as u32) << i
                })
                .sum();
            seen.insert(code);
            sim.step(&[u64::MAX]);
        }
        assert_eq!(seen.len(), 8, "a 4-bit Johnson counter cycles 8 states");
    }

    #[test]
    fn binary_counter_counts() {
        let (mut n, en) = harness();
        let q = binary_counter(&mut n, "c", 3, en);
        finish(&mut n, &q);
        let mut sim = Simulator::new(&n);
        let read = |sim: &Simulator, n: &Netlist| -> u32 {
            q.iter()
                .enumerate()
                .map(|(i, &s)| {
                    let idx = n.latches().iter().position(|&l| l == s).unwrap();
                    ((sim.state()[idx] & 1) as u32) << i
                })
                .sum()
        };
        for expect in 0..10u32 {
            assert_eq!(read(&sim, &n), expect % 8);
            sim.step(&[u64::MAX]);
        }
    }

    #[test]
    fn shift_register_delays_data() {
        let (mut n, _) = harness();
        let data = n.add_input("data");
        let q = shift_register(&mut n, "s", 3, data);
        n.add_output("tap", q[2]);
        let mut sim = Simulator::new(&n);
        // Feed a single 1 on pattern bit 0; outputs are sampled before the
        // clock edge, so the tap (stage 3) sees the 1 on the 4th step.
        let outs: Vec<u64> = [1u64, 0, 0, 0, 0]
            .iter()
            .map(|&d| sim.step(&[0, d])[0] & 1)
            .collect();
        assert_eq!(outs, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn fsm_respects_state_bound() {
        let (mut n, en) = harness();
        let mut rng = StdRng::seed_from_u64(7);
        let q = random_fsm(&mut n, "f", 4, 5, &[en], &mut rng);
        finish(&mut n, &q);
        assert!(n.validate().is_ok());
        let mut sim = Simulator::new(&n);
        let mut words = vec![0u64; 1];
        for step in 0..64 {
            words[0] = if step % 3 == 0 { u64::MAX } else { 0x5555_5555_5555_5555 };
            sim.step(&words);
            // Decode all 64 simulated patterns and check the bound.
            for bit in 0..64 {
                let code: usize = q
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let idx = n.latches().iter().position(|&l| l == s).unwrap();
                        (((sim.state()[idx] >> bit) & 1) as usize) << i
                    })
                    .sum();
                assert!(code < 5, "state {code} out of range at step {step}");
            }
        }
    }

    #[test]
    fn random_cone_is_deterministic() {
        let build = || {
            let (mut n, en) = harness();
            let b = n.add_input("b");
            let mut rng = StdRng::seed_from_u64(99);
            let root = random_cone(&mut n, "k", &[en, b], 3, &mut rng);
            n.add_output("o", root);
            symbi_netlist::bench::write(&n)
        };
        assert_eq!(build(), build());
    }
}
