//! "Industrial-like" macro blocks: synthetic stand-ins for the six IBM
//! designs of Table 3.2, matching input/output/latch counts and the
//! AND-node budget of the paper's and/inv expansion column.

use crate::blocks::{inject_state_redundancy, random_cone, state_machine_soup};
use crate::iscas_like::name_seed;
use crate::CircuitSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbi_netlist::stats::stats;
use symbi_netlist::{GateKind, Netlist, SignalId};

/// A Table 3.2 circuit: interface plus the AND-expansion budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndustrialSpec {
    /// Interface parameters.
    pub base: CircuitSpec,
    /// Target AND2 count of the and/inv expansion.
    pub and_nodes: usize,
}

/// The Table 3.2 parameters.
pub const SPECS: [IndustrialSpec; 6] = [
    IndustrialSpec {
        base: CircuitSpec { name: "seq4", inputs: 108, outputs: 202, latches: 253 },
        and_nodes: 1845,
    },
    IndustrialSpec {
        base: CircuitSpec { name: "seq5", inputs: 66, outputs: 12, latches: 93 },
        and_nodes: 925,
    },
    IndustrialSpec {
        base: CircuitSpec { name: "seq6", inputs: 183, outputs: 74, latches: 142 },
        and_nodes: 811,
    },
    IndustrialSpec {
        base: CircuitSpec { name: "seq7", inputs: 173, outputs: 116, latches: 423 },
        and_nodes: 3173,
    },
    IndustrialSpec {
        base: CircuitSpec { name: "seq8", inputs: 140, outputs: 23, latches: 201 },
        and_nodes: 2922,
    },
    IndustrialSpec {
        base: CircuitSpec { name: "seq9", inputs: 212, outputs: 124, latches: 353 },
        and_nodes: 3896,
    },
];

/// Generates the stand-in block for `spec`. The AND budget is met within
/// about ±15% by growing intermediate logic until the and/inv expansion
/// reaches the target.
pub fn generate(spec: &IndustrialSpec) -> Netlist {
    let base = spec.base;
    let mut rng = StdRng::seed_from_u64(name_seed(base.name) ^ 0x9e3779b97f4a7c15);
    let mut n = Netlist::new(base.name);
    let inputs: Vec<SignalId> =
        (0..base.inputs).map(|i| n.add_input(format!("pi{i}"))).collect();
    let soup = state_machine_soup(&mut n, "st", base.latches, &inputs, &mut rng);
    let groups: Vec<Vec<SignalId>> = soup.iter().map(|(_, g)| g.clone()).collect();
    let all_state: Vec<SignalId> = groups.iter().flatten().copied().collect();

    // Grow intermediate logic toward the AND budget; outputs then read
    // these cones so the logic is observable.
    let mut intermediates: Vec<SignalId> = Vec::new();
    let mut pool: Vec<SignalId> = inputs.clone();
    pool.extend(all_state.iter().copied());
    let mut k = 0usize;
    while stats(&n).aig_ands < spec.and_nodes {
        let mut local: Vec<SignalId> = Vec::with_capacity(8);
        for _ in 0..6 {
            local.push(pool[rng.gen_range(0..pool.len())]);
        }
        if !intermediates.is_empty() {
            local.push(intermediates[rng.gen_range(0..intermediates.len())]);
        }
        let mut root =
            random_cone(&mut n, &format!("mid{k}"), &local, rng.gen_range(2..=4), &mut rng);
        // Half the intermediate cones carry sequentially redundant terms
        // (the slack Algorithm 1's don't cares recover, as in the paper's
        // industrial designs).
        if rng.gen_bool(0.5) {
            root = inject_state_redundancy(&mut n, &format!("mid{k}"), root, &soup, &local, &mut rng);
        }
        intermediates.push(root);
        k += 1;
    }

    // Outputs: read intermediates, with round-robin group taps for
    // observability of every latch.
    for j in 0..base.outputs {
        let mut taps: Vec<SignalId> = Vec::new();
        if !intermediates.is_empty() {
            taps.push(intermediates[j % intermediates.len()]);
            taps.push(intermediates[rng.gen_range(0..intermediates.len())]);
        }
        let g = &groups[j % groups.len()];
        taps.push(g[g.len() - 1]);
        taps.sort_unstable();
        taps.dedup();
        let root = if taps.len() == 1 {
            taps[0]
        } else {
            n.add_gate(format!("po{j}_mix"), GateKind::Xor, taps)
        };
        n.add_output(format!("po{j}"), root);
    }
    // Fold any group not covered round-robin into the last output.
    if base.outputs < groups.len() {
        let taps: Vec<SignalId> =
            groups.iter().skip(base.outputs).map(|g| g[g.len() - 1]).collect();
        if !taps.is_empty() {
            let tap = if taps.len() == 1 {
                taps[0]
            } else {
                n.add_gate("obs_tap", GateKind::Or, taps)
            };
            let last = n.num_outputs() - 1;
            let (_, old_sig) = n.outputs()[last].clone();
            let merged = n.add_gate("obs_merge", GateKind::Xor, vec![old_sig, tap]);
            n.set_output_signal(last, merged);
        }
    }
    debug_assert!(n.validate().is_ok());
    n
}

/// Generates all six Table 3.2 stand-ins.
pub fn suite() -> Vec<Netlist> {
    SPECS.iter().map(generate).collect()
}

/// Generates one stand-in by name.
pub fn by_name(name: &str) -> Option<Netlist> {
    SPECS.iter().find(|s| s.base.name == name).map(generate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_match_specs() {
        // The two smallest blocks keep the test fast; the suite() path is
        // exercised by the benches.
        for spec in [&SPECS[1], &SPECS[2]] {
            let n = generate(spec);
            assert_eq!(n.num_inputs(), spec.base.inputs, "{}", spec.base.name);
            assert_eq!(n.num_outputs(), spec.base.outputs, "{}", spec.base.name);
            assert_eq!(n.num_latches(), spec.base.latches, "{}", spec.base.name);
            assert!(n.validate().is_ok());
        }
    }

    #[test]
    fn and_budget_roughly_met() {
        let spec = &SPECS[1]; // seq5: 925 ANDs
        let n = generate(spec);
        let s = stats(&n);
        assert!(
            s.aig_ands >= spec.and_nodes && s.aig_ands <= spec.and_nodes * 13 / 10,
            "seq5 AND2 count {} vs budget {}",
            s.aig_ands,
            spec.and_nodes
        );
    }

    #[test]
    fn deterministic() {
        let a = symbi_netlist::bench::write(&generate(&SPECS[2]));
        let b = symbi_netlist::bench::write(&generate(&SPECS[2]));
        assert_eq!(a, b);
    }
}
