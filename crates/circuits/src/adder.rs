//! Ripple-carry adders — the workload of the paper's §3.4.2 profile
//! (XOR decomposition of 16-bit-adder sum bits).

use symbi_netlist::{GateKind, Netlist};

/// Builds an `n`-bit ripple-carry adder netlist with carry-in: inputs
/// `cin, a0, b0, a1, b1, …`; outputs `s0..s{n-1}` and `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry(n_bits: usize) -> Netlist {
    assert!(n_bits >= 1, "adder width must be positive");
    let mut n = Netlist::new(format!("add{n_bits}"));
    let cin = n.add_input("cin");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(n_bits);
    for i in 0..n_bits {
        let a = n.add_input(format!("a{i}"));
        let b = n.add_input(format!("b{i}"));
        let axb = n.add_gate(format!("axb{i}"), GateKind::Xor, vec![a, b]);
        let sum = n.add_gate(format!("s{i}"), GateKind::Xor, vec![axb, carry]);
        let ab = n.add_gate(format!("ab{i}"), GateKind::And, vec![a, b]);
        let ac = n.add_gate(format!("ac{i}"), GateKind::And, vec![axb, carry]);
        carry = n.add_gate(format!("c{i}"), GateKind::Or, vec![ab, ac]);
        sums.push(sum);
    }
    for (i, &s) in sums.iter().enumerate() {
        n.add_output(format!("s{i}"), s);
    }
    n.add_output("cout", carry);
    n
}

/// The number of inputs the cone of sum bit `i` reads (`2i + 3`, matching
/// the "No. of Inputs" column of the paper's adder table: s2 → 7,
/// s4 → 11, …, s16 → 33).
pub fn sum_bit_support(i: usize) -> usize {
    2 * i + 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::sim::Simulator;

    #[test]
    fn adds_correctly() {
        let n = ripple_carry(4);
        let mut sim = Simulator::new(&n);
        for (a, b, cin) in [(3u64, 5u64, 0u64), (15, 1, 0), (7, 7, 1), (0, 0, 1)] {
            let mut inputs = vec![0u64; 9];
            inputs[0] = cin.wrapping_neg(); // all-ones if cin
            for i in 0..4 {
                inputs[1 + 2 * i] = (a >> i & 1).wrapping_neg();
                inputs[2 + 2 * i] = (b >> i & 1).wrapping_neg();
            }
            let out = sim.eval_comb(&inputs);
            let expect = a + b + cin;
            for (i, &bit) in out.iter().take(4).enumerate() {
                assert_eq!(bit & 1, expect >> i & 1, "sum bit {i} of {a}+{b}+{cin}");
            }
            assert_eq!(out[4] & 1, expect >> 4 & 1, "carry out of {a}+{b}+{cin}");
        }
    }

    #[test]
    fn support_formula_matches_structure() {
        let n = ripple_carry(8);
        for i in 0..8 {
            let s = n.signal(&format!("s{i}")).unwrap();
            assert_eq!(n.support(s).len(), sum_bit_support(i), "sum bit {i}");
        }
    }
}
