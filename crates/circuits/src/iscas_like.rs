//! ISCAS'89-like sequential circuits: synthetic stand-ins for the eight
//! Table 3.1 benchmarks, matching their input/output/latch counts.
//!
//! The original netlists are not redistributable, so each circuit is
//! regenerated deterministically (seeded by name) from a mix of state
//! blocks with widely varying reachable fractions plus random multi-level
//! output logic. See `DESIGN.md` ("Substitutions") for why this preserves
//! the experiment.

use crate::blocks::{inject_state_redundancy, random_cone, state_machine_soup_targeted};
use crate::CircuitSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbi_netlist::{GateKind, Netlist, SignalId};

/// Paper-reported `log2 states` per circuit, used to calibrate how
/// constrained each stand-in's reachable space is (same order as
/// [`SPECS`]).
pub const TARGET_LOG2_STATES: [f64; 8] = [12.0, 14.0, 11.0, 5.0, 13.0, 31.0, 125.0, 141.0];

/// The Table 3.1 circuit parameters: name, inputs/outputs, latches.
pub const SPECS: [CircuitSpec; 8] = [
    CircuitSpec { name: "s344", inputs: 10, outputs: 11, latches: 15 },
    CircuitSpec { name: "s526", inputs: 3, outputs: 6, latches: 21 },
    CircuitSpec { name: "s713", inputs: 36, outputs: 23, latches: 19 },
    CircuitSpec { name: "s838", inputs: 36, outputs: 2, latches: 32 },
    CircuitSpec { name: "s953", inputs: 17, outputs: 23, latches: 29 },
    CircuitSpec { name: "s1269", inputs: 18, outputs: 10, latches: 37 },
    CircuitSpec { name: "s5378", inputs: 36, outputs: 49, latches: 163 },
    CircuitSpec { name: "s9234", inputs: 36, outputs: 39, latches: 145 },
];

/// Deterministic seed derived from a circuit name (FNV-1a).
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generates the stand-in circuit for `spec`.
pub fn generate(spec: &CircuitSpec) -> Netlist {
    let mut rng = StdRng::seed_from_u64(name_seed(spec.name));
    let mut n = Netlist::new(spec.name);
    let inputs: Vec<SignalId> =
        (0..spec.inputs).map(|i| n.add_input(format!("pi{i}"))).collect();
    let target = SPECS
        .iter()
        .position(|s| s.name == spec.name)
        .map(|i| TARGET_LOG2_STATES[i])
        .unwrap_or(spec.latches as f64 * 0.7);
    let soup =
        state_machine_soup_targeted(&mut n, "st", spec.latches, target, &inputs, &mut rng);
    let groups: Vec<Vec<SignalId>> = soup.iter().map(|(_, g)| g.clone()).collect();
    let all_state: Vec<SignalId> = groups.iter().flatten().copied().collect();

    // Output cones: each output reads a few inputs plus latches from the
    // groups assigned to it round-robin, so every group is observable (no
    // dead latches) and cones straddle group boundaries.
    for j in 0..spec.outputs {
        let mut pool: Vec<SignalId> = Vec::new();
        for _ in 0..3.min(inputs.len()) {
            pool.push(inputs[rng.gen_range(0..inputs.len())]);
        }
        let primary = &groups[j % groups.len()];
        pool.extend(primary.iter().copied().take(3));
        let secondary = &groups[(j + 1) % groups.len()];
        pool.extend(secondary.iter().copied().take(2));
        pool.push(all_state[rng.gen_range(0..all_state.len())]);
        let mut root =
            random_cone(&mut n, &format!("po{j}"), &pool, rng.gen_range(2..=3), &mut rng);
        // Roughly a third of the outputs carry a sequentially redundant
        // term that only unreachable-state don't cares can remove.
        if rng.gen_bool(0.35) {
            root = inject_state_redundancy(&mut n, &format!("po{j}"), root, &soup, &pool, &mut rng);
        }
        // Force observability of the primary group: the cone samples its
        // pool randomly, so the tap is XORed in explicitly.
        let tapped =
            n.add_gate(format!("po{j}_tap"), GateKind::Xor, vec![root, primary[primary.len() - 1]]);
        n.add_output(format!("po{j}"), tapped);
    }
    // If there are more groups than outputs, fold the uncovered groups
    // into the last output through an extra OR tap so nothing is dead.
    if spec.outputs < groups.len() {
        let mut taps: Vec<SignalId> = Vec::new();
        for g in groups.iter().skip(spec.outputs) {
            taps.push(g[g.len() - 1]);
        }
        if !taps.is_empty() {
            let tap = if taps.len() == 1 {
                taps[0]
            } else {
                n.add_gate("obs_tap", GateKind::Or, taps)
            };
            let last = n.num_outputs() - 1;
            let (_, old_sig) = n.outputs()[last].clone();
            let merged = n.add_gate("obs_merge", GateKind::Xor, vec![old_sig, tap]);
            n.set_output_signal(last, merged);
        }
    }
    debug_assert!(n.validate().is_ok());
    n
}

/// Generates all eight Table 3.1 stand-ins.
pub fn suite() -> Vec<Netlist> {
    SPECS.iter().map(generate).collect()
}

/// Generates one stand-in by name.
pub fn by_name(name: &str) -> Option<Netlist> {
    SPECS.iter().find(|s| s.name == name).map(generate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::clean;

    #[test]
    fn interfaces_match_specs() {
        for spec in &SPECS {
            let n = generate(spec);
            assert_eq!(n.num_inputs(), spec.inputs, "{}", spec.name);
            assert_eq!(n.num_outputs(), spec.outputs, "{}", spec.name);
            assert_eq!(n.num_latches(), spec.latches, "{}", spec.name);
            assert!(n.validate().is_ok(), "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = symbi_netlist::bench::write(&generate(&SPECS[0]));
        let b = symbi_netlist::bench::write(&generate(&SPECS[0]));
        assert_eq!(a, b);
    }

    #[test]
    fn circuits_survive_cleanup_mostly_intact() {
        // Cleanup may trim a few constant/duplicate latches but must not
        // gut the design.
        for spec in SPECS.iter().take(5) {
            let n = generate(spec);
            let (cleaned, _) = clean::clean(&n);
            assert!(
                cleaned.num_latches() * 10 >= spec.latches * 7,
                "{}: {} of {} latches survive",
                spec.name,
                cleaned.num_latches(),
                spec.latches
            );
            assert!(cleaned.num_gates() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn bench_round_trip() {
        let n = generate(&SPECS[1]);
        let text = symbi_netlist::bench::write(&n);
        let n2 = symbi_netlist::bench::parse(&text).expect("round trip");
        assert!(symbi_netlist::sim::random_co_simulation(&n, &n2, 16, 5));
    }

    #[test]
    fn name_seed_is_stable() {
        assert_eq!(name_seed("s344"), name_seed("s344"));
        assert_ne!(name_seed("s344"), name_seed("s526"));
    }
}
