//! Deterministic benchmark-circuit generators for the `symbi` suite.
//!
//! The paper evaluates on the ISCAS'89 sequential benchmarks and on
//! proprietary IBM macro-blocks; neither is redistributable here, so this
//! crate generates **synthetic stand-ins with the same interface
//! parameters** (input/output/latch counts, and AND-node budgets for the
//! industrial set). The generators are seeded from the circuit name, so
//! every build reproduces bit-identical netlists.
//!
//! What matters for the paper's experiments is preserved by construction:
//!
//! - realistic multi-level next-state and output logic mixing primary
//!   inputs with state,
//! - *structured* state: one-hot rings, Johnson counters, and FSMs leave
//!   large unreachable spaces; binary counters and shift registers do not
//!   — the mix determines how much reachability analysis can help, which
//!   is exactly the effect Table 3.1 measures.
//!
//! Modules:
//!
//! - [`blocks`]: sequential building blocks (counters, rings, shifters,
//!   random FSMs) and random combinational cones,
//! - [`iscas_like`]: the eight Table 3.1 stand-ins (`s344` … `s9234`),
//! - [`industrial`]: the six Table 3.2 stand-ins (`seq4` … `seq9`),
//! - [`mux`] / [`adder`]: the parametric circuits profiled in §3.4.

pub mod adder;
pub mod blocks;
pub mod industrial;
pub mod iscas_like;
pub mod mux;

/// Interface parameters of a generated circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name (also the generator seed).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Latches.
    pub latches: usize,
}
