//! Parametric multiplexers — the workload of the paper's §3.4.1 profile
//! (OR decomposition of `2^k`-way multiplexers, control width 2..6).

use symbi_netlist::{GateKind, Netlist, SignalId};

/// Builds a `2^k`-way multiplexer netlist: inputs `s0..s{k-1}` (controls)
/// then `d0..d{2^k-1}` (data), single output `f`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 16`.
pub fn mux(k: usize) -> Netlist {
    assert!((1..=16).contains(&k), "control width {k} out of range");
    let width = 1usize << k;
    let mut n = Netlist::new(format!("mux{k}"));
    let controls: Vec<SignalId> = (0..k).map(|i| n.add_input(format!("s{i}"))).collect();
    let data: Vec<SignalId> = (0..width).map(|i| n.add_input(format!("d{i}"))).collect();
    let inv_controls: Vec<SignalId> = controls
        .iter()
        .enumerate()
        .map(|(i, &c)| n.add_gate(format!("ns{i}"), GateKind::Not, vec![c]))
        .collect();
    let mut terms = Vec::with_capacity(width);
    for (i, &d) in data.iter().enumerate() {
        let mut fanins: Vec<SignalId> = (0..k)
            .map(|j| if i >> j & 1 == 1 { controls[j] } else { inv_controls[j] })
            .collect();
        fanins.push(d);
        terms.push(n.add_gate(format!("t{i}"), GateKind::And, fanins));
    }
    let f = n.add_gate("f", GateKind::Or, terms);
    n.add_output("f", f);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::sim::Simulator;

    #[test]
    fn mux_selects_data_line() {
        let n = mux(2);
        let mut sim = Simulator::new(&n);
        // Inputs: s0, s1, d0..d3. Select line 2 (s0=0, s1=1), d2=1.
        let mut inputs = vec![0u64; 6];
        inputs[1] = u64::MAX; // s1
        inputs[2 + 2] = u64::MAX; // d2
        let out = sim.eval_comb(&inputs);
        assert_eq!(out[0], u64::MAX);
        // Same controls, d2=0, d3=1: output 0.
        let mut inputs = vec![0u64; 6];
        inputs[1] = u64::MAX;
        inputs[2 + 3] = u64::MAX;
        let out = sim.eval_comb(&inputs);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn interface_counts() {
        for k in 1..=4 {
            let n = mux(k);
            assert_eq!(n.num_inputs(), k + (1 << k));
            assert_eq!(n.num_outputs(), 1);
            assert_eq!(n.num_latches(), 0);
            assert!(n.validate().is_ok());
        }
    }
}
