//! Structural pre-processing: the paper's "structurally pre-processed to
//! remove cloned, dead, and constant latches" (§3.6), plus constant
//! propagation, buffer collapsing, and structural hashing.
//!
//! [`clean`] rebuilds the netlist from scratch, iterating until no further
//! simplification applies, and reports what was removed.

use crate::{GateKind, Netlist, NodeKind, SignalId};
use std::collections::{HashMap, HashSet};

/// What one [`clean`] run removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanReport {
    /// Latches unreachable from any primary output.
    pub dead_latches: usize,
    /// Latches proven to hold a constant (next state constant and equal to
    /// the initial value, or self-looped).
    pub constant_latches: usize,
    /// Latches merged into an identical twin (same next-state signal and
    /// initial value).
    pub cloned_latches: usize,
    /// Gates removed by constant propagation, deduplication, or death.
    pub gates_removed: usize,
    /// Number of rebuild iterations until fixpoint.
    pub iterations: usize,
}

/// Either an existing signal in the rebuilt netlist or a known constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    Const(bool),
    Sig(SignalId),
}

/// Builder wrapper that hash-conses gates and folds constants while the
/// cleaned netlist is reconstructed.
struct Rebuilder {
    out: Netlist,
    hash: HashMap<(GateKind, Vec<SignalId>), SignalId>,
    not_of: HashMap<SignalId, SignalId>,
    const_sigs: [Option<SignalId>; 2],
}

impl Rebuilder {
    fn new(name: &str) -> Self {
        Rebuilder {
            out: Netlist::new(name),
            hash: HashMap::new(),
            not_of: HashMap::new(),
            const_sigs: [None, None],
        }
    }

    fn negate(&mut self, r: Repr) -> Repr {
        match r {
            Repr::Const(b) => Repr::Const(!b),
            Repr::Sig(s) => {
                if let Some(&n) = self.not_of.get(&s) {
                    return Repr::Sig(n);
                }
                let name = self.out.fresh_name("clean_n");
                let n = self.out.add_gate(name, GateKind::Not, vec![s]);
                self.not_of.insert(s, n);
                self.not_of.insert(n, s);
                Repr::Sig(n)
            }
        }
    }

    fn gate(&mut self, kind: GateKind, fanins: Vec<Repr>, preferred_name: &str) -> Repr {
        match kind {
            GateKind::Buf => fanins[0],
            GateKind::Not => self.negate(fanins[0]),
            GateKind::And | GateKind::Nand => {
                let inner = self.and_like(fanins, preferred_name);
                if kind == GateKind::Nand {
                    self.negate(inner)
                } else {
                    inner
                }
            }
            GateKind::Or | GateKind::Nor => {
                let inner = self.or_like(fanins, preferred_name);
                if kind == GateKind::Nor {
                    self.negate(inner)
                } else {
                    inner
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let inner = self.xor_like(fanins, preferred_name);
                if kind == GateKind::Xnor {
                    self.negate(inner)
                } else {
                    inner
                }
            }
        }
    }

    fn and_like(&mut self, fanins: Vec<Repr>, name: &str) -> Repr {
        let mut sigs: Vec<SignalId> = Vec::new();
        for f in fanins {
            match f {
                Repr::Const(false) => return Repr::Const(false),
                Repr::Const(true) => {}
                Repr::Sig(s) => sigs.push(s),
            }
        }
        sigs.sort_unstable();
        sigs.dedup();
        // x · ¬x = 0 via the inverter registry.
        for &s in &sigs {
            if let Some(&ns) = self.not_of.get(&s) {
                if sigs.binary_search(&ns).is_ok() {
                    return Repr::Const(false);
                }
            }
        }
        match sigs.len() {
            0 => Repr::Const(true),
            1 => Repr::Sig(sigs[0]),
            _ => Repr::Sig(self.hashed(GateKind::And, sigs, name)),
        }
    }

    fn or_like(&mut self, fanins: Vec<Repr>, name: &str) -> Repr {
        let mut sigs: Vec<SignalId> = Vec::new();
        for f in fanins {
            match f {
                Repr::Const(true) => return Repr::Const(true),
                Repr::Const(false) => {}
                Repr::Sig(s) => sigs.push(s),
            }
        }
        sigs.sort_unstable();
        sigs.dedup();
        for &s in &sigs {
            if let Some(&ns) = self.not_of.get(&s) {
                if sigs.binary_search(&ns).is_ok() {
                    return Repr::Const(true);
                }
            }
        }
        match sigs.len() {
            0 => Repr::Const(false),
            1 => Repr::Sig(sigs[0]),
            _ => Repr::Sig(self.hashed(GateKind::Or, sigs, name)),
        }
    }

    fn xor_like(&mut self, fanins: Vec<Repr>, name: &str) -> Repr {
        let mut parity = false;
        let mut counts: HashMap<SignalId, usize> = HashMap::new();
        for f in fanins {
            match f {
                Repr::Const(b) => parity ^= b,
                Repr::Sig(s) => *counts.entry(s).or_insert(0) += 1,
            }
        }
        let mut sigs: Vec<SignalId> =
            counts.into_iter().filter(|&(_, c)| c % 2 == 1).map(|(s, _)| s).collect();
        sigs.sort_unstable();
        let base = match sigs.len() {
            0 => Repr::Const(false),
            1 => Repr::Sig(sigs[0]),
            _ => Repr::Sig(self.hashed(GateKind::Xor, sigs, name)),
        };
        if parity {
            self.negate(base)
        } else {
            base
        }
    }

    fn hashed(&mut self, kind: GateKind, sigs: Vec<SignalId>, name: &str) -> SignalId {
        if let Some(&s) = self.hash.get(&(kind, sigs.clone())) {
            return s;
        }
        let gate_name = if self.out.signal(name).is_none() {
            name.to_string()
        } else {
            self.out.fresh_name("clean_g")
        };
        let s = self.out.add_gate(gate_name, kind, sigs.clone());
        self.hash.insert((kind, sigs), s);
        s
    }

    fn materialize(&mut self, r: Repr, name_hint: &str) -> SignalId {
        match r {
            Repr::Sig(s) => s,
            Repr::Const(b) => {
                if let Some(s) = self.const_sigs[usize::from(b)] {
                    return s;
                }
                let name = if self.out.signal(name_hint).is_none() {
                    name_hint.to_string()
                } else {
                    self.out.fresh_name("clean_c")
                };
                let s = self.out.add_const(name, b);
                self.const_sigs[usize::from(b)] = Some(s);
                s
            }
        }
    }
}

/// Runs one rebuild pass; returns the new netlist and whether anything
/// changed structurally.
fn clean_once(n: &Netlist, report: &mut CleanReport) -> Netlist {
    // --- Latch analyses on the input netlist -------------------------
    // Liveness: transitive fanin of outputs, traversing latch next edges.
    let mut live: HashSet<SignalId> = HashSet::new();
    let mut stack: Vec<SignalId> = n.outputs().iter().map(|&(_, s)| s).collect();
    while let Some(s) = stack.pop() {
        if !live.insert(s) {
            continue;
        }
        stack.extend(n.fanins(s).iter().copied());
    }

    // Constant latches: self-loop holds init; constant next equal to init.
    // (A constant next *different* from init is constant only from cycle 1
    // on; it is left alone, as the paper's conservative cleanup would.)
    let mut latch_value: HashMap<SignalId, Repr> = HashMap::new();
    for &l in n.latches() {
        let next = n.latch_next(l).expect("validated netlist");
        let init = n.latch_init(l);
        if next == l {
            latch_value.insert(l, Repr::Const(init));
        } else if let NodeKind::Const(c) = n.kind(next) {
            if c == init {
                latch_value.insert(l, Repr::Const(c));
            }
        }
    }

    // Cloned latches: identical (next, init) merge into the first.
    let mut clone_rep: HashMap<(SignalId, bool), SignalId> = HashMap::new();
    let mut clone_of: HashMap<SignalId, SignalId> = HashMap::new();
    for &l in n.latches() {
        if latch_value.contains_key(&l) || !live.contains(&l) {
            continue;
        }
        let key = (n.latch_next(l).expect("validated"), n.latch_init(l));
        match clone_rep.get(&key) {
            Some(&rep) => {
                clone_of.insert(l, rep);
            }
            None => {
                clone_rep.insert(key, l);
            }
        }
    }

    // --- Rebuild ------------------------------------------------------
    let mut rb = Rebuilder::new(n.name());
    let mut map: HashMap<SignalId, Repr> = HashMap::new();
    for &i in n.inputs() {
        // Inputs always survive so the interface is stable.
        let s = rb.out.add_input(n.signal_name(i).to_string());
        map.insert(i, Repr::Sig(s));
    }
    for &l in n.latches() {
        if let Some(&v) = latch_value.get(&l) {
            map.insert(l, v);
            report.constant_latches += usize::from(live.contains(&l));
            continue;
        }
        if !live.contains(&l) {
            report.dead_latches += 1;
            continue;
        }
        if clone_of.contains_key(&l) {
            report.cloned_latches += 1;
            continue; // resolved after representatives exist
        }
        let s = rb.out.add_latch(n.signal_name(l).to_string(), n.latch_init(l));
        map.insert(l, Repr::Sig(s));
    }
    for (&l, &rep) in &clone_of {
        let v = map[&rep];
        map.insert(l, v);
    }
    // Constants.
    for s in n.signals() {
        if let NodeKind::Const(b) = n.kind(s) {
            map.insert(s, Repr::Const(b));
        }
    }
    // Gates in topo order.
    for g in n.topo_order().expect("validated netlist") {
        if !live.contains(&g) {
            report.gates_removed += 1;
            continue;
        }
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
        let fanins: Vec<Repr> = n.fanins(g).iter().map(|f| map[f]).collect();
        let r = rb.gate(kind, fanins, n.signal_name(g));
        map.insert(g, r);
    }
    // Latch next wiring.
    for &l in n.latches() {
        if let Repr::Sig(new_l) = map.get(&l).copied().unwrap_or(Repr::Const(false)) {
            if clone_of.contains_key(&l) || latch_value.contains_key(&l) {
                continue;
            }
            if !matches!(rb.out.kind(new_l), NodeKind::Latch { .. }) {
                continue;
            }
            let next_repr = map[&n.latch_next(l).expect("validated")];
            let hint = format!("{}_next", n.signal_name(l));
            let next_sig = rb.materialize(next_repr, &hint);
            rb.out.set_latch_next(new_l, next_sig);
        }
    }
    // Outputs.
    for (name, sig) in n.outputs() {
        let repr = map[sig];
        let hint = format!("{name}_const");
        let s = rb.materialize(repr, &hint);
        rb.out.add_output(name.clone(), s);
    }
    rb.out
}

/// Cleans a netlist to fixpoint. The result has the same primary
/// input/output interface and identical sequential behaviour (checkable
/// with [`crate::sim::random_co_simulation`]).
pub fn clean(n: &Netlist) -> (Netlist, CleanReport) {
    let mut report = CleanReport::default();
    let mut current = n.clone();
    // Fixpoint detection compares serialized forms: equal node counts are
    // not enough, since a pass can rewire without shrinking and expose
    // new simplifications to the next pass.
    let mut fingerprint = crate::bench::write(&current);
    for _ in 0..32 {
        report.iterations += 1;
        let next = clean_once(&current, &mut report);
        let next_fingerprint = crate::bench::write(&next);
        let unchanged = next_fingerprint == fingerprint;
        current = next;
        fingerprint = next_fingerprint;
        if unchanged {
            break;
        }
    }
    (current, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_co_simulation;

    #[test]
    fn dead_latch_removed() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let live = n.add_latch("live", false);
        let dead = n.add_latch("dead", false);
        let d1 = n.add_gate("d1", GateKind::Xor, vec![a, live]);
        let d2 = n.add_gate("d2", GateKind::And, vec![a, dead]);
        n.set_latch_next(live, d1);
        n.set_latch_next(dead, d2);
        n.add_output("o", live);
        let (cleaned, report) = clean(&n);
        assert_eq!(cleaned.num_latches(), 1);
        assert!(report.dead_latches >= 1);
        assert!(random_co_simulation(&n, &cleaned, 16, 3));
    }

    #[test]
    fn constant_self_loop_latch_removed() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        n.set_latch_next(q, q); // holds 0 forever
        let f = n.add_gate("f", GateKind::Or, vec![a, q]);
        n.add_output("o", f);
        let (cleaned, report) = clean(&n);
        assert_eq!(cleaned.num_latches(), 0);
        assert!(report.constant_latches >= 1);
        // f = a + 0 = a: the OR gate should vanish too.
        assert_eq!(cleaned.num_gates(), 0);
        assert!(random_co_simulation(&n, &cleaned, 16, 5));
    }

    #[test]
    fn cloned_latches_merged() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q1 = n.add_latch("q1", false);
        let q2 = n.add_latch("q2", false);
        n.set_latch_next(q1, a);
        n.set_latch_next(q2, a);
        let f = n.add_gate("f", GateKind::Xor, vec![q1, q2]); // always 0
        let g = n.add_gate("g", GateKind::And, vec![q1, a]);
        n.add_output("f", f);
        n.add_output("g", g);
        let (cleaned, report) = clean(&n);
        assert!(report.cloned_latches >= 1);
        assert!(cleaned.num_latches() <= 1);
        assert!(random_co_simulation(&n, &cleaned, 16, 11));
    }

    #[test]
    fn constant_propagation_through_gates() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let zero = n.add_const("zero", false);
        let x = n.add_gate("x", GateKind::And, vec![a, zero]); // 0
        let y = n.add_gate("y", GateKind::Or, vec![x, a]); // a
        let z = n.add_gate("z", GateKind::Xor, vec![y, a]); // 0
        n.add_output("o", z);
        let (cleaned, _) = clean(&n);
        assert_eq!(cleaned.num_gates(), 0);
        assert!(random_co_simulation(&n, &cleaned, 8, 17));
    }

    #[test]
    fn structural_hashing_merges_duplicate_gates() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b]);
        let g2 = n.add_gate("g2", GateKind::And, vec![b, a]);
        let f = n.add_gate("f", GateKind::Xor, vec![g1, g2]); // always 0
        n.add_output("o", f);
        let (cleaned, _) = clean(&n);
        assert_eq!(cleaned.num_gates(), 0, "xor of identical gates is 0");
        assert!(random_co_simulation(&n, &cleaned, 8, 23));
    }

    #[test]
    fn interface_is_preserved() {
        let mut n = Netlist::new("t");
        let _unused = n.add_input("unused");
        let a = n.add_input("a");
        let f = n.add_gate("f", GateKind::Buf, vec![a]);
        n.add_output("o", f);
        let (cleaned, _) = clean(&n);
        assert_eq!(cleaned.num_inputs(), 2, "inputs are interface, never dropped");
        assert_eq!(cleaned.num_outputs(), 1);
        assert!(random_co_simulation(&n, &cleaned, 8, 29));
    }

    #[test]
    fn double_negation_cancelled() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let n1 = n.add_gate("n1", GateKind::Not, vec![a]);
        let n2 = n.add_gate("n2", GateKind::Not, vec![n1]);
        let f = n.add_gate("f", GateKind::And, vec![n2, a]);
        n.add_output("o", f);
        let (cleaned, _) = clean(&n);
        // f = a: everything melts away.
        assert_eq!(cleaned.num_gates(), 0);
        assert!(random_co_simulation(&n, &cleaned, 8, 31));
    }
}
