//! The sequential netlist data structure.

use crate::gate::GateKind;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Handle to a signal (the output net of an input, latch, gate, or
/// constant) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index into the netlist's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// D flip-flop output with the given initial value; its single fanin
    /// (once set) is the next-state function.
    Latch {
        /// Power-up value (ISCAS-89 circuits reset to 0).
        init: bool,
    },
    /// Logic gate.
    Gate(GateKind),
    /// Constant driver.
    Const(bool),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub name: String,
    pub kind: NodeKind,
    pub fanins: Vec<SignalId>,
}

/// Error raised by netlist construction, validation, and the parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A signal name was declared twice. `line` is the 1-based source
    /// line of the second declaration (0 when constructed outside a
    /// parser).
    DuplicateName { name: String, line: usize },
    /// A referenced signal name was never declared. `line` is the 1-based
    /// source line of the reference (0 when constructed outside a parser).
    UnknownSignal { name: String, line: usize },
    /// A gate was given an arity its kind does not allow.
    BadArity { gate: String, kind: GateKind, arity: usize },
    /// A latch was left without a next-state fanin.
    DanglingLatch(String),
    /// The combinational logic contains a cycle through the named signal.
    CombinationalCycle(String),
    /// Malformed input text.
    Syntax { line: usize, message: String },
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::DuplicateName { name, line: 0 } => {
                write!(f, "duplicate signal name `{name}`")
            }
            ParseNetlistError::DuplicateName { name, line } => {
                write!(f, "duplicate signal name `{name}` on line {line}")
            }
            ParseNetlistError::UnknownSignal { name, line: 0 } => {
                write!(f, "unknown signal `{name}`")
            }
            ParseNetlistError::UnknownSignal { name, line } => {
                write!(f, "unknown signal `{name}` on line {line}")
            }
            ParseNetlistError::BadArity { gate, kind, arity } => {
                write!(f, "gate `{gate}` of kind {kind} cannot take {arity} fanins")
            }
            ParseNetlistError::DanglingLatch(n) => {
                write!(f, "latch `{n}` has no next-state fanin")
            }
            ParseNetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through `{n}`")
            }
            ParseNetlistError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseNetlistError {}

/// A synchronous sequential circuit: primary inputs and outputs, D
/// flip-flops ("latches"), and multi-input gates.
///
/// Signals are created through the `add_*` methods and referenced by
/// [`SignalId`]. Names are unique. Latches are created first and wired to
/// their next-state function later with [`Netlist::set_latch_next`], which
/// is what lets state feedback loops be expressed.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    pub(crate) nodes: Vec<Node>,
    inputs: Vec<SignalId>,
    latches: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
    by_name: HashMap<String, SignalId>,
}

impl Netlist {
    /// Creates an empty netlist with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), ..Default::default() }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn insert(&mut self, name: String, kind: NodeKind, fanins: Vec<SignalId>) -> SignalId {
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate signal name `{name}` (use try_* constructors for fallible insertion)"
        );
        let id = SignalId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind, fanins });
        id
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let id = self.insert(name.into(), NodeKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a latch (D flip-flop) with the given initial value. Wire its
    /// next-state fanin later with [`Netlist::set_latch_next`].
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> SignalId {
        let id = self.insert(name.into(), NodeKind::Latch { init }, Vec::new());
        self.latches.push(id);
        id
    }

    /// Sets (or replaces) the next-state fanin of `latch`.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a latch.
    pub fn set_latch_next(&mut self, latch: SignalId, next: SignalId) {
        assert!(
            matches!(self.nodes[latch.index()].kind, NodeKind::Latch { .. }),
            "{latch} is not a latch"
        );
        self.nodes[latch.index()].fanins = vec![next];
    }

    /// Adds a gate.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken or the arity is invalid for `kind`
    /// (unary kinds take exactly one fanin, others at least one).
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: Vec<SignalId>,
    ) -> SignalId {
        let name = name.into();
        let ok = if kind.is_unary() { fanins.len() == 1 } else { !fanins.is_empty() };
        assert!(ok, "gate `{name}` of kind {kind} cannot take {} fanins", fanins.len());
        self.insert(name, NodeKind::Gate(kind), fanins)
    }

    /// Adds a constant driver.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_const(&mut self, name: impl Into<String>, value: bool) -> SignalId {
        self.insert(name.into(), NodeKind::Const(value), Vec::new())
    }

    /// Declares `signal` as a primary output under `name`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: SignalId) {
        self.outputs.push((name.into(), signal));
    }

    /// Redirects primary output `index` to a different signal.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_output_signal(&mut self, index: usize, signal: SignalId) {
        self.outputs[index].1 = signal;
    }

    /// Looks a signal up by name.
    pub fn signal(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The name of a signal.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.nodes[s.index()].name
    }

    /// The driver kind of a signal.
    pub fn kind(&self, s: SignalId) -> NodeKind {
        self.nodes[s.index()].kind
    }

    /// The fanins of a signal (empty for inputs/constants; the single
    /// next-state fanin for wired latches).
    pub fn fanins(&self, s: SignalId) -> &[SignalId] {
        &self.nodes[s.index()].fanins
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Latches in declaration order.
    pub fn latches(&self) -> &[SignalId] {
        &self.latches
    }

    /// Primary outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// Initial value of a latch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a latch.
    pub fn latch_init(&self, s: SignalId) -> bool {
        match self.nodes[s.index()].kind {
            NodeKind::Latch { init } => init,
            _ => panic!("{s} is not a latch"),
        }
    }

    /// Next-state fanin of a latch, if wired.
    pub fn latch_next(&self, s: SignalId) -> Option<SignalId> {
        match self.nodes[s.index()].kind {
            NodeKind::Latch { .. } => self.nodes[s.index()].fanins.first().copied(),
            _ => None,
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (inputs, latches, constants not counted).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Gate(_))).count()
    }

    /// Total number of signals.
    pub fn num_signals(&self) -> usize {
        self.nodes.len()
    }

    /// All signals in creation order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.nodes.len() as u32).map(SignalId)
    }

    /// Signal names safe for serialization, indexed by signal.
    ///
    /// In `.bench`/BLIF text an output whose name differs from its
    /// driving signal becomes a buffer definition of that name, so a
    /// *different* signal that merely shares the name would collide with
    /// the buffer (or, worse, the output would silently rebind to it on
    /// parse-back). Such signals are renamed `<name>__sig`; output and
    /// interface semantics are untouched.
    pub(crate) fn writer_names(&self) -> Vec<String> {
        use std::collections::HashSet;
        let claimed: HashSet<&str> = self
            .outputs()
            .iter()
            .filter(|(name, sig)| name != self.signal_name(*sig))
            .map(|(name, _)| name.as_str())
            .collect();
        let mut taken: HashSet<String> =
            self.signals().map(|s| self.signal_name(s).to_string()).collect();
        taken.extend(self.outputs().iter().map(|(name, _)| name.clone()));
        self.signals()
            .map(|s| {
                let base = self.signal_name(s);
                if !claimed.contains(base) {
                    return base.to_string();
                }
                let mut i = 0usize;
                loop {
                    let candidate = if i == 0 {
                        format!("{base}__sig")
                    } else {
                        format!("{base}__sig{i}")
                    };
                    if taken.insert(candidate.clone()) {
                        return candidate;
                    }
                    i += 1;
                }
            })
            .collect()
    }

    /// Gates in a topological order (every gate after all its fanins;
    /// inputs, latch outputs, and constants are sources).
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError::CombinationalCycle`] if the gate logic
    /// is cyclic.
    pub fn topo_order(&self) -> Result<Vec<SignalId>, ParseNetlistError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut order = Vec::new();
        // Iterative DFS with an explicit stack to survive deep netlists.
        for root in self.signals() {
            if marks[root.index()] != Mark::White {
                continue;
            }
            let mut stack: Vec<(SignalId, usize)> = vec![(root, 0)];
            while let Some(&(s, child)) = stack.last() {
                let node = &self.nodes[s.index()];
                let is_gate = matches!(node.kind, NodeKind::Gate(_));
                if child == 0 {
                    if marks[s.index()] == Mark::Black {
                        stack.pop();
                        continue;
                    }
                    marks[s.index()] = Mark::Grey;
                }
                // Latches break combinational paths: don't descend into
                // their next-state fanin here.
                let fanins: &[SignalId] = if is_gate { &node.fanins } else { &[] };
                if child < fanins.len() {
                    let f = fanins[child];
                    stack.last_mut().expect("nonempty").1 += 1;
                    match marks[f.index()] {
                        Mark::White => stack.push((f, 0)),
                        Mark::Grey => {
                            return Err(ParseNetlistError::CombinationalCycle(
                                self.nodes[f.index()].name.clone(),
                            ))
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks[s.index()] = Mark::Black;
                    if is_gate {
                        order.push(s);
                    }
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Checks structural sanity: every latch wired, every fanin reference
    /// valid, gate logic acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ParseNetlistError> {
        for &l in &self.latches {
            if self.latch_next(l).is_none() {
                return Err(ParseNetlistError::DanglingLatch(
                    self.nodes[l.index()].name.clone(),
                ));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// The combinational support of `s`: the primary inputs and latch
    /// outputs its cone reads (latches are not traversed through).
    pub fn support(&self, s: SignalId) -> Vec<SignalId> {
        let mut seen = HashSet::new();
        let mut leaves = HashSet::new();
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            match self.nodes[x.index()].kind {
                NodeKind::Input | NodeKind::Latch { .. } => {
                    leaves.insert(x);
                }
                NodeKind::Const(_) => {}
                NodeKind::Gate(_) => stack.extend(self.nodes[x.index()].fanins.iter().copied()),
            }
        }
        let mut out: Vec<SignalId> = leaves.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Present-state support: the latches in [`Netlist::support`] — the
    /// `supp_ps(f)` of §3.5.1.
    pub fn support_ps(&self, s: SignalId) -> Vec<SignalId> {
        self.support(s)
            .into_iter()
            .filter(|&x| matches!(self.nodes[x.index()].kind, NodeKind::Latch { .. }))
            .collect()
    }

    /// Fanout lists for every signal (combinational edges plus latch
    /// next-state edges).
    pub fn fanouts(&self) -> Vec<Vec<SignalId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for s in self.signals() {
            for &f in &self.nodes[s.index()].fanins {
                out[f.index()].push(s);
            }
        }
        out
    }

    /// Generates a fresh signal name with the given prefix.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut i = self.nodes.len();
        loop {
            let candidate = format!("{prefix}{i}");
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter2() -> Netlist {
        // 2-bit counter with enable.
        let mut n = Netlist::new("counter2");
        let en = n.add_input("en");
        let q0 = n.add_latch("q0", false);
        let q1 = n.add_latch("q1", false);
        let d0 = n.add_gate("d0", GateKind::Xor, vec![q0, en]);
        let carry = n.add_gate("carry", GateKind::And, vec![q0, en]);
        let d1 = n.add_gate("d1", GateKind::Xor, vec![q1, carry]);
        n.set_latch_next(q0, d0);
        n.set_latch_next(q1, d1);
        n.add_output("msb", d1);
        n
    }

    #[test]
    fn construction_and_lookup() {
        let n = counter2();
        assert_eq!(n.num_inputs(), 1);
        assert_eq!(n.num_latches(), 2);
        assert_eq!(n.num_gates(), 3);
        assert_eq!(n.signal("q0"), Some(SignalId(1)));
        assert_eq!(n.signal_name(SignalId(1)), "q0");
        assert!(n.signal("nope").is_none());
        assert!(n.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_fanins() {
        let n = counter2();
        let order = n.topo_order().expect("acyclic");
        let pos: HashMap<SignalId, usize> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for &g in &order {
            for &f in n.fanins(g) {
                if matches!(n.kind(f), NodeKind::Gate(_)) {
                    assert!(pos[&f] < pos[&g]);
                }
            }
        }
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn latch_breaks_cycles() {
        // q -> d (NOT q) -> q is fine because the loop passes a latch.
        let mut n = Netlist::new("inverting");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Not, vec![q]);
        n.set_latch_next(q, d);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("cyclic");
        let a = n.add_input("a");
        // Forward-reference trick: create gate g1 with a placeholder fanin,
        // then patch. We simulate a cycle by two mutually dependent gates.
        let g1 = n.add_gate("g1", GateKind::And, vec![a, a]);
        let g2 = n.add_gate("g2", GateKind::Or, vec![g1, a]);
        // Introduce the cycle by patching g1's fanin to g2.
        n.nodes[g1.index()].fanins[1] = g2;
        assert!(matches!(
            n.validate(),
            Err(ParseNetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn dangling_latch_detected() {
        let mut n = Netlist::new("bad");
        n.add_latch("q", false);
        assert_eq!(
            n.validate(),
            Err(ParseNetlistError::DanglingLatch("q".into()))
        );
    }

    #[test]
    fn support_stops_at_latches() {
        let n = counter2();
        let d1 = n.signal("d1").unwrap();
        let supp = n.support(d1);
        let names: Vec<&str> = supp.iter().map(|&s| n.signal_name(s)).collect();
        assert_eq!(names, vec!["en", "q0", "q1"]);
        let ps = n.support_ps(d1);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut n = Netlist::new("t");
        n.add_input("n0");
        let fresh = n.fresh_name("n");
        assert!(n.signal(&fresh).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_names_panic() {
        let mut n = Netlist::new("t");
        n.add_input("a");
        n.add_input("a");
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn bad_arity_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        n.add_gate("g", GateKind::Not, vec![a, b]);
    }
}
